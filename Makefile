# Developer entry points.  PYTHONPATH is prepended so the src/ layout
# works without an editable install.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-quick bench

test:
	$(PYTHON) -m pytest -x -q

# Perf smoke for every PR: the two throughput benches plus the
# compiled-kernel micro-benches, 3 rounds minimum each.
bench-quick:
	$(PYTHON) -m benchmarks.quick

# The full benchmark suite (regenerates the paper artefacts; slow).
bench:
	$(PYTHON) -m pytest benchmarks -q
