# Developer entry points.  PYTHONPATH is prepended so the src/ layout
# works without an editable install.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-quick bench

test:
	$(PYTHON) -m pytest -x -q

# Perf smoke for every PR: the throughput benches plus the
# compiled-kernel and execution-runtime benches, 3 rounds minimum each.
# Extra pytest/benchmark flags pass through BENCH_ARGS (CI uses
# --benchmark-min-rounds=1 for a faster smoke).
bench-quick:
	$(PYTHON) -m benchmarks.quick $(BENCH_ARGS)

# The full benchmark suite (regenerates the paper artefacts; slow).
bench:
	$(PYTHON) -m pytest benchmarks -q
