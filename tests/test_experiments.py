"""Tests for repro.experiments (fast configurations).

Experiment correctness at paper scale is exercised by the benchmark
suite; these tests verify the drivers' mechanics on small budgets and
short horizons.
"""

import pytest

from repro.errors import ReproError
from repro.experiments.ablations import (
    run_policy_sweep,
    run_solver_agreement,
    run_split_vs_quadratic,
)
from repro.experiments.common import POST, PRE, TIMEOUT, NetprocExperiment
from repro.experiments.figure3 import run_figure3
from repro.experiments.headline import run_headline
from repro.experiments.table1 import run_table1

FAST_SIZER = {"joint_state_limit": 300}


@pytest.fixture(scope="module")
def small_experiment():
    return NetprocExperiment.build(
        budget=80,
        calibration_duration=300.0,
        sizer_kwargs=FAST_SIZER,
    )


class TestNetprocExperiment:
    def test_three_configurations(self, small_experiment):
        assert set(small_experiment.allocations) == {PRE, POST, TIMEOUT}

    def test_budgets_exact(self, small_experiment):
        for name in (PRE, POST):
            assert small_experiment.allocations[name].total == 80

    def test_timeout_shares_pre_allocation(self, small_experiment):
        assert (
            small_experiment.allocations[TIMEOUT]
            is small_experiment.allocations[PRE]
        )

    def test_threshold_positive(self, small_experiment):
        assert small_experiment.timeout_threshold > 0

    def test_processor_order(self, small_experiment):
        assert small_experiment.processors[0] == "p1"
        assert small_experiment.processors[-1] == "p17"

    def test_bad_budget(self):
        with pytest.raises(ReproError):
            NetprocExperiment.build(budget=0)


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure3(
            budget=80, duration=200.0, replications=2,
            sizer_kwargs=FAST_SIZER,
        )

    def test_all_series_present(self, result):
        data = result.per_processor()
        assert set(data) == {PRE, POST, TIMEOUT}
        for series in data.values():
            assert len(series) == 17

    def test_render_contains_processors(self, result):
        text = result.render(width=20)
        assert "p1" in text
        assert "p17" in text
        assert "Figure 3" in text

    def test_improvements_are_finite(self, result):
        assert -10.0 < result.improvement_vs_pre() < 1.0
        assert -10.0 < result.improvement_vs_timeout() < 1.0


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(
            budgets=(60, 120), duration=200.0, replications=2,
            sizer_kwargs=FAST_SIZER,
        )

    def test_cells_accessible(self, result):
        for budget in (60, 120):
            for proc in ("p1", "p16"):
                assert result.cell(budget, proc, PRE) >= 0
                assert result.cell(budget, proc, POST) >= 0

    def test_unknown_budget_rejected(self, result):
        with pytest.raises(ReproError):
            result.cell(999, "p1", PRE)
        with pytest.raises(ReproError):
            result.total(999, PRE)

    def test_render(self, result):
        text = result.render(("p1", "p16"))
        assert "Buf 60 pre" in text
        assert "TOTAL" in text

    def test_empty_budgets_rejected(self):
        with pytest.raises(ReproError):
            run_table1(budgets=())


class TestHeadline:
    def test_runs_and_renders(self):
        result = run_headline(
            budget=80, duration=200.0, replications=2,
            sizer_kwargs=FAST_SIZER,
        )
        text = result.render()
        assert "constant sizing" in text
        assert isinstance(result.some_processor_got_worse, bool)


class TestAblations:
    def test_split_vs_quadratic(self):
        result = run_split_vs_quadratic(
            budget=24, quadratic_capacities=(1,), quadratic_max_iter=30
        )
        assert result.split_result.allocation.total == 24
        assert result.coupling_count > 0
        assert 1 in result.quadratic_by_capacity
        assert "naive" in result.render()

    def test_solver_agreement(self):
        result = run_solver_agreement(instances=3, seed=1)
        assert result.max_lp_vi_gap < 1e-5
        assert result.max_lp_pi_gap < 1e-5
        assert "solver agreement" in result.render()

    def test_solver_agreement_validation(self):
        with pytest.raises(ReproError):
            run_solver_agreement(instances=0)

    def test_policy_sweep_mechanics(self):
        result = run_policy_sweep(
            load_scales=(1.0,), budget=60, replications=1, duration=150.0,
            sizer_kwargs=FAST_SIZER,
        )
        totals = result.totals()
        assert set(totals) == {"uniform", "proportional", "analytic", "ctmdp"}
        assert "load" in result.render()
