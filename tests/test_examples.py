"""Smoke tests for ``examples/``: import and run each one, fast.

Every example exposes its experiment knobs as module-level constants
(``BUDGET``, ``DURATION``, ``REPLICATIONS``, ``SIZER_KWARGS``, ...);
the smoke test loads the module by path, patches the knobs down to a
tiny configuration (short horizons, one replication, capped joint state
spaces) and runs ``main()`` — so an example that drifts out of sync
with the library API fails the suite instead of silently rotting.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Knob overrides making each example run in a couple of seconds.
FAST_SIZER = {"joint_state_limit": 300}
FAST_KNOBS = {
    "quickstart.py": {
        "DURATION": 200.0,
        "REPLICATIONS": 1,
    },
    "bridged_amba.py": {
        "DURATION": 300.0,
    },
    "network_processor.py": {
        "BUDGET": 80,
        "DURATION": 150.0,
        "REPLICATIONS": 1,
        "SIZER_KWARGS": FAST_SIZER,
    },
    "policy_comparison.py": {
        "BUDGET": 80,
        "LOADS": (1.0,),
        "REPLICATIONS": 1,
        "DURATION": 150.0,
        "SIZER_KWARGS": FAST_SIZER,
    },
    "profiled_traffic.py": {
        "BUDGET": 80,
        "DURATION": 150.0,
        "REPLICATIONS": 1,
        "TRACE_SAMPLES": 2_000,
        "SIZER_KWARGS": FAST_SIZER,
    },
}

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _load_example(filename: str):
    """Import one example script as a throwaway module."""
    path = EXAMPLES_DIR / filename
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    # Register so dataclasses/pickling inside the example resolve.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        sys.modules.pop(spec.name, None)
        raise
    return module


def test_every_example_has_fast_knobs():
    """A new example must declare its fast-mode overrides here."""
    assert EXAMPLES == sorted(FAST_KNOBS)


@pytest.mark.parametrize("filename", EXAMPLES)
def test_example_runs(filename, capsys):
    module = _load_example(filename)
    try:
        assert hasattr(module, "main"), f"{filename} must define main()"
        for knob, value in FAST_KNOBS[filename].items():
            assert hasattr(module, knob), (
                f"{filename} no longer exposes {knob}; update FAST_KNOBS"
            )
            setattr(module, knob, value)
        module.main()
    finally:
        sys.modules.pop(module.__name__, None)
    out = capsys.readouterr().out
    assert out.strip(), f"{filename} printed nothing"
