"""Tests for repro.queueing.markov_chain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.queueing.markov_chain import (
    ContinuousTimeMarkovChain,
    uniformization_rate,
    uniformize,
    validate_generator,
)


def two_state_generator(a=2.0, b=3.0):
    return np.array([[-a, a], [b, -b]])


class TestValidateGenerator:
    def test_accepts_valid_generator(self):
        q = validate_generator(two_state_generator())
        assert q.shape == (2, 2)

    def test_rejects_non_square(self):
        with pytest.raises(ModelError, match="square"):
            validate_generator(np.zeros((2, 3)))

    def test_rejects_empty(self):
        with pytest.raises(ModelError, match="at least one state"):
            validate_generator(np.zeros((0, 0)))

    def test_rejects_negative_off_diagonal(self):
        q = np.array([[-1.0, 1.0], [-0.5, 0.5]])
        with pytest.raises(ModelError, match="negative off-diagonal"):
            validate_generator(q)

    def test_rejects_bad_row_sum(self):
        q = np.array([[-1.0, 2.0], [1.0, -1.0]])
        with pytest.raises(ModelError, match="sums to"):
            validate_generator(q)

    def test_returns_float_copy(self):
        q_int = np.array([[-1, 1], [2, -2]])
        q = validate_generator(q_int)
        assert q.dtype == float
        q[0, 0] = 99.0
        assert q_int[0, 0] == -1

    def test_accepts_absorbing_state(self):
        q = np.array([[-1.0, 1.0], [0.0, 0.0]])
        validate_generator(q)


class TestUniformization:
    def test_rate_covers_max_exit(self):
        q = two_state_generator(2.0, 5.0)
        rate = uniformization_rate(q)
        assert rate >= 5.0

    def test_zero_generator_gets_positive_rate(self):
        assert uniformization_rate(np.zeros((3, 3))) > 0

    def test_uniformized_matrix_is_stochastic(self):
        p, rate = uniformize(two_state_generator())
        assert np.allclose(p.sum(axis=1), 1.0)
        assert (p >= 0).all()

    def test_explicit_rate_respected(self):
        p, rate = uniformize(two_state_generator(1.0, 1.0), rate=10.0)
        assert rate == 10.0
        assert np.isclose(p[0, 0], 0.9)

    def test_too_small_rate_rejected(self):
        with pytest.raises(ModelError, match="below max exit rate"):
            uniformize(two_state_generator(2.0, 8.0), rate=4.0)

    def test_uniformized_stationary_matches_ctmc(self):
        q = two_state_generator(2.0, 3.0)
        p, _ = uniformize(q)
        chain = ContinuousTimeMarkovChain(q)
        pi = chain.stationary_distribution()
        assert np.allclose(pi @ p, pi, atol=1e-10)


class TestCTMCConstruction:
    def test_num_states(self):
        chain = ContinuousTimeMarkovChain(two_state_generator())
        assert chain.num_states == 2

    def test_default_labels(self):
        chain = ContinuousTimeMarkovChain(two_state_generator())
        assert chain.state_labels == [0, 1]

    def test_custom_labels(self):
        chain = ContinuousTimeMarkovChain(
            two_state_generator(), state_labels=["idle", "busy"]
        )
        assert chain.index_of("busy") == 1

    def test_wrong_label_count(self):
        with pytest.raises(ModelError, match="labels"):
            ContinuousTimeMarkovChain(two_state_generator(), state_labels=["x"])

    def test_duplicate_labels(self):
        with pytest.raises(ModelError, match="unique"):
            ContinuousTimeMarkovChain(
                two_state_generator(), state_labels=["x", "x"]
            )

    def test_unknown_label_lookup(self):
        chain = ContinuousTimeMarkovChain(two_state_generator())
        with pytest.raises(ModelError, match="unknown state label"):
            chain.index_of("nope")

    def test_exit_rate(self):
        chain = ContinuousTimeMarkovChain(two_state_generator(2.0, 3.0))
        assert chain.exit_rate(0) == pytest.approx(2.0)
        assert chain.exit_rate(1) == pytest.approx(3.0)


class TestStationary:
    def test_two_state_closed_form(self):
        a, b = 2.0, 3.0
        chain = ContinuousTimeMarkovChain(two_state_generator(a, b))
        pi = chain.stationary_distribution()
        assert pi[0] == pytest.approx(b / (a + b))
        assert pi[1] == pytest.approx(a / (a + b))

    def test_cached(self):
        chain = ContinuousTimeMarkovChain(two_state_generator())
        assert chain.stationary_distribution() is chain.stationary_distribution()

    def test_stationary_probability_by_label(self):
        chain = ContinuousTimeMarkovChain(
            two_state_generator(1.0, 1.0), state_labels=["a", "b"]
        )
        assert chain.stationary_probability("a") == pytest.approx(0.5)

    def test_expected_stationary(self):
        chain = ContinuousTimeMarkovChain(two_state_generator(1.0, 1.0))
        assert chain.expected_stationary([0.0, 10.0]) == pytest.approx(5.0)

    def test_expected_stationary_wrong_length(self):
        chain = ContinuousTimeMarkovChain(two_state_generator())
        with pytest.raises(ModelError, match="value vector"):
            chain.expected_stationary([1.0])

    def test_three_state_cycle(self):
        # Symmetric cycle: uniform stationary distribution.
        q = np.array(
            [[-1.0, 1.0, 0.0], [0.0, -1.0, 1.0], [1.0, 0.0, -1.0]]
        )
        chain = ContinuousTimeMarkovChain(q)
        assert np.allclose(chain.stationary_distribution(), 1.0 / 3.0)

    def test_reducible_chain_rejected(self):
        # Two disconnected 2-state chains: stationary law not unique.
        q = np.zeros((4, 4))
        q[0, 1] = q[1, 0] = 1.0
        q[2, 3] = q[3, 2] = 1.0
        np.fill_diagonal(q, -q.sum(axis=1))
        chain = ContinuousTimeMarkovChain(q)
        with pytest.raises(ModelError):
            chain.stationary_distribution()

    @given(
        a=st.floats(min_value=0.01, max_value=100.0),
        b=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_balance_two_state(self, a, b):
        chain = ContinuousTimeMarkovChain(two_state_generator(a, b))
        pi = chain.stationary_distribution()
        assert pi.sum() == pytest.approx(1.0)
        # Detailed balance holds for any two-state chain.
        assert pi[0] * a == pytest.approx(pi[1] * b, rel=1e-6)


class TestTransient:
    def test_time_zero_returns_initial(self):
        chain = ContinuousTimeMarkovChain(two_state_generator())
        p0 = np.array([1.0, 0.0])
        assert np.allclose(chain.transient_distribution(p0, 0.0), p0)

    def test_matches_closed_form_two_state(self):
        a, b = 2.0, 3.0
        chain = ContinuousTimeMarkovChain(two_state_generator(a, b))
        t = 0.7
        p = chain.transient_distribution(np.array([1.0, 0.0]), t)
        # Closed form for 2-state chain starting in state 0.
        s = a + b
        expected0 = b / s + a / s * np.exp(-s * t)
        assert p[0] == pytest.approx(expected0, abs=1e-9)

    def test_converges_to_stationary(self):
        chain = ContinuousTimeMarkovChain(two_state_generator(2.0, 3.0))
        p = chain.transient_distribution(np.array([1.0, 0.0]), 200.0)
        assert np.allclose(p, chain.stationary_distribution(), atol=1e-7)

    def test_large_lambda_stable(self):
        # Large rate * t exercises the log-space Poisson weights.
        q = two_state_generator(500.0, 300.0)
        chain = ContinuousTimeMarkovChain(q)
        p = chain.transient_distribution(np.array([0.0, 1.0]), 5.0)
        assert p.sum() == pytest.approx(1.0)
        assert np.allclose(p, chain.stationary_distribution(), atol=1e-6)

    def test_negative_time_rejected(self):
        chain = ContinuousTimeMarkovChain(two_state_generator())
        with pytest.raises(ModelError, match="non-negative"):
            chain.transient_distribution(np.array([1.0, 0.0]), -1.0)

    def test_bad_initial_rejected(self):
        chain = ContinuousTimeMarkovChain(two_state_generator())
        with pytest.raises(ModelError, match="probability vector"):
            chain.transient_distribution(np.array([0.7, 0.7]), 1.0)

    def test_wrong_shape_rejected(self):
        chain = ContinuousTimeMarkovChain(two_state_generator())
        with pytest.raises(ModelError, match="shape"):
            chain.transient_distribution(np.array([1.0, 0.0, 0.0]), 1.0)


class TestHittingTimes:
    def test_birth_death_hitting_time(self):
        # 3-state chain 0 <-> 1 <-> 2; hitting time of 2 from 0.
        lam, mu = 1.0, 2.0
        q = np.array(
            [
                [-lam, lam, 0.0],
                [mu, -(lam + mu), lam],
                [0.0, 0.0, 0.0],
            ]
        )
        chain = ContinuousTimeMarkovChain(q)
        h = chain.expected_hitting_times([2])
        # From 1: h1 = 1/(lam+mu) + mu/(lam+mu) h0 ; h0 = 1/lam + h1.
        h1 = (1.0 + mu / lam) / lam  # solving by hand: h1 = (1 + mu/lam)/lam
        # Derive properly: h0 = 1/lam + h1, h1 = 1/(l+m) + m/(l+m) h0
        # => h1 = (1/(l+m)) + (m/(l+m))(1/lam + h1)
        # => h1 (1 - m/(l+m)) = 1/(l+m) + m/(lam (l+m))
        # => h1 (l/(l+m)) = (lam + m)/(lam (l+m)) => h1 = (lam+m)/(lam*l)
        expected_h1 = (lam + mu) / (lam * lam)
        expected_h0 = 1.0 / lam + expected_h1
        assert h[1] == pytest.approx(expected_h1)
        assert h[0] == pytest.approx(expected_h0)
        assert h[2] == 0.0

    def test_empty_targets_rejected(self):
        chain = ContinuousTimeMarkovChain(two_state_generator())
        with pytest.raises(ModelError, match="non-empty"):
            chain.expected_hitting_times([])

    def test_all_states_targets(self):
        chain = ContinuousTimeMarkovChain(two_state_generator())
        assert np.allclose(chain.expected_hitting_times([0, 1]), 0.0)

    def test_unreachable_target(self):
        # State 1 absorbing, target state 0 unreachable from 1.
        q = np.array([[-1.0, 1.0], [0.0, 0.0]])
        chain = ContinuousTimeMarkovChain(q)
        with pytest.raises(ModelError, match="singular|unreachable"):
            chain.expected_hitting_times([0])
