"""Tests for repro.core.sizing — the end-to-end pipeline."""

import numpy as np
import pytest

from repro.arch.netproc import network_processor
from repro.arch.templates import amba_like, paper_figure1, single_bus
from repro.core.sizing import BufferAllocation, BufferSizer, SizingResult
from repro.errors import InfeasibleError, SolverError
from repro.sim.runner import simulate


class TestBufferAllocation:
    def test_total(self):
        alloc = BufferAllocation(sizes={"a": 3, "b": 5}, budget=8)
        assert alloc.total == 8
        assert alloc.size_of("a") == 3
        assert alloc.size_of("ghost") == 0

    def test_negative_rejected(self):
        with pytest.raises(SolverError):
            BufferAllocation(sizes={"a": -1}, budget=1)

    def test_as_capacities_copy(self):
        alloc = BufferAllocation(sizes={"a": 2}, budget=2)
        caps = alloc.as_capacities()
        caps["a"] = 99
        assert alloc.sizes["a"] == 2


class TestBufferSizerValidation:
    def test_bad_budget(self):
        with pytest.raises(SolverError):
            BufferSizer(total_budget=0)

    def test_bad_space_fraction(self):
        with pytest.raises(SolverError):
            BufferSizer(total_budget=4, space_fraction=0.0)
        with pytest.raises(SolverError):
            BufferSizer(total_budget=4, space_fraction=1.5)

    def test_bad_damping(self):
        with pytest.raises(SolverError):
            BufferSizer(total_budget=4, damping=0.0)

    def test_bad_capacity_cap(self):
        sizer = BufferSizer(total_budget=8, capacity_cap=0)
        with pytest.raises(SolverError):
            sizer.size(single_bus())

    def test_budget_below_min_sizes(self):
        sizer = BufferSizer(total_budget=2)
        with pytest.raises(InfeasibleError):
            sizer.size(single_bus(num_processors=4))


class TestSingleBusSizing:
    def test_budget_exact(self):
        topo = single_bus(num_processors=4)
        result = BufferSizer(total_budget=12).size(topo)
        assert result.allocation.total == 12
        assert set(result.allocation.sizes) == set(topo.processors)

    def test_asymmetric_traffic_gets_asymmetric_buffers(self):
        from repro.arch.topology import Topology

        topo = Topology("asym")
        topo.add_bus("x")
        topo.add_processor("hot", "x", service_rate=4.0)
        topo.add_processor("cold", "x", service_rate=4.0)
        topo.add_processor("sink", "x", service_rate=4.0)
        topo.add_poisson_flow("h", "hot", "sink", 3.0)
        topo.add_poisson_flow("c", "cold", "sink", 0.2)
        result = BufferSizer(total_budget=12).size(topo)
        assert result.allocation.size_of("hot") > result.allocation.size_of(
            "cold"
        )

    def test_marginals_are_distributions(self):
        topo = single_bus()
        result = BufferSizer(total_budget=10).size(topo)
        for name, marg in result.marginals.items():
            assert marg.sum() == pytest.approx(1.0)
            assert (marg >= -1e-12).all()

    def test_expected_loss_nonnegative(self):
        topo = single_bus(arrival_rate=2.0, service_rate=3.0)
        result = BufferSizer(total_budget=8).size(topo)
        assert result.expected_loss_rate >= 0.0


class TestBridgedSizing:
    def test_paper_figure1_runs_and_inserts_bridge_buffers(self):
        topo = paper_figure1()
        result = BufferSizer(total_budget=24).size(topo)
        assert result.allocation.total == 24
        bridge_buffers = [
            n for n in result.allocation.sizes if "@" in n
        ]
        assert bridge_buffers  # buffers were inserted for bridges
        assert all(
            result.allocation.sizes[n] >= 1 for n in bridge_buffers
        )

    def test_fixed_point_converges(self):
        topo = paper_figure1()
        result = BufferSizer(total_budget=24).size(topo)
        assert result.fixed_point_iterations < 25

    def test_blocking_probabilities_valid(self):
        topo = amba_like()
        result = BufferSizer(total_budget=16).size(topo)
        for name, b in result.blocking.items():
            assert 0.0 <= b <= 1.0

    def test_allocation_feeds_simulator(self):
        topo = paper_figure1()
        result = BufferSizer(total_budget=24).size(topo)
        sim_result = simulate(
            topo, result.allocation.as_capacities(), duration=2_000.0, seed=1
        )
        assert sim_result.total_offered > 0

    def test_larger_budget_never_increases_predicted_loss(self):
        topo = amba_like()
        small = BufferSizer(total_budget=10, capacity_cap=6).size(topo)
        large = BufferSizer(total_budget=20, capacity_cap=6).size(topo)
        assert (
            large.predicted_total_loss_rate()
            <= small.predicted_total_loss_rate() + 1e-6
        )

    def test_predicted_loss_bounded_by_offered(self):
        topo = amba_like()
        result = BufferSizer(total_budget=12).size(topo)
        predicted = result.predicted_total_loss_rate()
        assert 0.0 <= predicted <= topo.total_offered_rate()


class TestDecomposedPath:
    def test_netproc_uses_decomposed_models(self):
        # 17 processors + bridge buffers with a joint lattice would be
        # astronomically large; force the chain path with a low limit.
        topo = network_processor()
        sizer = BufferSizer(
            total_budget=60, capacity_cap=6, joint_state_limit=100
        )
        result = sizer.size(topo)
        assert result.allocation.total == 60
        assert len(result.allocation.sizes) >= 17

    def test_joint_and_decomposed_agree_roughly(self):
        # On a small bridged system both paths must produce allocations
        # with similar totals per subsystem (not identical — the
        # decomposed model is a relaxation).
        topo = amba_like()
        joint = BufferSizer(
            total_budget=16, capacity_cap=5, joint_state_limit=10**9
        ).size(topo)
        decomposed = BufferSizer(
            total_budget=16, capacity_cap=5, joint_state_limit=1
        ).size(topo)
        assert joint.allocation.total == decomposed.allocation.total == 16
        # The heaviest client should match between the two paths.
        heavy_joint = max(
            joint.allocation.sizes, key=joint.allocation.sizes.get
        )
        assert decomposed.allocation.sizes[heavy_joint] >= 2
