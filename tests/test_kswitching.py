"""Tests for repro.core.kswitching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kswitching import (
    ClientDemand,
    allocate_greedy,
    expected_sizes,
    switching_mixture,
)
from repro.errors import InfeasibleError, PolicyError


def demand(name, tail_mass, rate=1.0, weight=1.0, max_size=10**9):
    """Demand whose marginal puts ``tail_mass`` deep in the queue."""
    p = np.array([1.0 - tail_mass, tail_mass / 2, tail_mass / 4, tail_mass / 4])
    return ClientDemand(
        name=name, marginal=p, arrival_rate=rate, loss_weight=weight,
        max_size=max_size,
    )


class TestClientDemand:
    def test_marginal_normalised(self):
        d = ClientDemand("a", np.array([2.0, 2.0]), arrival_rate=1.0)
        assert d.marginal.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(PolicyError):
            ClientDemand("a", np.array([1.0]), arrival_rate=1.0)
        with pytest.raises(PolicyError):
            ClientDemand("a", np.array([[0.5, 0.5]]), arrival_rate=1.0)
        with pytest.raises(PolicyError):
            ClientDemand("a", np.array([0.5, -0.5]), arrival_rate=1.0)
        with pytest.raises(PolicyError):
            ClientDemand("a", np.array([0.0, 0.0]), arrival_rate=1.0)
        with pytest.raises(PolicyError):
            ClientDemand("a", np.array([0.5, 0.5]), arrival_rate=-1.0)
        with pytest.raises(PolicyError):
            ClientDemand("a", np.array([0.5, 0.5]), arrival_rate=1.0,
                         loss_weight=-1.0)
        with pytest.raises(PolicyError):
            ClientDemand("a", np.array([0.5, 0.5]), arrival_rate=1.0,
                         max_size=0)

    def test_tail(self):
        d = ClientDemand("a", np.array([0.5, 0.3, 0.2]), arrival_rate=1.0)
        assert d.tail(0) == 1.0
        assert d.tail(1) == pytest.approx(0.5)
        assert d.tail(2) == pytest.approx(0.2)
        assert d.tail(3) == 0.0

    def test_slot_value_scales(self):
        d1 = demand("a", 0.4, rate=1.0, weight=1.0)
        d2 = demand("b", 0.4, rate=2.0, weight=3.0)
        assert d2.slot_value(1) == pytest.approx(6.0 * d1.slot_value(1))

    def test_truncated_loss_matches_mm1k(self):
        # For a geometric (M/M/1-shaped) marginal, the truncated-law loss
        # must equal the exact M/M/1/K loss rate at every capacity.
        from repro.queueing.mm1k import MM1KQueue

        lam, mu, depth = 1.2, 2.0, 12
        rho = lam / mu
        marginal = rho ** np.arange(depth + 1)
        d = ClientDemand(
            "q", marginal / marginal.sum(), arrival_rate=lam
        )
        for k in range(1, 6):
            expected = MM1KQueue(lam, mu, k).loss_rate()
            assert d.truncated_loss(k) == pytest.approx(expected, rel=1e-9)

    def test_truncated_loss_monotone_decreasing(self):
        d = demand("a", 0.5)
        losses = [d.truncated_loss(k) for k in range(5)]
        assert all(a >= b - 1e-12 for a, b in zip(losses, losses[1:]))

    def test_truncated_loss_validation(self):
        with pytest.raises(PolicyError):
            demand("a", 0.5).truncated_loss(-1)

    def test_slot_value_nonnegative(self):
        d = demand("a", 0.7)
        assert all(d.slot_value(k) >= 0.0 for k in range(6))


class TestAllocateGreedy:
    def test_sums_to_budget(self):
        demands = [demand("a", 0.5), demand("b", 0.1), demand("c", 0.3)]
        sizes = allocate_greedy(demands, 10)
        assert sum(sizes.values()) == 10

    def test_min_size_respected(self):
        demands = [demand("a", 0.9), demand("b", 0.0)]
        sizes = allocate_greedy(demands, 6, min_size=1)
        assert sizes["b"] >= 1

    def test_heavier_tail_gets_more(self):
        demands = [demand("deep", 0.6), demand("shallow", 0.05)]
        sizes = allocate_greedy(demands, 5)
        assert sizes["deep"] > sizes["shallow"]

    def test_weight_steers_allocation(self):
        demands = [
            demand("vip", 0.3, weight=10.0),
            demand("std", 0.3, weight=1.0),
        ]
        sizes = allocate_greedy(demands, 5)
        assert sizes["vip"] > sizes["std"]

    def test_max_size_capped(self):
        demands = [demand("a", 0.9, max_size=2), demand("b", 0.01)]
        sizes = allocate_greedy(demands, 8)
        assert sizes["a"] <= 2
        assert sum(sizes.values()) == 8

    def test_budget_below_minimum_rejected(self):
        demands = [demand("a", 0.5), demand("b", 0.5)]
        with pytest.raises(InfeasibleError):
            allocate_greedy(demands, 1, min_size=1)

    def test_budget_above_caps_rejected(self):
        demands = [demand("a", 0.5, max_size=2), demand("b", 0.5, max_size=2)]
        with pytest.raises(InfeasibleError):
            allocate_greedy(demands, 5)

    def test_no_clients_rejected(self):
        with pytest.raises(PolicyError):
            allocate_greedy([], 4)

    def test_duplicate_names_rejected(self):
        with pytest.raises(PolicyError):
            allocate_greedy([demand("a", 0.1), demand("a", 0.2)], 4)

    def test_deterministic(self):
        demands = [demand("a", 0.3), demand("b", 0.3), demand("c", 0.3)]
        s1 = allocate_greedy(demands, 9)
        s2 = allocate_greedy(demands, 9)
        assert s1 == s2

    @given(
        budget=st.integers(min_value=3, max_value=40),
        t1=st.floats(min_value=0.0, max_value=0.9),
        t2=st.floats(min_value=0.0, max_value=0.9),
        t3=st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_budget_exact_and_min_respected(self, budget, t1, t2, t3):
        demands = [
            demand("a", t1), demand("b", t2), demand("c", t3),
        ]
        sizes = allocate_greedy(demands, budget, min_size=1)
        assert sum(sizes.values()) == budget
        assert all(v >= 1 for v in sizes.values())

    @given(budget=st.integers(min_value=4, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_property_monotone_in_budget(self, budget):
        demands = [demand("a", 0.5), demand("b", 0.2)]
        small = allocate_greedy(demands, budget)
        large = allocate_greedy(demands, budget + 1)
        # Greedy water-filling never shrinks anyone when budget grows.
        assert all(large[k] >= small[k] for k in small)


class TestExpectedSizes:
    def test_expected_occupancy(self):
        d = ClientDemand("a", np.array([0.25, 0.5, 0.25]), arrival_rate=1.0)
        assert expected_sizes([d])["a"] == pytest.approx(1.0)


class TestSwitchingMixture:
    def test_integer_budget_degenerates(self):
        demands = [demand("a", 0.4), demand("b", 0.2)]
        mix = switching_mixture(demands, 6.0)
        assert mix.probability == 0.0
        assert mix.low == mix.high
        assert mix.expected_total() == pytest.approx(6.0)

    def test_fractional_budget_mixes(self):
        demands = [demand("a", 0.4), demand("b", 0.2)]
        mix = switching_mixture(demands, 6.3)
        assert mix.probability == pytest.approx(0.3)
        assert sum(mix.low.values()) == 6
        assert sum(mix.high.values()) == 7
        assert mix.expected_total() == pytest.approx(6.3)

    def test_invalid_budget(self):
        with pytest.raises(PolicyError):
            switching_mixture([demand("a", 0.1)], 0.0)
