"""Tests for repro.dist — distributed work-stealing execution.

Covers the broker protocol (lease/steal/reap state machine, with an
injectable clock), the shared cache tier (read-through, write-through,
publish gating), and the end-to-end contracts: a fleet map merges
bitwise-identically to the serial loop for any worker count, steal
order, or worker death mid-job, and a second worker reuses the first
worker's converged sizing through the shared store.
"""

import multiprocessing
import threading
import time
from pathlib import Path

import pytest

from repro.dist import (
    Broker,
    BrokerServer,
    CacheTier,
    DistExecutor,
    JobPayload,
    build_matrix,
    parse_address,
    run_matrix,
    worker_loop,
)
from repro.dist.jobs import echo, run_block
from repro.errors import ReproError
from repro.exec import ExecutionContext, ResultCache
from repro.retry import RetryPolicy
from repro.exec.pool import parallel_map
from repro.sim.runner import replicate

#: Short lease so dead-worker tests run in seconds; long enough that a
#: loaded CI box never reaps a live worker (they beat every lease/4).
LEASE_TIMEOUT = 2.0

_FORK = multiprocessing.get_context("fork")

#: Retry policy for tests that exercise failure paths: real backoff
#: shape, near-zero waiting.
_FAST_RETRY = RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.02)


def _double(x):
    return 2 * x


def _boom(x):
    raise ValueError(f"kaboom on {x}")


def _boom_with_huge_message(x):
    raise ValueError("boom " + "y" * 100_000)


def _stall_once_then_cache(item):
    """First attempt stalls forever (to be killed); retry caches a value.

    The marker file distinguishes attempts across worker processes; the
    cache publish happens strictly after the stall, so a worker killed
    mid-job can never have published anything.
    """
    from repro.dist import jobs as dist_jobs

    marker = Path(item["marker"])
    if not marker.exists():
        marker.write_text("attempt-1")
        time.sleep(120)
    tier = dist_jobs.active_cache()
    return tier.fetch(
        "test-kind", {"k": item["key"]}, lambda: item["value"]
    )


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def _start_worker(address, **kwargs):
    kwargs.setdefault("poll_interval", 0.02)
    process = _FORK.Process(
        target=worker_loop, args=(address,), kwargs=kwargs, daemon=True
    )
    process.start()
    return process


@pytest.fixture()
def server():
    broker_server = BrokerServer(
        port=0, lease_timeout=LEASE_TIMEOUT
    ).start_in_thread()
    yield broker_server
    broker_server.stop()


class TestParseAddress:
    def test_host_port_string(self):
        assert parse_address("127.0.0.1:7070") == ("127.0.0.1", 7070)

    def test_pair(self):
        assert parse_address(("broker", 9)) == ("broker", 9)

    def test_rejects_garbage(self):
        for bad in ("no-port", "host:", ":70", 7, "host:port"):
            with pytest.raises(ReproError):
                parse_address(bad)


class TestBrokerProtocol:
    def test_submit_pull_complete_roundtrip(self):
        broker = Broker(lease_timeout=10.0)
        broker.submit("b", [JobPayload(echo, i) for i in range(3)])
        leased = broker.pull("w1", max_jobs=3)
        assert [job_id for job_id, _ in leased] == [
            ("b", 0), ("b", 1), ("b", 2)
        ]
        for job_id, payload in leased:
            assert broker.start("w1", job_id)
            broker.complete("w1", job_id, payload.fn(payload.item))
        assert broker.fetch_ready("b", 0) == [0, 1, 2]
        assert broker.batch_status("b") == (3, 3)

    def test_fetch_ready_is_contiguous_prefix(self):
        broker = Broker(lease_timeout=10.0)
        broker.submit("b", [JobPayload(echo, i) for i in range(3)])
        leased = broker.pull("w1", max_jobs=3)
        # Complete out of order: index 2 first.
        broker.start("w1", leased[2][0])
        broker.complete("w1", leased[2][0], 2)
        assert broker.fetch_ready("b", 0) == []
        broker.start("w1", leased[0][0])
        broker.complete("w1", leased[0][0], 0)
        assert broker.fetch_ready("b", 0) == [0]

    def test_idle_worker_steals_unstarted_lease(self):
        broker = Broker(lease_timeout=10.0)
        broker.submit("b", [JobPayload(echo, i) for i in range(4)])
        leased = broker.pull("w1", max_jobs=4)
        assert len(leased) == 4
        stolen = broker.pull("w2", max_jobs=1)
        # The tail of the victim's lease is stolen — the job w1 would
        # reach last.
        assert [job_id for job_id, _ in stolen] == [("b", 3)]
        assert broker.stats()["steals"] == 1
        # The victim's start on the stolen job is refused; the thief's
        # is granted.  No job can run twice because of a steal.
        assert broker.start("w1", ("b", 3)) is False
        assert broker.start("w2", ("b", 3)) is True

    def test_started_jobs_are_not_stealable(self):
        broker = Broker(lease_timeout=10.0)
        broker.submit("b", [JobPayload(echo, 0)])
        (job_id, _), = broker.pull("w1", max_jobs=1)
        assert broker.start("w1", job_id)
        assert broker.pull("w2", max_jobs=1) == []

    def test_dead_worker_jobs_reenqueued_in_index_order(self):
        clock = _FakeClock()
        broker = Broker(lease_timeout=1.0, clock=clock)
        broker.submit("b", [JobPayload(echo, i) for i in range(3)])
        leased = broker.pull("w1", max_jobs=2)
        assert broker.start("w1", leased[0][0])  # dies mid-execution
        clock.advance(1.5)
        granted = broker.pull("w2", max_jobs=3)
        # Both of w1's leases (started or not) come back, at the front
        # of the queue and in index order, ahead of the never-leased
        # job 2.
        assert [job_id for job_id, _ in granted] == [
            ("b", 0), ("b", 1), ("b", 2)
        ]
        assert broker.stats()["reaped_jobs"] == 2
        assert broker.stats()["workers"] == 1

    def test_duplicate_completion_is_ignored(self):
        clock = _FakeClock()
        broker = Broker(lease_timeout=1.0, clock=clock)
        broker.submit("b", [JobPayload(echo, 0)])
        (job_id, _), = broker.pull("w1", max_jobs=1)
        broker.start("w1", job_id)
        clock.advance(1.5)  # w1 presumed dead
        (rejob, _), = broker.pull("w2", max_jobs=1)
        assert rejob == job_id
        broker.complete("w2", job_id, "w2-result")
        # The slow-but-alive w1 finishes too; jobs are pure so both
        # results are the same bits — first one in wins, harmlessly.
        broker.complete("w1", job_id, "w1-result")
        assert broker.fetch_ready("b", 0) == ["w2-result"]

    def test_drop_batch_forgets_everything(self):
        broker = Broker(lease_timeout=10.0)
        broker.submit("b", [JobPayload(echo, i) for i in range(3)])
        broker.pull("w1", max_jobs=1)
        broker.drop_batch("b")
        with pytest.raises(ReproError):
            broker.batch_status("b")
        assert broker.pull("w1", max_jobs=3) == []

    def test_duplicate_batch_id_rejected(self):
        broker = Broker(lease_timeout=10.0)
        broker.submit("b", [JobPayload(echo, 0)])
        with pytest.raises(ReproError):
            broker.submit("b", [JobPayload(echo, 1)])

    def test_invalid_lease_timeout(self):
        with pytest.raises(ReproError):
            Broker(lease_timeout=0)


class TestBrokerCacheStore:
    def test_get_put_roundtrip_and_stats(self):
        broker = Broker()
        assert broker.cache_get("k") is None
        broker.cache_put("k", b"blob")
        assert broker.cache_get("k") == b"blob"
        stats = broker.cache_stats()
        assert stats["entries"] == 1
        assert stats["gets"] == 2
        assert stats["hits"] == 1
        assert stats["puts"] == 1

    def test_lru_bound_evicts_oldest(self):
        broker = Broker(cache_max_bytes=100)
        broker.cache_put("a", b"x" * 60)
        broker.cache_put("b", b"y" * 60)  # pushes out "a"
        assert broker.cache_get("a") is None
        assert broker.cache_get("b") is not None
        assert broker.cache_stats()["evictions"] == 1

    def test_get_refreshes_recency(self):
        broker = Broker(cache_max_bytes=100)
        broker.cache_put("a", b"x" * 40)
        broker.cache_put("b", b"y" * 40)
        broker.cache_get("a")  # a is now the most recent
        broker.cache_put("c", b"z" * 40)  # evicts b, not a
        assert broker.cache_get("a") is not None
        assert broker.cache_get("b") is None


class TestCacheTier:
    def test_same_keys_as_disk_store(self, tmp_path):
        tier = CacheTier(remote=Broker())
        disk = ResultCache(tmp_path)
        payload = {"topology": {"name": "t"}, "budget": 4}
        assert tier.key("sizing", payload) == disk.key("sizing", payload)

    def test_write_through_and_cross_worker_read_through(self, tmp_path):
        broker = Broker()
        tier_a = CacheTier(
            remote=broker, local=ResultCache(tmp_path / "a")
        )
        computes = []

        def compute():
            computes.append(1)
            return {"answer": 41}

        assert tier_a.fetch("kind", {"x": 1}, compute) == {"answer": 41}
        assert computes == [1]
        assert tier_a.publishes == 1
        # A different worker (fresh tier, its own disk) hits the shared
        # store without recomputing, and writes back to its local tier.
        tier_b = CacheTier(
            remote=broker, local=ResultCache(tmp_path / "b")
        )
        assert tier_b.fetch(
            "kind", {"x": 1}, lambda: pytest.fail("must not recompute")
        ) == {"answer": 41}
        assert tier_b.shared_hits == 1
        hit, value = tier_b.local.get(tier_b.key("kind", {"x": 1}))
        assert hit and value == {"answer": 41}
        # Third read is now a pure local hit — the network round-trip
        # is paid once per key.
        tier_b.lookup(tier_b.key("kind", {"x": 1}))
        assert tier_b.local_hits == 1

    def test_local_tier_is_optional(self):
        broker = Broker()
        tier = CacheTier(remote=broker)
        tier.put("k-no-local", 7)
        hit, value = tier.lookup("k-no-local")
        assert hit and value == 7
        assert tier.shared_hits == 1

    def test_should_store_veto_never_publishes(self):
        broker = Broker()
        tier = CacheTier(remote=broker)
        value = tier.fetch(
            "kind", {"x": 2}, lambda: 99, should_store=lambda v: False
        )
        assert value == 99
        assert broker.cache_stats()["entries"] == 0
        assert tier.publishes == 0

    def test_corrupt_shared_blob_reads_as_miss(self):
        broker = Broker()
        tier = CacheTier(remote=broker)
        key = tier.key("kind", {"x": 3})
        broker.cache_put(key, b"not a pickle")
        hit, value = tier.lookup(key)
        assert not hit and value is None
        assert tier.misses == 1
        assert tier.quarantined == 1

    def test_bitflipped_shared_blob_quarantined_then_healed(self):
        from repro.exec.cache import pack_entry

        broker = Broker()
        tier = CacheTier(remote=broker)
        key = tier.key("kind", {"x": 4})
        blob = bytearray(pack_entry({"answer": 41}))
        blob[-1] ^= 0xFF  # valid framing, failing digest
        broker.cache_put(key, bytes(blob))
        hit, _ = tier.lookup(key)
        assert not hit
        assert tier.quarantined == 1
        # fetch recomputes and republishes a clean entry: self-heal.
        assert tier.fetch("kind", {"x": 4}, lambda: {"answer": 41}) == {
            "answer": 41
        }
        fresh = CacheTier(remote=broker)
        assert fresh.lookup(key) == (True, {"answer": 41})

    def test_truncated_shared_blob_reads_as_miss(self):
        from repro.exec.cache import pack_entry

        broker = Broker()
        tier = CacheTier(remote=broker)
        key = tier.key("kind", {"x": 5})
        whole = pack_entry([1, 2, 3])
        broker.cache_put(key, whole[: len(whole) // 3])
        hit, value = tier.lookup(key)
        assert not hit and value is None
        assert tier.quarantined == 1

    def test_lost_remote_degrades_to_local_only(self, tmp_path):
        class _DeadStore:
            def cache_get(self, key):
                raise ConnectionResetError("store gone")

            def cache_put(self, key, blob):
                raise ConnectionResetError("store gone")

        tier = CacheTier(
            remote=_DeadStore(),
            local=ResultCache(tmp_path),
            retry=_FAST_RETRY,
        )
        # A put against a dead store degrades (local write still
        # lands) instead of raising into the job.
        tier.put("k-degraded", 7)
        assert tier.remote_down
        assert tier.publishes == 0
        hit, value = tier.lookup("k-degraded")
        assert hit and value == 7
        assert tier.local_hits == 1
        # Degraded mode stops touching the remote entirely.
        tier.put("k-more", 8)
        assert tier.fetch("kind", {"x": 9}, lambda: 10) == 10

    def test_degrade_disabled_reraises(self):
        class _DeadStore:
            def cache_get(self, key):
                raise ConnectionResetError("store gone")

        tier = CacheTier(
            remote=_DeadStore(),
            retry=_FAST_RETRY,
            degrade_on_loss=False,
        )
        with pytest.raises(ConnectionResetError):
            tier.lookup("k")


class TestDistExecutor:
    def test_map_matches_serial_any_worker_count(self, server):
        workers = [_start_worker(server.address) for _ in range(2)]
        try:
            executor = DistExecutor(
                server.address, poll_interval=0.02, timeout=60
            )
            items = list(range(23))
            assert executor.map(_double, items) == [2 * x for x in items]
        finally:
            for worker in workers:
                worker.terminate()

    def test_on_result_streams_in_index_order(self, server):
        worker = _start_worker(server.address)
        try:
            executor = DistExecutor(
                server.address, poll_interval=0.02, timeout=60
            )
            seen = []
            executor.map(
                _double,
                range(7),
                on_result=lambda i, r: seen.append((i, r)),
            )
            assert seen == [(i, 2 * i) for i in range(7)]
        finally:
            worker.terminate()

    def test_empty_map_is_empty(self, server):
        executor = DistExecutor(server.address, timeout=5)
        assert executor.map(_double, []) == []

    def test_job_exception_reraises_with_worker_traceback(self, server):
        worker = _start_worker(server.address)
        try:
            executor = DistExecutor(
                server.address, poll_interval=0.02, timeout=60
            )
            with pytest.raises(ReproError) as excinfo:
                executor.map(_boom, [5])
            assert "kaboom on 5" in str(excinfo.value)
            assert "worker traceback" in str(excinfo.value)
        finally:
            worker.terminate()

    def test_timeout_without_workers_is_an_error_not_a_hang(self, server):
        executor = DistExecutor(
            server.address, poll_interval=0.02, timeout=0.4
        )
        with pytest.raises(ReproError) as excinfo:
            executor.map(_double, [1, 2])
        assert "worker" in str(excinfo.value)

    def test_plugs_into_parallel_map_and_replicate(self, server, amba):
        worker = _start_worker(server.address)
        try:
            executor = DistExecutor(
                server.address, poll_interval=0.02, timeout=120
            )
            assert parallel_map(_double, range(5), executor=executor) == [
                2 * x for x in range(5)
            ]
            capacities = {name: 3 for name in amba.processors}
            distributed = replicate(
                amba,
                capacities,
                replications=2,
                duration=150.0,
                executor=executor,
            )
            serial = replicate(
                amba, capacities, replications=2, duration=150.0
            )
            assert distributed.results == serial.results
        finally:
            worker.terminate()


@pytest.fixture(scope="module")
def amba():
    from repro.arch.templates import amba_like

    return amba_like()


class TestWorkerFailureRecovery:
    def test_killed_worker_job_reenqueued_merge_identical_no_publish(
        self, server, tmp_path
    ):
        """The satellite contract: kill a worker mid-job.

        The job must be re-enqueued and completed by a surviving
        worker, the merged result must equal the serial answer, and
        the aborted attempt must have published nothing to the shared
        cache (exactly one publish: the successful attempt's).
        """
        marker = tmp_path / "attempt.marker"
        item = {"marker": str(marker), "key": "recovery", "value": 42}
        victim = _start_worker(server.address)
        outcome = {}

        def drive():
            executor = DistExecutor(
                server.address, poll_interval=0.02, timeout=90
            )
            outcome["result"] = executor.map(
                _stall_once_then_cache, [item]
            )

        driver = threading.Thread(target=drive)
        driver.start()
        # Wait until the victim is provably mid-job, then kill it hard.
        deadline = time.monotonic() + 30
        while not marker.exists():
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.02)
        victim.kill()
        victim.join()
        survivor = _start_worker(server.address)
        try:
            driver.join(timeout=60)
            assert not driver.is_alive(), "batch never completed"
            # Bitwise-identical to what the serial loop would return.
            assert outcome["result"] == [42]
            broker = server.broker
            assert broker.stats()["reaped_jobs"] >= 1
            stats = broker.cache_stats()
            assert stats["puts"] == 1  # only the successful attempt
            assert stats["entries"] == 1
        finally:
            survivor.terminate()


class TestFleetMatrix:
    MATRIX = dict(
        budgets=[8, 16], replications=2, duration=100.0
    )

    def test_build_matrix_enumerates_in_order(self):
        payloads = build_matrix(
            ["single-bus-4"], budgets=[8, 16], replications=3,
            block_reps=2,
        )
        slices = [
            (p["budget"], p["start"], p["stop"]) for p in payloads
        ]
        assert slices == [(8, 0, 2), (8, 2, 3), (16, 0, 2), (16, 2, 3)]
        assert all(p["scenario"] == "single-bus-4" for p in payloads)

    def test_build_matrix_defaults_to_scenario_axis(self):
        payloads = build_matrix(["amba"], replications=1)
        from repro import scenarios

        assert [p["budget"] for p in payloads] == list(
            scenarios.get("amba").budgets
        )

    def test_build_matrix_validation(self):
        with pytest.raises(ReproError):
            build_matrix([])
        with pytest.raises(ReproError):
            build_matrix(["single-bus-4"], replications=0)
        with pytest.raises(ReproError):
            build_matrix(["single-bus-4"], block_reps=0)
        with pytest.raises(ReproError):
            build_matrix(["no-such-scenario"])

    def test_serial_pooled_identical(self):
        serial = run_matrix(["single-bus-4"], jobs=1, **self.MATRIX)
        pooled = run_matrix(["single-bus-4"], jobs=2, **self.MATRIX)
        assert pooled.to_jsonable() == serial.to_jsonable()

    def test_distributed_identical_even_under_worker_death(self, server):
        workers = [_start_worker(server.address) for _ in range(2)]
        killer = threading.Timer(0.4, workers[0].kill)
        killer.start()
        try:
            executor = DistExecutor(
                server.address, poll_interval=0.02, timeout=240
            )
            distributed = run_matrix(
                ["single-bus-4"], executor=executor, **self.MATRIX
            )
        finally:
            killer.cancel()
            for worker in workers:
                worker.terminate()
        serial = run_matrix(["single-bus-4"], jobs=1, **self.MATRIX)
        assert distributed.to_jsonable() == serial.to_jsonable()

    def test_second_worker_reuses_first_workers_sizing(self, server):
        """The shared-tier contract: cross-worker sizing reuse."""
        matrix = dict(budgets=[8], replications=2, duration=100.0)
        first = _start_worker(server.address)
        executor = DistExecutor(
            server.address, poll_interval=0.02, timeout=240
        )
        try:
            run_one = run_matrix(
                ["single-bus-4"], executor=executor, **matrix
            )
        finally:
            first.terminate()
            first.join()
        broker = server.broker
        stats_after_first = broker.cache_stats()
        assert stats_after_first["puts"] >= 1  # first worker published
        second = _start_worker(server.address)
        try:
            run_two = run_matrix(
                ["single-bus-4"], executor=executor, **matrix
            )
        finally:
            second.terminate()
        stats_after_second = broker.cache_stats()
        # Every block of the second run read the first worker's
        # converged sizing out of the shared store instead of
        # recomputing: hits grew, publishes did not.
        assert (
            stats_after_second["hits"]
            >= stats_after_first["hits"] + 2
        )
        assert stats_after_second["puts"] == stats_after_first["puts"]
        assert run_two.to_jsonable() == run_one.to_jsonable()

    def test_run_block_is_pure_in_its_payload(self):
        payload = {
            "scenario": "single-bus-4",
            "budget": 8,
            "replications": 2,
            "start": 0,
            "stop": 2,
            "duration": 100.0,
            "base_seed": 0,
            "seed_scheme": "legacy",
            "sim_backend": "batched",
        }
        first = run_block(dict(payload))
        second = run_block(dict(payload))
        assert first == second
        assert first.sizes and sum(first.sizes.values()) == 8

    def test_render_and_json_artifacts(self, tmp_path):
        outcome = run_matrix(
            ["single-bus-4"], budgets=[8], replications=2, duration=100.0
        )
        table = outcome.render()
        assert "single-bus-4" in table and "mean loss" in table
        path = tmp_path / "fleet.json"
        outcome.write_json(path)
        import json

        payload = json.loads(path.read_text())
        assert payload[0]["scenario"] == "single-bus-4"
        assert payload[0]["budget"] == 8


class TestExecutionContextIntegration:
    def test_create_dist_builds_executor(self):
        context = ExecutionContext.create(dist="127.0.0.1:1")
        assert isinstance(context.executor, DistExecutor)
        assert context.executor.address == ("127.0.0.1", 1)

    def test_context_replicate_runs_on_fleet(self, server, amba):
        worker = _start_worker(server.address)
        try:
            executor = DistExecutor(
                server.address, poll_interval=0.02, timeout=120
            )
            context = ExecutionContext(executor=executor)
            capacities = {name: 3 for name in amba.processors}
            distributed = context.replicate(
                amba, capacities, replications=2, duration=150.0
            )
            serial = ExecutionContext().replicate(
                amba, capacities, replications=2, duration=150.0
            )
            assert distributed.results == serial.results
        finally:
            worker.terminate()


class TestDriverDeathAndStalls:
    def test_abandoned_batches_dropped_after_ttl(self):
        clock = _FakeClock()
        broker = Broker(lease_timeout=1.0, batch_ttl=5.0, clock=clock)
        broker.submit("orphan", [JobPayload(echo, i) for i in range(3)])
        clock.advance(6.0)
        # Any traffic triggers the reap; the dead driver's batch (jobs,
        # results, bookkeeping) is gone and workers get nothing to burn
        # CPU on.
        assert broker.pull("w1", max_jobs=3) == []
        assert broker.stats()["dropped_batches"] == 1
        assert broker.stats()["batches"] == 0
        with pytest.raises(ReproError):
            broker.batch_status("orphan")

    def test_live_driver_polling_keeps_batch_alive(self):
        clock = _FakeClock()
        broker = Broker(lease_timeout=1.0, batch_ttl=5.0, clock=clock)
        broker.submit("alive", [JobPayload(echo, 0)])
        for _ in range(4):
            clock.advance(3.0)
            broker.fetch_ready("alive", 0)  # refreshes the TTL
        assert broker.stats()["dropped_batches"] == 0
        assert broker.batch_status("alive") == (0, 1)

    def test_no_workers_errors_after_grace_instead_of_hanging(
        self, server
    ):
        executor = DistExecutor(
            server.address, poll_interval=0.02, no_worker_grace=0.3
        )
        with pytest.raises(ReproError) as excinfo:
            executor.map(_double, [1, 2])
        assert "no live workers" in str(excinfo.value)

    def test_unreachable_broker_is_a_clean_error(self):
        executor = DistExecutor("127.0.0.1:1", timeout=5)
        with pytest.raises(ReproError) as excinfo:
            executor.map(_double, [1])
        assert "cannot connect to broker" in str(excinfo.value)

    def test_wrong_authkey_is_a_clean_error(self, server):
        executor = DistExecutor(
            server.address, authkey=b"not-the-secret", timeout=5
        )
        with pytest.raises(ReproError) as excinfo:
            executor.map(_double, [1])
        assert "authkey" in str(excinfo.value)


class TestMatrixDeduplication:
    def test_duplicate_budgets_and_scenarios_collapse(self):
        payloads = build_matrix(
            ["single-bus-4", "single-bus-4"],
            budgets=[12, 12, 8],
            replications=2,
        )
        cells = [(p["scenario"], p["budget"]) for p in payloads]
        # One cell per unique (scenario, budget), two blocks each —
        # never a cell with silently duplicated replications.
        assert cells == [
            ("single-bus-4", 12), ("single-bus-4", 12),
            ("single-bus-4", 8), ("single-bus-4", 8),
        ]

    def test_family_alias_spellings_collapse(self):
        payloads = build_matrix(
            ["random-mesh-04-7", "random-mesh-4-7"],
            budgets=[16],
            replications=1,
        )
        assert len(payloads) == 1
        assert payloads[0]["scenario"] == "random-mesh-4-7"


class _TricklingBroker:
    """Fake broker: one result per poll, never finishing fast."""

    def __init__(self, delay=0.04):
        self.delay = delay
        self.dropped = False
        self._count = 0

    def submit(self, batch_id, payloads, features=None, schedule=None):
        self.total = len(payloads)

    def fetch_ready(self, batch_id, start):
        time.sleep(self.delay)
        self._count = min(self._count + 1, self.total)
        return list(range(start, self._count))

    def batch_status(self, batch_id):
        return (self._count, self.total)

    def stats(self):
        return {"workers": 1}

    def drop_batch(self, batch_id):
        self.dropped = True


class _DyingBroker(_TricklingBroker):
    def fetch_ready(self, batch_id, start):
        raise ConnectionResetError("broker went away")

    def drop_batch(self, batch_id):
        raise BrokenPipeError("still away")


def _plant_fake_broker(executor, fake):
    class _Conn:
        broker = fake

    executor._connection = _Conn()


class TestDriverRobustness:
    def test_timeout_enforced_while_results_trickle(self):
        # Every poll yields one result, so the batch is never idle;
        # the overall bound must still fire instead of letting the run
        # exceed it indefinitely.
        executor = DistExecutor(
            "127.0.0.1:1", poll_interval=0.01, timeout=0.1
        )
        fake = _TricklingBroker(delay=0.04)
        _plant_fake_broker(executor, fake)
        with pytest.raises(ReproError) as excinfo:
            executor.map(echo, list(range(50)))
        assert "timed out" in str(excinfo.value)
        assert fake.dropped  # cleanup still ran

    def test_dead_broker_with_fail_policy_is_a_clean_error(self):
        executor = DistExecutor(
            "127.0.0.1:1", timeout=5, retry=_FAST_RETRY,
            on_broker_loss="fail",
        )
        _plant_fake_broker(executor, _DyingBroker())
        # The broker loss propagates as a clean error; the failing
        # drop_batch in the finally clause must not mask it.
        with pytest.raises(ReproError) as excinfo:
            executor.map(echo, [1])
        assert "broker lost" in str(excinfo.value)

    def test_dead_broker_falls_back_to_local_pool_by_default(self):
        executor = DistExecutor(
            "127.0.0.1:1", timeout=5, retry=_FAST_RETRY, fallback_jobs=1
        )
        _plant_fake_broker(executor, _DyingBroker())
        seen = []
        # Broker loss degrades to the local pool: same results, same
        # merge order, on_result indices continue from the (empty)
        # fleet-completed prefix.
        assert executor.map(
            _double, [1, 2, 3],
            on_result=lambda i, r: seen.append((i, r)),
        ) == [2, 4, 6]
        assert executor.fallbacks == 1
        assert seen == [(0, 2), (1, 4), (2, 6)]

    def test_worker_against_down_broker_is_a_clean_error(self):
        with pytest.raises(ReproError) as excinfo:
            worker_loop("127.0.0.1:1")
        assert "cannot connect to broker" in str(excinfo.value)


class TestLocalSizingMemo:
    def test_cell_sizing_solved_once_per_local_run(self, monkeypatch):
        from repro.core.sizing import BufferSizer
        from repro.dist import jobs as dist_jobs

        calls = []
        original = BufferSizer.size

        def counting(self, topology):
            calls.append(1)
            return original(self, topology)

        monkeypatch.setattr(BufferSizer, "size", counting)
        outcome = run_matrix(
            ["single-bus-4"], budgets=[8], replications=3, duration=100.0
        )
        # Three replication blocks share one cell: one solve, not three.
        assert len(calls) == 1
        assert outcome.cells[0].summary.num_replications == 3
        # The run-scoped memo is uninstalled afterwards.
        assert dist_jobs.active_cache() is None

    def test_process_memo_supports_the_full_store_interface(self, amba):
        # sweeps and context.replicate address the cache piecewise
        # (key/lookup/put), not only through fetch — a memo-backed
        # context must support every runtime path.
        from repro.dist.jobs import ProcessMemo

        memo = ProcessMemo()
        context = ExecutionContext(cache=memo)
        capacities = {name: 3 for name in amba.processors}
        first = context.replicate(
            amba, capacities, replications=2, duration=150.0
        )
        second = context.replicate(
            amba, capacities, replications=2, duration=150.0
        )
        assert memo.hits == 1
        assert first.results == second.results
        sweep = context.sweep(amba, [10, 10])
        assert sweep.points[0].result is sweep.points[1].result


class TestBrokerShutdown:
    """Regression tests for BrokerServer.stop() (PR 5 left the
    listener open because the stdlib accepter busy-spins on accept
    errors; the stoppable server must free the port and end the
    thread)."""

    def test_stop_frees_port_ends_thread_and_refuses(self):
        server = BrokerServer(
            port=0, lease_timeout=LEASE_TIMEOUT
        ).start_in_thread()
        host, port = server.address
        # Sanity: the broker answers while up.
        executor = DistExecutor(server.address, retry=_FAST_RETRY)
        assert executor.stats()["workers"] == 0
        server.stop()
        assert server._thread is None  # accept thread joined, not leaked
        # The port is immediately rebindable — the listener socket is
        # really closed, not leaked to a spinning daemon thread.
        rebound = BrokerServer(
            host=host, port=port, lease_timeout=LEASE_TIMEOUT
        )
        assert rebound.address == (host, port)
        rebound.stop()
        # And a client sees a clean, fast refusal — never a hang.
        dead = DistExecutor(server.address, retry=_FAST_RETRY)
        with pytest.raises(ReproError, match="cannot connect"):
            dead.stats()

    def test_stop_is_idempotent(self):
        server = BrokerServer(
            port=0, lease_timeout=LEASE_TIMEOUT
        ).start_in_thread()
        server.stop()
        server.stop()  # second stop must be a no-op, not an error

    def test_stop_before_serve_frees_the_port(self):
        server = BrokerServer(port=0, lease_timeout=LEASE_TIMEOUT)
        host, port = server.address
        server.stop()
        rebound = BrokerServer(
            host=host, port=port, lease_timeout=LEASE_TIMEOUT
        )
        rebound.stop()

    def test_probe_rejects_listener_that_never_answers(self):
        # A kernel backlog kept alive by a leaked listener fd accepts
        # connections nobody will serve; the pre-handshake probe must
        # turn that into a fast refusal instead of letting the manager
        # handshake block forever.
        import socket as socket_module

        from repro.dist.queue import _probe_listener

        silent = socket_module.socket()
        silent.bind(("127.0.0.1", 0))
        silent.listen(1)
        try:
            with pytest.raises(ConnectionRefusedError, match="challenge"):
                _probe_listener(
                    silent.getsockname(), challenge_timeout=0.1
                )
        finally:
            silent.close()


class TestReaperIdempotence:
    """A worker reaped mid-result-upload must cost exactly one reap:
    no double-counted steals/reaps/completions, no phantom worker."""

    def _lease_one(self, broker):
        broker.submit("b", [JobPayload(echo, 1)])
        granted = broker.pull("stalled-worker", max_jobs=1)
        assert len(granted) == 1
        job_id = granted[0][0]
        assert broker.start("stalled-worker", job_id)
        return job_id

    def test_late_completion_counts_once_and_never_resurrects(self):
        clock = _FakeClock()
        broker = Broker(lease_timeout=5.0, clock=clock)
        job_id = self._lease_one(broker)
        # The worker stalls: no beats past the lease timeout; the
        # driver's poll reaps it and re-enqueues the job.
        clock.advance(6.0)
        assert broker.fetch_ready("b", 0) == []
        stats = broker.stats()
        assert stats["reaped_jobs"] == 1
        assert stats["workers"] == 0
        assert stats["pending"] == 1
        # The stalled worker was killed mid-upload — its completion
        # lands late.  It must store the result exactly once and must
        # NOT re-register the reaped worker as live.
        broker.complete("stalled-worker", job_id, "late-result")
        stats = broker.stats()
        assert stats["completed"] == 1
        assert stats["workers"] == 0  # no phantom resurrection
        # The re-enqueued copy is now moot: a second worker pulling it
        # gets nothing (the payload is settled), and its own late
        # "completion" of the same job is ignored.
        assert broker.pull("healthy-worker", max_jobs=4) == []
        broker.complete("healthy-worker", job_id, "duplicate-result")
        stats = broker.stats()
        assert stats["completed"] == 1  # not double-counted
        assert stats["steals"] == 0
        assert broker.fetch_ready("b", 0) == ["late-result"]
        # Further reap cycles have nothing left to reap.
        clock.advance(20.0)
        broker.fetch_ready("b", 0)
        assert broker.stats()["reaped_jobs"] == 1

    def test_reaped_worker_reregisters_on_next_pull(self):
        clock = _FakeClock()
        broker = Broker(lease_timeout=5.0, clock=clock)
        self._lease_one(broker)
        clock.advance(6.0)
        broker.fetch_ready("b", 0)
        assert broker.stats()["workers"] == 0
        # start() on a reaped lease refuses (the job was re-enqueued)
        # and does not resurrect either.
        granted = broker.pull("stalled-worker", max_jobs=1)
        assert len(granted) == 1  # honest re-registration via pull
        assert broker.stats()["workers"] == 1


class TestFailureTextBounds:
    def test_short_text_unchanged(self):
        from repro.dist.queue import truncate_failure_text

        assert truncate_failure_text("tiny", 100) == "tiny"

    def test_long_text_bounded_keeps_head_and_tail(self):
        from repro.dist.queue import truncate_failure_text

        text = "HEAD" + "x" * 50_000 + "TAIL"
        bounded = truncate_failure_text(text, 2_000)
        assert len(bounded) <= 2_000
        assert bounded.startswith("HEAD")
        assert bounded.endswith("TAIL")
        assert "characters truncated" in bounded

    def test_job_failure_payload_is_bounded(self):
        from repro.dist.queue import JobFailure
        from repro.dist.worker import _execute

        failure = _execute(
            JobPayload(_boom_with_huge_message, 1), max_failure_text=500
        )
        assert isinstance(failure, JobFailure)
        assert len(failure.error) <= 500
        assert len(failure.traceback) <= 500
        assert "ValueError" in failure.error

    def test_default_bound_is_sane(self):
        from repro.dist.queue import MAX_FAILURE_TEXT

        assert 1_000 <= MAX_FAILURE_TEXT <= 1_000_000


def _sleepy(item):
    time.sleep(float(item["duration"]))
    return item["index"]


class TestCostScheduling:
    """The schedule="cost" policy: LPT dispatch, sized leases, pinning.

    Every test here is about *when* jobs run, never *what* they
    return — the determinism matrix below pins down that the answers
    are bitwise the serial ones regardless.
    """

    def _trained_broker(self, unit_cost=0.1, **kwargs):
        """A cost-mode broker whose model predicts ``unit_cost``/unit."""
        kwargs.setdefault("schedule", "cost")
        broker = Broker(lease_timeout=10.0, **kwargs)
        for _ in range(10):
            broker.cost_model.observe({"kind": "echo", "units": 1.0}, unit_cost)
        return broker

    @staticmethod
    def _features(units_list):
        return [{"kind": "echo", "units": float(u)} for u in units_list]

    def test_cost_batch_dispatches_longest_first(self):
        broker = self._trained_broker()
        units = [1, 8, 2, 5]
        broker.submit(
            "b",
            [JobPayload(echo, i) for i in range(4)],
            features=self._features(units),
            schedule="cost",
        )
        order = [
            broker.pull("w", max_jobs=1)[0][0][1] for _ in range(4)
        ]
        assert order == [1, 3, 2, 0]  # indices by descending units

    def test_cold_start_cost_order_equals_fifo(self):
        # No observations, identical features: predictions tie, the
        # stable sort keeps submission order — exactly FIFO.
        broker = Broker(lease_timeout=10.0, schedule="cost")
        broker.submit(
            "b",
            [JobPayload(echo, i) for i in range(5)],
            features=self._features([1, 1, 1, 1, 1]),
            schedule="cost",
        )
        order = [
            broker.pull("w", max_jobs=1)[0][0][1] for _ in range(5)
        ]
        assert order == [0, 1, 2, 3, 4]

    def test_fifo_batches_ignore_the_cost_order(self):
        broker = self._trained_broker()
        broker.submit(
            "b",
            [JobPayload(echo, i) for i in range(3)],
            features=self._features([1, 9, 1]),
            schedule="fifo",
        )
        order = [
            broker.pull("w", max_jobs=1)[0][0][1] for _ in range(3)
        ]
        assert order == [0, 1, 2]

    def test_cheap_jobs_lease_in_bulk_and_pinned(self):
        # unit cost 0.1, lease_target 0.5 -> five 1-unit jobs per lease.
        broker = self._trained_broker(unit_cost=0.1, lease_target=0.5)
        broker.submit(
            "b",
            [JobPayload(echo, i) for i in range(8)],
            features=self._features([1] * 8),
            schedule="cost",
        )
        lease = broker.lease_jobs("w1", max_jobs=2)
        assert len(lease["jobs"]) == 5
        assert lease["pinned"]
        stats = broker.stats()
        assert stats["lease_resizes"] == 1  # granted 5, requested 2
        assert stats["pinned_leases"] == 1
        # Pinned jobs read as started: an idle peer cannot steal them.
        assert broker.pull("w2", max_jobs=1)[0][0][1] == 5

    def test_long_job_leases_alone_unpinned(self):
        broker = self._trained_broker(unit_cost=0.1, lease_target=0.5)
        broker.submit(
            "b",
            [JobPayload(echo, i) for i in range(3)],
            features=self._features([50, 1, 1]),
            schedule="cost",
        )
        lease = broker.lease_jobs("w1", max_jobs=4)
        assert [job_id for job_id, _ in lease["jobs"]] == [("b", 0)]
        assert not lease["pinned"]  # predicted 5s > target: stealable
        # Drain the cheap tail to w1 too (it leases pinned), leaving
        # the long job as the only unstarted lease: a thief CAN take
        # it, unlike the pinned pair.
        tail = broker.lease_jobs("w1", max_jobs=4)
        assert tail["pinned"] and len(tail["jobs"]) == 2
        assert broker.pull("w2", max_jobs=1)[0][0] == ("b", 0)

    def test_featureless_lease_respects_requested_max_jobs(self):
        broker = Broker(lease_timeout=10.0)  # fifo, no features
        broker.submit("b", [JobPayload(echo, i) for i in range(6)])
        lease = broker.lease_jobs("w1", max_jobs=2)
        assert len(lease["jobs"]) == 2
        assert not lease["pinned"]
        assert broker.stats()["lease_resizes"] == 0

    def test_invalid_schedule_rejected(self):
        with pytest.raises(ReproError):
            Broker(lease_timeout=10.0, schedule="random")
        broker = Broker(lease_timeout=10.0)
        with pytest.raises(ReproError):
            broker.submit("b", [JobPayload(echo, 0)], schedule="lifo")
        with pytest.raises(ReproError):
            Broker(lease_timeout=10.0, lease_target=0.0)
        with pytest.raises(ReproError):
            DistExecutor("127.0.0.1:1", schedule="random")


class TestBatchedTransport:
    def test_wire_pack_roundtrip(self):
        from repro.dist import WireBlob, wire_pack, wire_unpack

        value = {"key": list(range(1000))}
        packed = wire_pack(value, threshold=16)
        assert isinstance(packed, WireBlob)
        assert wire_unpack(packed) == value
        # Below threshold (or disabled): passthrough, not an envelope.
        assert wire_pack(7, threshold=16) == 7
        assert wire_pack(value, threshold=None) is value
        assert wire_unpack("plain") == "plain"

    def test_wire_unpack_rejects_unknown_tag(self):
        from repro.dist import WireBlob, wire_unpack

        with pytest.raises(ReproError):
            wire_unpack(WireBlob(data=b"?garbage"))

    def test_complete_many_is_idempotent_under_replay(self):
        broker = Broker(lease_timeout=10.0)
        broker.submit("b", [JobPayload(echo, i) for i in range(3)])
        leased = broker.lease_jobs("w", max_jobs=3)["jobs"]
        batch = [
            (job_id, payload.item, 0.01) for job_id, payload in leased
        ]
        broker.complete_many("w", batch)
        # The reconnect scenario: the worker cannot know whether the
        # first upload landed, so it replays the whole outbox.
        broker.complete_many("w", batch)
        stats = broker.stats()
        assert stats["completed"] == 3  # each result counted once
        assert stats["batched_uploads"] == 2
        assert stats["batched_jobs"] == 6
        assert broker.fetch_ready("b", 0) == [0, 1, 2]

    def test_worker_ships_batched_uploads(self, server):
        worker = _start_worker(server.address, upload_batch=4)
        try:
            executor = DistExecutor(
                server.address, poll_interval=0.02, timeout=60
            )
            items = list(range(12))
            assert executor.map(_double, items) == [2 * x for x in items]
            stats = server.broker.stats()
            assert stats["batched_uploads"] >= 1
            assert stats["batched_jobs"] >= len(items)
        finally:
            worker.terminate()

    def test_upload_batch_one_keeps_legacy_wire_shape(self, server):
        worker = _start_worker(server.address, upload_batch=1)
        try:
            executor = DistExecutor(
                server.address, poll_interval=0.02, timeout=60
            )
            assert executor.map(_double, [1, 2, 3]) == [2, 4, 6]
            assert server.broker.stats()["batched_uploads"] == 0
        finally:
            worker.terminate()

    def test_compressed_payloads_and_results_roundtrip(self, server):
        worker = _start_worker(server.address, compress_threshold=64)
        try:
            executor = DistExecutor(
                server.address,
                poll_interval=0.02,
                timeout=60,
                compress_threshold=64,
            )
            items = [{"index": i, "blob": "x" * 4096} for i in range(4)]
            assert executor.map(echo, items) == items
        finally:
            worker.terminate()


class TestAdaptivePolling:
    def _quiet_broker(self, quiet_polls):
        class _QuietThenDone:
            """No results for ``quiet_polls`` fetches, then everything."""

            def __init__(self):
                self.fetches = 0
                self.total = 0

            def submit(self, batch_id, payloads, features=None,
                       schedule=None):
                self.total = len(payloads)

            def fetch_ready(self, batch_id, start):
                self.fetches += 1
                if self.fetches <= quiet_polls:
                    return []
                return list(range(start, self.total))

            def batch_status(self, batch_id):
                return (0, self.total)

            def stats(self):
                return {"workers": 1}

            def drop_batch(self, batch_id):
                pass

        return _QuietThenDone()

    def test_quiet_polls_back_off_and_progress_resets(self, monkeypatch):
        from repro.dist import executor as executor_module

        sleeps = []
        monkeypatch.setattr(
            executor_module.time, "sleep", lambda s: sleeps.append(s)
        )
        executor = DistExecutor(
            "127.0.0.1:1", poll_interval=0.01, poll_max=0.05, timeout=60
        )
        fake = self._quiet_broker(quiet_polls=6)
        _plant_fake_broker(executor, fake)
        # The fake fabricates results as indices, hence echo over 0..1.
        assert executor.map(echo, [0, 1]) == [0, 1]
        # Backoff doubles from poll_interval and saturates at poll_max.
        assert sleeps == [0.01, 0.02, 0.04, 0.05, 0.05, 0.05]
        # Every quiet iteration still polled (fetch_ready drives broker
        # reaping and the deadline checks) — backoff never skips polls.
        assert fake.fetches == len(sleeps) + 1

    def test_backoff_resets_after_results_flow(self, monkeypatch):
        from repro.dist import executor as executor_module

        class _QuietBurstQuiet(self._quiet_broker(0).__class__):
            # 3 quiet polls, one result, 3 more quiet polls, the rest.
            def fetch_ready(self, batch_id, start):
                self.fetches += 1
                if self.fetches in (1, 2, 3, 5, 6, 7):
                    return []
                if self.fetches == 4:
                    return [0] if start == 0 else []
                return list(range(start, self.total))

        sleeps = []
        monkeypatch.setattr(
            executor_module.time, "sleep", lambda s: sleeps.append(s)
        )
        executor = DistExecutor(
            "127.0.0.1:1", poll_interval=0.01, poll_max=0.08, timeout=60
        )
        fake = _QuietBurstQuiet()
        _plant_fake_broker(executor, fake)
        assert executor.map(echo, [0, 1]) == [0, 1]
        # The delay climbed, snapped back to poll_interval on progress,
        # then climbed again.
        assert sleeps == [0.01, 0.02, 0.04, 0.01, 0.02, 0.04]

    def test_poll_max_defaults_sanely(self):
        assert DistExecutor("127.0.0.1:1").poll_max >= 0.5
        assert DistExecutor(
            "127.0.0.1:1", poll_interval=2.0
        ).poll_max == pytest.approx(2.0)


class TestCostModelPersistenceEndToEnd:
    def test_broker_saves_and_warm_starts_from_path(self, tmp_path):
        path = tmp_path / "costmodel.json"
        broker = Broker(
            lease_timeout=10.0, schedule="cost", cost_model_path=str(path)
        )
        features = {"kind": "echo", "units": 1.0}
        broker.submit(
            "b",
            [JobPayload(echo, i) for i in range(2)],
            features=[features, features],
            schedule="cost",
        )
        for job_id, payload in broker.lease_jobs("w", max_jobs=2)["jobs"]:
            broker.complete("w", job_id, payload.item, runtime=0.2)
        assert broker.cost_save()
        assert path.exists()
        reborn = Broker(
            lease_timeout=10.0, schedule="cost", cost_model_path=str(path)
        )
        assert reborn.cost_model.predict(features) == pytest.approx(
            broker.cost_model.predict(features)
        )

    def test_server_stop_persists_the_model(self, tmp_path):
        path = tmp_path / "costmodel.json"
        server = BrokerServer(
            port=0,
            lease_timeout=LEASE_TIMEOUT,
            schedule="cost",
            cost_model_path=str(path),
        ).start_in_thread()
        server.broker.cost_model.observe(
            {"kind": "echo", "units": 1.0}, 0.3
        )
        server.stop()
        assert path.exists()
        model_state = Broker(
            lease_timeout=10.0, cost_model_path=str(path)
        ).cost_model
        assert model_state.observations == 1

    def test_cost_seed_accepts_snapshot_and_bench_json(self):
        source = Broker(lease_timeout=10.0)
        source.cost_model.observe({"kind": "echo", "units": 1.0}, 0.7)
        target = Broker(lease_timeout=10.0)
        assert target.cost_seed(source.cost_snapshot())
        assert target.cost_model.predict(
            {"kind": "echo", "units": 1.0}
        ) == pytest.approx(0.7)
        bench_target = Broker(lease_timeout=10.0)
        assert bench_target.cost_seed(
            {
                "benchmarks": [
                    {
                        "extra_info": {"scenario": "amba"},
                        "stats": {"mean": 2.0},
                    },
                    {
                        "extra_info": {"scenario": "netproc"},
                        "stats": {"mean": 1.0},
                    },
                ]
            }
        )
        assert bench_target.cost_model.stats()["priors"] == 2


class TestCostDeterminismMatrix:
    """schedule="cost" cannot change a single bit of any result."""

    MATRIX = dict(budgets=[8, 16], replications=2, duration=100.0)

    @pytest.mark.parametrize("sim_backend", ["batched", "megabatch"])
    def test_cost_fifo_serial_identical_under_worker_death(
        self, server, sim_backend
    ):
        matrix = dict(self.MATRIX, sim_backend=sim_backend)
        serial = run_matrix(["single-bus-4"], jobs=1, **matrix)
        workers = [_start_worker(server.address) for _ in range(2)]
        killer = threading.Timer(0.4, workers[0].kill)
        killer.start()
        try:
            executor = DistExecutor(
                server.address, poll_interval=0.02, timeout=240
            )
            cost = run_matrix(
                ["single-bus-4"],
                executor=executor,
                schedule="cost",
                **matrix,
            )
            fifo = run_matrix(
                ["single-bus-4"],
                executor=executor,
                schedule="fifo",
                **matrix,
            )
        finally:
            killer.cancel()
            for worker in workers:
                worker.terminate()
        assert cost.to_jsonable() == serial.to_jsonable()
        assert fifo.to_jsonable() == serial.to_jsonable()

    def test_cost_schedule_with_steals_matches_serial_map(self, server):
        # Skewed sleeps + two workers: the second worker drains the
        # cheap tail (steals or fresh leases) while the first grinds
        # the long job the LPT order put first.
        workers = [_start_worker(server.address) for _ in range(2)]
        try:
            executor = DistExecutor(
                server.address,
                poll_interval=0.02,
                timeout=60,
                schedule="cost",
            )
            items = [
                {"index": i, "duration": 0.2 if i == 7 else 0.01}
                for i in range(8)
            ]
            # Warm the model so the cost path actually reorders.
            executor.map(_sleepy, items)
            assert executor.map(_sleepy, items) == list(range(8))
        finally:
            for worker in workers:
                worker.terminate()
