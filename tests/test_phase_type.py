"""Tests for repro.queueing.phase_type."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.queueing.phase_type import (
    MarkovianArrivalProcess,
    PhaseType,
    erlang_ph,
    exponential_ph,
    fit_two_moment_ph,
    hyperexponential_ph,
    mmpp2,
)


class TestConstruction:
    def test_exponential(self):
        ph = exponential_ph(2.0)
        assert ph.num_phases == 1
        assert ph.mean() == pytest.approx(0.5)
        assert ph.scv() == pytest.approx(1.0)

    def test_exponential_validation(self):
        with pytest.raises(ModelError):
            exponential_ph(0.0)

    def test_erlang(self):
        ph = erlang_ph(4, 4.0)  # mean = 4 / 4 = 1
        assert ph.mean() == pytest.approx(1.0)
        assert ph.scv() == pytest.approx(0.25)

    def test_erlang_validation(self):
        with pytest.raises(ModelError):
            erlang_ph(0, 1.0)
        with pytest.raises(ModelError):
            erlang_ph(2, -1.0)

    def test_hyperexponential(self):
        ph = hyperexponential_ph((1.0, 4.0), (0.4, 0.6))
        expected_mean = 0.4 / 1.0 + 0.6 / 4.0
        assert ph.mean() == pytest.approx(expected_mean)
        assert ph.scv() > 1.0

    def test_hyperexponential_validation(self):
        with pytest.raises(ModelError):
            hyperexponential_ph((1.0,), (0.5, 0.5))
        with pytest.raises(ModelError):
            hyperexponential_ph((1.0, -1.0), (0.5, 0.5))
        with pytest.raises(ModelError):
            hyperexponential_ph((1.0, 2.0), (0.5, 0.6))

    def test_bad_matrices(self):
        with pytest.raises(ModelError):
            PhaseType(np.array([1.0]), np.array([[1.0]]))  # positive diag
        with pytest.raises(ModelError):
            PhaseType(np.array([1.0, 0.0]), np.array([[-1.0]]))
        with pytest.raises(ModelError):
            PhaseType(np.array([0.5, 0.6]), -np.eye(2))


class TestMoments:
    def test_exponential_moments(self):
        ph = exponential_ph(3.0)
        assert ph.moment(1) == pytest.approx(1.0 / 3.0)
        assert ph.moment(2) == pytest.approx(2.0 / 9.0)

    def test_moment_validation(self):
        with pytest.raises(ModelError):
            exponential_ph(1.0).moment(0)

    def test_variance_nonnegative(self):
        ph = erlang_ph(3, 2.0)
        assert ph.variance() > 0

    def test_cdf_monotone(self):
        ph = erlang_ph(2, 2.0)
        values = [ph.cdf(x) for x in (0.0, 0.5, 1.0, 3.0, 10.0)]
        assert values[0] == pytest.approx(0.0)
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(1.0, abs=1e-5)

    def test_sample_mean(self):
        ph = erlang_ph(3, 3.0)
        rng = np.random.default_rng(0)
        samples = ph.sample(rng, 20_000)
        assert samples.mean() == pytest.approx(ph.mean(), rel=0.05)

    def test_sample_validation(self):
        with pytest.raises(ModelError):
            exponential_ph(1.0).sample(np.random.default_rng(0), -1)


class TestTwoMomentFit:
    def test_scv_one_is_exponential_like(self):
        ph = fit_two_moment_ph(2.0, 1.0)
        assert ph.mean() == pytest.approx(2.0)
        assert ph.scv() == pytest.approx(1.0, abs=1e-9)

    def test_high_scv(self):
        ph = fit_two_moment_ph(1.0, 4.0)
        assert ph.mean() == pytest.approx(1.0)
        assert ph.scv() == pytest.approx(4.0, rel=1e-6)

    def test_low_scv(self):
        ph = fit_two_moment_ph(1.0, 0.3)
        assert ph.mean() == pytest.approx(1.0)
        assert ph.scv() <= 0.5 + 1e-9

    def test_validation(self):
        with pytest.raises(ModelError):
            fit_two_moment_ph(0.0, 1.0)
        with pytest.raises(ModelError):
            fit_two_moment_ph(1.0, 0.0)

    @given(
        mean=st.floats(min_value=0.1, max_value=10.0),
        scv=st.floats(min_value=1.0, max_value=20.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_fit_matches_moments(self, mean, scv):
        ph = fit_two_moment_ph(mean, scv)
        assert ph.mean() == pytest.approx(mean, rel=1e-6)
        assert ph.scv() == pytest.approx(scv, rel=1e-4)


class TestMAP:
    def test_mmpp2_rate(self):
        m = mmpp2(rate_high=4.0, rate_low=1.0, switch_to_low=0.5,
                  switch_to_high=0.5)
        pi = m.phase_stationary()
        expected = pi[0] * 4.0 + pi[1] * 1.0
        assert m.arrival_rate() == pytest.approx(expected)

    def test_mmpp2_validation(self):
        with pytest.raises(ModelError):
            mmpp2(0.0, 1.0, 1.0, 1.0)

    def test_map_validation(self):
        with pytest.raises(ModelError):
            MarkovianArrivalProcess(
                np.array([[-1.0]]), np.array([[0.5]])
            )  # rows of D0+D1 must sum to 0

    def test_sample_rate(self):
        m = mmpp2(rate_high=5.0, rate_low=1.0, switch_to_low=1.0,
                  switch_to_high=1.0)
        rng = np.random.default_rng(1)
        gaps = m.sample_interarrivals(rng, 20_000)
        assert 1.0 / gaps.mean() == pytest.approx(m.arrival_rate(), rel=0.1)

    def test_mmpp_burstier_than_poisson(self):
        m = mmpp2(rate_high=10.0, rate_low=0.5, switch_to_low=0.2,
                  switch_to_high=0.2)
        rng = np.random.default_rng(2)
        gaps = m.sample_interarrivals(rng, 20_000)
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.2
