"""Tests for repro.core.lp — the occupation-measure LP."""

import numpy as np
import pytest

from repro.core.bus_model import (
    BUS_TIME,
    SPACE,
    BusClient,
    build_client_chain_ctmdp,
    build_joint_bus_ctmdp,
    bus_time_coefficients,
)
from repro.core.ctmdp import CTMDP
from repro.core.lp import AverageCostLP, BlockLP, ConstraintSpec
from repro.errors import InfeasibleError, SolverError
from repro.queueing.mm1k import MM1KQueue


def forced_serve_queue(lam=1.0, mu=2.0, k=3, weight=1.0):
    """A single-client bus where serving is the only action: an M/M/1/K."""
    client = BusClient("p", lam, mu, k, loss_weight=weight)
    model = CTMDP()
    for q in range(k + 1):
        loss = weight * lam if q == k else 0.0
        transitions = []
        if q < k:
            transitions.append((q + 1, lam))
        if q > 0:
            transitions.append((q - 1, mu))
        model.add_action(
            q, "serve", transitions, cost_rate=loss,
            constraint_rates={SPACE: float(q)},
        )
    return model, client


class TestUnconstrainedLP:
    def test_single_action_matches_mm1k_loss(self):
        lam, mu, k = 1.0, 2.0, 3
        model, _ = forced_serve_queue(lam, mu, k)
        solution = AverageCostLP(model).solve()
        expected = MM1KQueue(lam, mu, k).loss_rate()
        assert solution.objective == pytest.approx(expected, abs=1e-9)

    def test_occupation_sums_to_one(self):
        model, _ = forced_serve_queue()
        solution = AverageCostLP(model).solve()
        assert sum(solution.occupations[0].values()) == pytest.approx(1.0)

    def test_occupation_matches_mm1k_distribution(self):
        lam, mu, k = 1.5, 2.0, 4
        model, _ = forced_serve_queue(lam, mu, k)
        solution = AverageCostLP(model).solve()
        probs = MM1KQueue(lam, mu, k).state_probabilities()
        for q in range(k + 1):
            assert solution.occupations[0][(q, "serve")] == pytest.approx(
                probs[q], abs=1e-8
            )

    def test_joint_bus_prefers_cheaper_loss(self):
        # Two clients, one with much larger loss weight: the arbiter must
        # prioritise it, and the LP cost must beat the reversed priority.
        clients = [
            BusClient("hot", 1.0, 2.0, 2, loss_weight=10.0),
            BusClient("cold", 1.0, 2.0, 2, loss_weight=0.1),
        ]
        model = build_joint_bus_ctmdp(clients)
        solution = AverageCostLP(model).solve()
        # Deterministic "serve cold first whenever possible" policy:
        from repro.core.policy import StationaryPolicy

        worst = {}
        for state in model.states:
            actions = model.actions(state)
            if "cold" in actions:
                worst[state] = "cold"
            else:
                worst[state] = actions[0]
        worst_cost = StationaryPolicy.deterministic(
            model, worst
        ).average_cost_rate()
        assert solution.objective < worst_cost

    def test_lp_policy_cost_matches_objective(self):
        clients = [
            BusClient("a", 0.8, 2.0, 2),
            BusClient("b", 1.2, 2.5, 2),
        ]
        model = build_joint_bus_ctmdp(clients)
        solution = AverageCostLP(model).solve()
        achieved = solution.policies[0].average_cost_rate()
        assert achieved == pytest.approx(solution.objective, abs=1e-7)

    def test_maximise_flag(self):
        model, _ = forced_serve_queue()
        low = AverageCostLP(model).solve().objective
        high = AverageCostLP(model).solve(maximise=True).objective
        # Single action => same stationary law either way.
        assert low == pytest.approx(high)


class TestConstrainedLP:
    def test_space_constraint_binds(self):
        # Queue with slow (cheap) and fast (expensive) service.  An upper
        # bound on expected occupancy forces the fast action.
        lam, mu_slow, mu_fast, k = 2.0, 1.0, 6.0, 5
        model = CTMDP()
        for q in range(k + 1):
            arrivals = [(q + 1, lam)] if q < k else []
            if q == 0:
                model.add_action(
                    q, "wait", arrivals, cost_rate=0.0,
                    constraint_rates={SPACE: 0.0},
                )
                continue
            for name, mu, cost in (
                ("slow", mu_slow, 0.0),
                ("fast", mu_fast, 1.0),
            ):
                model.add_action(
                    q, name, arrivals + [(q - 1, mu)], cost_rate=cost,
                    constraint_rates={SPACE: float(q)},
                )
        unconstrained = AverageCostLP(model).solve()
        mean_q = unconstrained.constraint_values.get((0, SPACE))
        # Unconstrained optimum is all-slow (zero cost) -> high occupancy.
        slow_mean = sum(
            q * mass
            for (q, _a), mass in unconstrained.occupations[0].items()
        )
        bound = 0.5 * slow_mean
        solution = AverageCostLP(model).solve(
            constraints=[ConstraintSpec(SPACE, bound)]
        )
        achieved = solution.constraint_values[(0, SPACE)]
        assert achieved <= bound + 1e-8
        # Meeting the bound requires paying for fast service.
        assert solution.objective > 0.0

    def test_infeasible_constraint_raises(self):
        # Single action: the stationary law is fixed, so a bound below its
        # expected occupancy cannot be met.
        lam, mu, k = 5.0, 1.0, 4
        model, _ = forced_serve_queue(lam, mu, k)
        base = AverageCostLP(model).solve()
        mean_q = sum(
            q * mass for (q, _a), mass in base.occupations[0].items()
        )
        with pytest.raises(InfeasibleError):
            AverageCostLP(model).solve(
                constraints=[ConstraintSpec(SPACE, 0.01 * mean_q)]
            )

    def test_k_switching_bound_on_randomisation(self):
        # One constraint => optimal policy randomises in at most 1 state
        # (Feinberg 2002).  Use the decomposed client model where idling
        # is allowed, so the constraint genuinely trades off.
        client = BusClient("p", 1.0, 3.0, 4)
        model = build_client_chain_ctmdp(client)
        base = AverageCostLP(model).solve(
            constraints=[ConstraintSpec(BUS_TIME, 1.0)]
        )
        # Tighten bus time so the constraint binds.
        busy = base.constraint_values[(0, BUS_TIME)]
        solution = AverageCostLP(model).solve(
            constraints=[ConstraintSpec(BUS_TIME, 0.6 * busy)]
        )
        randomised = solution.policies[0].randomised_states()
        assert len(randomised) <= 1


class TestBlockLP:
    def test_two_independent_blocks_sum(self):
        m1, _ = forced_serve_queue(1.0, 2.0, 3)
        m2, _ = forced_serve_queue(2.0, 2.5, 4)
        separate = (
            AverageCostLP(m1).solve().objective
            + AverageCostLP(m2).solve().objective
        )
        block = BlockLP()
        block.add_block(m1)
        block.add_block(m2)
        joint = block.solve()
        assert joint.objective == pytest.approx(separate, abs=1e-9)
        assert len(joint.occupations) == 2
        assert len(joint.policies) == 2

    def test_block_weights_scale_objective(self):
        m1, _ = forced_serve_queue(1.0, 2.0, 3)
        block = BlockLP()
        block.add_block(m1, weight=3.0)
        base = AverageCostLP(m1).solve().objective
        assert block.solve().objective == pytest.approx(3.0 * base)

    def test_shared_bus_time_constraint(self):
        # Two decomposed clients sharing one bus: total serving time <= 1.
        c1 = BusClient("p1", 2.0, 2.5, 3)
        c2 = BusClient("p2", 2.0, 2.5, 3)
        m1 = build_client_chain_ctmdp(c1)
        m2 = build_client_chain_ctmdp(c2)
        block = BlockLP()
        block.add_block(m1)
        block.add_block(m2)
        block.add_shared_constraint(
            "bus",
            [bus_time_coefficients(m1), bus_time_coefficients(m2)],
            bound=1.0,
        )
        solution = block.solve()
        assert solution.constraint_values["bus"] <= 1.0 + 1e-8
        # Each client is overloaded (lambda ~ 0.8 mu); sharing must leave
        # some loss but less than not serving at all.
        assert 0.0 < solution.objective < 4.0

    def test_shared_budget_helper(self):
        c1 = BusClient("p1", 1.0, 2.0, 4)
        m1 = build_client_chain_ctmdp(c1)
        block = BlockLP()
        block.add_block(m1)
        block.add_shared_budget("budget", SPACE, bound=1.0)
        solution = block.solve()
        assert solution.constraint_values["budget"] <= 1.0 + 1e-8

    def test_empty_block_lp_rejected(self):
        with pytest.raises(SolverError, match="no blocks"):
            BlockLP().solve()

    def test_negative_weight_rejected(self):
        m1, _ = forced_serve_queue()
        with pytest.raises(SolverError, match="weight"):
            BlockLP().add_block(m1, weight=-1.0)

    def test_wrong_coefficient_count_rejected(self):
        m1, _ = forced_serve_queue()
        block = BlockLP()
        block.add_block(m1)
        with pytest.raises(SolverError, match="coefficient maps"):
            block.add_shared_constraint("x", [], 1.0)

    def test_unknown_pair_in_shared_constraint(self):
        m1, _ = forced_serve_queue()
        block = BlockLP()
        block.add_block(m1)
        block.add_shared_constraint("x", [{(99, "zzz"): 1.0}], 1.0)
        with pytest.raises(SolverError, match="unknown state-action"):
            block.solve()
