"""Tests for repro.core.bus_model."""

import numpy as np
import pytest

from repro.core.bus_model import (
    BUS_TIME,
    IDLE,
    SPACE,
    BusClient,
    build_client_chain_ctmdp,
    build_joint_bus_ctmdp,
    bus_time_coefficients,
    chain_client_marginal,
    joint_client_marginals,
    joint_state_space_size,
    space_coefficients,
)
from repro.core.lp import AverageCostLP, BlockLP, ConstraintSpec
from repro.errors import ModelError
from repro.queueing.mm1k import MM1KQueue


class TestBusClient:
    def test_validation(self):
        with pytest.raises(ModelError):
            BusClient("", 1.0, 1.0, 1)
        with pytest.raises(ModelError):
            BusClient("p", -1.0, 1.0, 1)
        with pytest.raises(ModelError):
            BusClient("p", 1.0, 0.0, 1)
        with pytest.raises(ModelError):
            BusClient("p", 1.0, 1.0, 0)
        with pytest.raises(ModelError):
            BusClient("p", 1.0, 1.0, 1, loss_weight=-2.0)

    def test_with_capacity(self):
        c = BusClient("p", 1.0, 2.0, 3)
        c2 = c.with_capacity(7)
        assert c2.capacity == 7
        assert c2.name == "p"
        assert c.capacity == 3

    def test_with_arrival_rate(self):
        c = BusClient("p", 1.0, 2.0, 3)
        c2 = c.with_arrival_rate(0.25)
        assert c2.arrival_rate == 0.25
        assert c.arrival_rate == 1.0


class TestJointModel:
    def test_state_space_size(self):
        clients = [
            BusClient("a", 1.0, 1.0, 2),
            BusClient("b", 1.0, 1.0, 3),
        ]
        assert joint_state_space_size(clients) == 12
        model = build_joint_bus_ctmdp(clients)
        assert model.num_states == 12

    def test_duplicate_names_rejected(self):
        with pytest.raises(ModelError, match="duplicate"):
            build_joint_bus_ctmdp(
                [BusClient("a", 1.0, 1.0, 1), BusClient("a", 1.0, 1.0, 1)]
            )

    def test_empty_rejected(self):
        with pytest.raises(ModelError, match="at least one client"):
            build_joint_bus_ctmdp([])

    def test_empty_state_only_idle(self):
        clients = [BusClient("a", 1.0, 1.0, 1), BusClient("b", 1.0, 1.0, 1)]
        model = build_joint_bus_ctmdp(clients)
        assert model.actions((0, 0)) == [IDLE]

    def test_nonempty_state_serves_nonempty_clients(self):
        clients = [BusClient("a", 1.0, 1.0, 1), BusClient("b", 1.0, 1.0, 1)]
        model = build_joint_bus_ctmdp(clients)
        assert set(model.actions((1, 0))) == {"a"}
        assert set(model.actions((1, 1))) == {"a", "b"}

    def test_loss_cost_only_when_full(self):
        clients = [BusClient("a", 2.0, 1.0, 2, loss_weight=3.0)]
        model = build_joint_bus_ctmdp(clients)
        assert model.cost_rate((0,), IDLE) == 0.0
        assert model.cost_rate((2,), "a") == pytest.approx(6.0)

    def test_space_constraints(self):
        clients = [BusClient("a", 1.0, 1.0, 2), BusClient("b", 1.0, 1.0, 2)]
        model = build_joint_bus_ctmdp(clients)
        assert model.constraint_rate(SPACE, (1, 2), "a") == 3.0
        assert model.constraint_rate(f"{SPACE}:a", (1, 2), "a") == 1.0
        assert model.constraint_rate(f"{SPACE}:b", (1, 2), "a") == 2.0

    def test_single_client_equals_mm1k(self):
        lam, mu, k = 1.3, 2.1, 4
        model = build_joint_bus_ctmdp([BusClient("p", lam, mu, k)])
        solution = AverageCostLP(model).solve()
        expected = MM1KQueue(lam, mu, k).loss_rate()
        # With one client, serving whenever non-empty is optimal, giving
        # exactly the M/M/1/K loss rate.
        assert solution.objective == pytest.approx(expected, abs=1e-9)

    def test_marginals_sum_to_one(self):
        clients = [
            BusClient("a", 1.0, 2.0, 2),
            BusClient("b", 0.5, 1.5, 2),
        ]
        model = build_joint_bus_ctmdp(clients)
        solution = AverageCostLP(model).solve()
        marginals = joint_client_marginals(clients, solution.occupations[0])
        for name, p in marginals.items():
            assert p.sum() == pytest.approx(1.0)
            assert p.shape == (3,)

    def test_marginals_reject_empty_measure(self):
        clients = [BusClient("a", 1.0, 2.0, 1)]
        with pytest.raises(ModelError, match="no mass"):
            joint_client_marginals(clients, {})


class TestChainModel:
    def test_states_and_actions(self):
        client = BusClient("p", 1.0, 2.0, 3)
        model = build_client_chain_ctmdp(client)
        assert model.num_states == 4
        assert model.actions(0) == [IDLE]
        assert set(model.actions(2)) == {IDLE, "serve"}

    def test_bus_time_only_on_serve(self):
        client = BusClient("p", 1.0, 2.0, 2)
        model = build_client_chain_ctmdp(client)
        assert model.constraint_rate(BUS_TIME, 1, "serve") == 1.0
        assert model.constraint_rate(BUS_TIME, 1, IDLE) == 0.0

    def test_always_serve_matches_mm1k(self):
        lam, mu, k = 1.0, 2.5, 4
        client = BusClient("p", lam, mu, k)
        model = build_client_chain_ctmdp(client)
        # Unconstrained: serving whenever possible is optimal.
        solution = AverageCostLP(model).solve()
        expected = MM1KQueue(lam, mu, k).loss_rate()
        assert solution.objective == pytest.approx(expected, abs=1e-9)

    def test_bus_time_coefficients_only_serve_pairs(self):
        client = BusClient("p", 1.0, 2.0, 2)
        model = build_client_chain_ctmdp(client)
        coeffs = bus_time_coefficients(model)
        assert all(a == "serve" for (_s, a) in coeffs)
        assert len(coeffs) == 2  # states 1 and 2

    def test_space_coefficients(self):
        client = BusClient("p", 1.0, 2.0, 2)
        model = build_client_chain_ctmdp(client)
        coeffs = space_coefficients(model)
        # States 1 (idle+serve) and 2 (idle+serve) have space > 0.
        assert len(coeffs) == 4
        assert coeffs[(2, "serve")] == 2.0

    def test_chain_marginal(self):
        client = BusClient("p", 1.0, 2.0, 3)
        model = build_client_chain_ctmdp(client)
        solution = AverageCostLP(model).solve()
        p = chain_client_marginal(client, solution.occupations[0])
        assert p.sum() == pytest.approx(1.0)
        expected = MM1KQueue(1.0, 2.0, 3).state_probabilities()
        assert np.allclose(p, expected, atol=1e-8)

    def test_chain_marginal_rejects_empty(self):
        client = BusClient("p", 1.0, 2.0, 2)
        with pytest.raises(ModelError, match="no mass"):
            chain_client_marginal(client, {})


class TestDecompositionQuality:
    def test_shared_bus_approximates_joint(self):
        """Decomposed LP loss must be close to (and optimistic versus)
        the exact joint model on a light-load two-client bus."""
        clients = [
            BusClient("a", 0.5, 2.0, 3),
            BusClient("b", 0.4, 2.0, 3),
        ]
        joint = AverageCostLP(build_joint_bus_ctmdp(clients)).solve()
        block = BlockLP()
        models = [build_client_chain_ctmdp(c) for c in clients]
        for m in models:
            block.add_block(m)
        block.add_shared_constraint(
            "bus",
            [bus_time_coefficients(m) for m in models],
            bound=1.0,
        )
        decomposed = block.solve()
        # The decomposition relaxes the bus (fluid sharing), so it cannot
        # be pessimistic by much; allow generous tolerance but require the
        # same order of magnitude.
        assert decomposed.objective <= joint.objective + 1e-6
        assert decomposed.objective >= 0.0
