"""Tests for repro.queueing.erlang."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.queueing.erlang import (
    erlang_b,
    erlang_b_inverse,
    erlang_c,
    offered_load_for_blocking,
)


class TestErlangB:
    def test_zero_servers_blocks_everything(self):
        assert erlang_b(2.5, 0) == 1.0

    def test_zero_load_never_blocks(self):
        assert erlang_b(0.0, 3) == 0.0

    def test_one_server_closed_form(self):
        e = 1.5
        assert erlang_b(e, 1) == pytest.approx(e / (1 + e))

    def test_known_value(self):
        # Classic table value: B(E=10, c=10) ~ 0.2146.
        assert erlang_b(10.0, 10) == pytest.approx(0.2146, abs=2e-4)

    def test_matches_direct_formula_small(self):
        e, c = 2.0, 4
        numer = e**c / math.factorial(c)
        denom = sum(e**k / math.factorial(k) for k in range(c + 1))
        assert erlang_b(e, c) == pytest.approx(numer / denom)

    def test_validation(self):
        with pytest.raises(ModelError):
            erlang_b(-1.0, 2)
        with pytest.raises(ModelError):
            erlang_b(1.0, -2)

    @given(
        e=st.floats(min_value=0.01, max_value=50.0),
        c=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_in_unit_interval(self, e, c):
        b = erlang_b(e, c)
        assert 0.0 <= b <= 1.0

    @given(
        e=st.floats(min_value=0.01, max_value=50.0),
        c=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_monotone_in_servers(self, e, c):
        assert erlang_b(e, c + 1) <= erlang_b(e, c) + 1e-15


class TestErlangC:
    def test_known_value(self):
        # C(E=2, c=3): B(2,3)=0.21053, rho=2/3 => C = 0.44444.
        assert erlang_c(2.0, 3) == pytest.approx(0.44444, abs=2e-4)

    def test_validation(self):
        with pytest.raises(ModelError):
            erlang_c(3.0, 3)  # unstable
        with pytest.raises(ModelError):
            erlang_c(1.0, 0)
        with pytest.raises(ModelError):
            erlang_c(-1.0, 2)

    def test_erlang_c_at_least_erlang_b(self):
        assert erlang_c(2.0, 4) >= erlang_b(2.0, 4)


class TestInverses:
    def test_erlang_b_inverse_roundtrip(self):
        e, target = 5.0, 0.01
        c = erlang_b_inverse(e, target)
        assert erlang_b(e, c) <= target
        assert erlang_b(e, c - 1) > target

    def test_erlang_b_inverse_zero_load(self):
        assert erlang_b_inverse(0.0, 0.01) == 0

    def test_erlang_b_inverse_validation(self):
        with pytest.raises(ModelError):
            erlang_b_inverse(1.0, 0.0)
        with pytest.raises(ModelError):
            erlang_b_inverse(-1.0, 0.5)

    def test_offered_load_roundtrip(self):
        c, target = 8, 0.05
        e = offered_load_for_blocking(c, target)
        assert erlang_b(e, c) == pytest.approx(target, rel=1e-6)

    def test_offered_load_validation(self):
        with pytest.raises(ModelError):
            offered_load_for_blocking(0, 0.1)
        with pytest.raises(ModelError):
            offered_load_for_blocking(3, 1.5)

    @given(
        c=st.integers(min_value=1, max_value=30),
        target=st.floats(min_value=1e-4, max_value=0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_offered_load_positive(self, c, target):
        e = offered_load_for_blocking(c, target)
        assert e > 0
