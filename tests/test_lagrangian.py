"""Tests for repro.core.lagrangian — dual solver vs LP cross-check."""

import pytest

from repro.core.bus_model import SPACE
from repro.core.ctmdp import CTMDP
from repro.core.lagrangian import solve_constrained_dual
from repro.core.lp import AverageCostLP, ConstraintSpec
from repro.errors import InfeasibleError, SolverError


def two_speed_queue(lam=2.0, mu_slow=1.0, mu_fast=6.0, k=5, fast_cost=1.0):
    """Loss queue where fast service costs money; SPACE is constrained."""
    model = CTMDP()
    for q in range(k + 1):
        arrivals = [(q + 1, lam)] if q < k else []
        if q == 0:
            model.add_action(q, "wait", arrivals, cost_rate=0.0,
                             constraint_rates={SPACE: 0.0})
            continue
        model.add_action(q, "slow", arrivals + [(q - 1, mu_slow)],
                         cost_rate=0.0, constraint_rates={SPACE: float(q)})
        model.add_action(q, "fast", arrivals + [(q - 1, mu_fast)],
                         cost_rate=fast_cost,
                         constraint_rates={SPACE: float(q)})
    return model


class TestDualSolver:
    def test_slack_constraint_returns_unconstrained(self):
        model = two_speed_queue()
        solution = solve_constrained_dual(model, SPACE, bound=1e9)
        assert solution.multiplier == 0.0
        assert solution.mix_probability == 0.0
        lp = AverageCostLP(model).solve()
        assert solution.cost == pytest.approx(lp.objective, abs=1e-7)

    def test_binding_constraint_matches_lp(self):
        model = two_speed_queue()
        # Find a bound strictly between the all-slow and all-fast
        # occupancies so the constraint binds.
        unconstrained = AverageCostLP(model).solve()
        slack_occupancy = sum(
            q * mass
            for (q, _a), mass in unconstrained.occupations[0].items()
        )
        bound = 0.5 * slack_occupancy
        lp = AverageCostLP(model).solve(
            constraints=[ConstraintSpec(SPACE, bound)]
        )
        dual = solve_constrained_dual(model, SPACE, bound)
        assert dual.cost == pytest.approx(lp.objective, rel=1e-4, abs=1e-6)
        assert dual.constraint_value <= bound + 1e-6

    def test_mixture_structure(self):
        model = two_speed_queue()
        unconstrained = AverageCostLP(model).solve()
        slack_occupancy = sum(
            q * mass
            for (q, _a), mass in unconstrained.occupations[0].items()
        )
        dual = solve_constrained_dual(model, SPACE, 0.6 * slack_occupancy)
        # Feinberg: at most one randomisation for one constraint — here
        # realised as a two-policy mixture.
        assert 0.0 <= dual.mix_probability <= 1.0
        assert dual.policy_low.is_deterministic()
        assert dual.policy_high.is_deterministic()

    def test_infeasible_bound(self):
        model = two_speed_queue()
        with pytest.raises(InfeasibleError):
            solve_constrained_dual(model, SPACE, bound=1e-6)

    def test_unknown_constraint(self):
        model = two_speed_queue()
        with pytest.raises(SolverError, match="no constraint named"):
            solve_constrained_dual(model, "ghost", bound=1.0)

    def test_multiplier_monotone_in_bound(self):
        model = two_speed_queue()
        unconstrained = AverageCostLP(model).solve()
        slack_occupancy = sum(
            q * mass
            for (q, _a), mass in unconstrained.occupations[0].items()
        )
        tight = solve_constrained_dual(model, SPACE, 0.4 * slack_occupancy)
        loose = solve_constrained_dual(model, SPACE, 0.8 * slack_occupancy)
        assert tight.multiplier >= loose.multiplier - 1e-9
