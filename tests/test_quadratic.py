"""Tests for repro.core.quadratic — the naive coupled formulation."""

import pytest

from repro.arch.templates import paper_figure1, single_bus
from repro.arch.topology import Topology
from repro.core.quadratic import QuadraticCoupledSizer, QuadraticDiagnostics
from repro.errors import SolverError


def tiny_bridged():
    topo = Topology("tiny")
    topo.add_bus("x")
    topo.add_bus("y")
    topo.add_processor("a", "x", service_rate=4.0)
    topo.add_processor("b", "y", service_rate=4.0)
    topo.add_bridge("br", "x", "y", service_rate=3.0)
    topo.add_poisson_flow("ab", "a", "b", 0.8)
    return topo


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(SolverError):
            QuadraticCoupledSizer(capacity=0)

    def test_bad_max_iter(self):
        with pytest.raises(SolverError):
            QuadraticCoupledSizer(max_iter=0)


class TestDiagnostics:
    def test_single_bus_no_bilinear_terms(self):
        diag = QuadraticCoupledSizer(capacity=2).solve(single_bus())
        assert diag.num_bilinear_terms == 0
        # Without coupling the problem is linear and solvable.
        assert diag.solver_reported_success

    def test_tiny_bridged_has_bilinear_terms(self):
        diag = QuadraticCoupledSizer(capacity=1, max_iter=300).solve(
            tiny_bridged()
        )
        assert diag.num_bilinear_terms > 0
        assert diag.num_variables > 0
        assert diag.num_equality_constraints > 0
        assert diag.wall_time_seconds >= 0.0

    def test_paper_figure1_reports_coupling_scale(self):
        sizer = QuadraticCoupledSizer(capacity=1, max_iter=20)
        diag = sizer.solve(paper_figure1())
        # The point of the ablation: the naive formulation is large and
        # bilinear.  We assert the structure, not the failure mode, since
        # SLSQP behaviour varies; the bench records whichever happens.
        assert diag.num_bilinear_terms >= 10
        assert diag.num_variables >= 50
        assert isinstance(diag.success, bool)

    def test_success_requires_small_residual(self):
        diag = QuadraticCoupledSizer(capacity=1, max_iter=300).solve(
            tiny_bridged()
        )
        if diag.success:
            assert diag.max_residual <= 1e-5
