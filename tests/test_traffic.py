"""Tests for repro.arch.traffic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.traffic import (
    HyperexponentialTraffic,
    OnOffTraffic,
    PoissonTraffic,
)
from repro.errors import ModelError


class TestPoisson:
    def test_mean_rate(self):
        assert PoissonTraffic(2.5).mean_rate == 2.5

    def test_validation(self):
        with pytest.raises(ModelError):
            PoissonTraffic(0.0)
        with pytest.raises(ModelError):
            PoissonTraffic(-1.0)

    def test_sample_shape_and_positivity(self):
        rng = np.random.default_rng(0)
        gaps = PoissonTraffic(2.0).sample_interarrivals(rng, 1000)
        assert gaps.shape == (1000,)
        assert (gaps > 0).all()

    def test_sample_mean_matches_rate(self):
        rng = np.random.default_rng(1)
        gaps = PoissonTraffic(4.0).sample_interarrivals(rng, 50_000)
        assert gaps.mean() == pytest.approx(0.25, rel=0.05)

    def test_negative_count_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ModelError):
            PoissonTraffic(1.0).sample_interarrivals(rng, -1)

    def test_scaled(self):
        assert PoissonTraffic(2.0).scaled(1.5).mean_rate == pytest.approx(3.0)
        with pytest.raises(ModelError):
            PoissonTraffic(2.0).scaled(0.0)

    def test_deterministic_given_seed(self):
        g1 = PoissonTraffic(1.0).sample_interarrivals(
            np.random.default_rng(7), 10
        )
        g2 = PoissonTraffic(1.0).sample_interarrivals(
            np.random.default_rng(7), 10
        )
        assert np.array_equal(g1, g2)


class TestOnOff:
    def test_mean_rate(self):
        t = OnOffTraffic(peak_rate=4.0, mean_on=1.0, mean_off=3.0)
        assert t.mean_rate == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            OnOffTraffic(0.0, 1.0, 1.0)
        with pytest.raises(ModelError):
            OnOffTraffic(1.0, 0.0, 1.0)
        with pytest.raises(ModelError):
            OnOffTraffic(1.0, 1.0, -1.0)

    def test_sample_mean_near_rate(self):
        t = OnOffTraffic(peak_rate=5.0, mean_on=2.0, mean_off=2.0)
        rng = np.random.default_rng(3)
        gaps = t.sample_interarrivals(rng, 20_000)
        assert 1.0 / gaps.mean() == pytest.approx(t.mean_rate, rel=0.1)

    def test_burstier_than_poisson(self):
        # Squared coefficient of variation of interarrivals must exceed 1.
        t = OnOffTraffic(peak_rate=10.0, mean_on=0.5, mean_off=4.0)
        rng = np.random.default_rng(4)
        gaps = t.sample_interarrivals(rng, 20_000)
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.2

    def test_scaled(self):
        t = OnOffTraffic(4.0, 1.0, 3.0)
        assert t.scaled(2.0).mean_rate == pytest.approx(2.0)


class TestHyperexponential:
    def test_mean_rate(self):
        t = HyperexponentialTraffic(rate1=1.0, rate2=4.0, phase1_prob=0.5)
        assert t.mean_rate == pytest.approx(1.0 / (0.5 + 0.125))

    def test_validation(self):
        with pytest.raises(ModelError):
            HyperexponentialTraffic(0.0, 1.0, 0.5)
        with pytest.raises(ModelError):
            HyperexponentialTraffic(1.0, 1.0, 0.0)
        with pytest.raises(ModelError):
            HyperexponentialTraffic(1.0, 1.0, 1.0)

    def test_sample_mean(self):
        t = HyperexponentialTraffic(rate1=0.5, rate2=5.0, phase1_prob=0.3)
        rng = np.random.default_rng(5)
        gaps = t.sample_interarrivals(rng, 50_000)
        expected_gap = 0.3 / 0.5 + 0.7 / 5.0
        assert gaps.mean() == pytest.approx(expected_gap, rel=0.05)

    @given(
        r1=st.floats(min_value=0.1, max_value=10.0),
        r2=st.floats(min_value=0.1, max_value=10.0),
        p=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_mean_between_rates(self, r1, r2, p):
        t = HyperexponentialTraffic(r1, r2, p)
        assert min(r1, r2) * (1 - 1e-12) <= t.mean_rate <= max(r1, r2) * (1 + 1e-12)
