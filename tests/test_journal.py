"""Tests for repro.dist.journal — checkpoint/resume of fleet runs.

The contract under test: a driver killed at any instant leaves a valid
journal (atomic block records); resuming completes the matrix without
recomputing journaled blocks and yields the bitwise-identical outcome;
a journal can never be silently overwritten, resumed against a
different configuration, or trusted with damaged entries.
"""

import pytest

from repro.dist import RunJournal, build_matrix, run_matrix
from repro.dist.fleet import FleetOutcome
from repro.errors import ReproError

_MATRIX = dict(
    scenario_names=["single-bus-4"],
    budgets=[8, 12],
    replications=2,
    duration=20.0,
)


def _payloads():
    return build_matrix(**_MATRIX)


class _CountingRunBlock:
    """Counts real block computations through the fleet's run_block."""

    def __init__(self, monkeypatch):
        from repro.dist.jobs import run_block

        self.calls = 0
        inner = run_block

        def counted(payload):
            self.calls += 1
            return inner(payload)

        monkeypatch.setattr("repro.dist.fleet.run_block", counted)


class TestBind:
    def test_fresh_run_writes_manifest(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        journal.bind(_payloads())
        assert (tmp_path / "j" / "manifest.json").exists()
        assert journal.completed() == 0

    def test_existing_journal_without_resume_is_an_error(self, tmp_path):
        RunJournal(tmp_path / "j").bind(_payloads())
        with pytest.raises(ReproError, match="--resume"):
            RunJournal(tmp_path / "j").bind(_payloads())

    def test_resume_without_manifest_is_an_error(self, tmp_path):
        (tmp_path / "j").mkdir()
        with pytest.raises(ReproError, match="no manifest"):
            RunJournal(tmp_path / "j", resume=True).bind(_payloads())

    def test_resume_with_different_config_is_an_error(self, tmp_path):
        RunJournal(tmp_path / "j").bind(_payloads())
        changed = build_matrix(
            **{**_MATRIX, "budgets": [8, 16]}
        )
        with pytest.raises(ReproError, match="different matrix"):
            RunJournal(tmp_path / "j", resume=True).bind(changed)

    def test_record_before_bind_is_an_error(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        with pytest.raises(ReproError, match="bind"):
            journal.record(_payloads()[0], object())


class TestRunAndResume:
    def test_run_records_every_block(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        outcome = run_matrix(journal=journal, **_MATRIX)
        assert isinstance(outcome, FleetOutcome)
        assert journal.records == len(_payloads())
        assert journal.completed() == len(_payloads())

    def test_resume_recomputes_nothing(self, tmp_path, monkeypatch):
        reference = run_matrix(
            journal=RunJournal(tmp_path / "j"), **_MATRIX
        ).to_jsonable()
        counter = _CountingRunBlock(monkeypatch)
        resumed = RunJournal(tmp_path / "j", resume=True)
        outcome = run_matrix(journal=resumed, **_MATRIX)
        assert counter.calls == 0
        assert resumed.hits == len(_payloads())
        assert resumed.records == 0
        assert outcome.to_jsonable() == reference

    def test_killed_mid_run_resumes_without_rework(
        self, tmp_path, monkeypatch
    ):
        reference = run_matrix(**_MATRIX).to_jsonable()
        total = len(_payloads())

        class _Killed(Exception):
            pass

        def _die_after_two(index, block):
            if index >= 1:
                raise _Killed()

        with pytest.raises(_Killed):
            run_matrix(
                journal=RunJournal(tmp_path / "j"),
                on_result=_die_after_two,
                **_MATRIX,
            )
        survived = RunJournal(tmp_path / "j", resume=True)
        # The journal is valid mid-run: some blocks recorded, none torn.
        done_before = survived.completed()
        assert 0 < done_before < total

        counter = _CountingRunBlock(monkeypatch)
        outcome = run_matrix(journal=survived, **_MATRIX)
        assert outcome.to_jsonable() == reference
        # Only the unjournaled blocks were recomputed.
        assert counter.calls == total - done_before
        assert survived.hits == done_before
        assert survived.records == total - done_before
        assert survived.completed() == total

    def test_on_result_streams_all_blocks_in_order_on_resume(
        self, tmp_path
    ):
        run_matrix(journal=RunJournal(tmp_path / "j"), **_MATRIX)
        seen = []
        run_matrix(
            journal=RunJournal(tmp_path / "j", resume=True),
            on_result=lambda index, block: seen.append(index),
            **_MATRIX,
        )
        assert seen == list(range(len(_payloads())))


class TestDamage:
    def test_corrupt_block_is_quarantined_and_recomputed(
        self, tmp_path, monkeypatch
    ):
        reference = run_matrix(
            journal=RunJournal(tmp_path / "j"), **_MATRIX
        ).to_jsonable()
        blocks = sorted((tmp_path / "j" / "blocks").glob("*.blk"))
        damaged = blocks[0]
        data = bytearray(damaged.read_bytes())
        data[len(data) // 2] ^= 0xFF
        damaged.write_bytes(bytes(data))

        counter = _CountingRunBlock(monkeypatch)
        resumed = RunJournal(tmp_path / "j", resume=True)
        outcome = run_matrix(journal=resumed, **_MATRIX)
        assert outcome.to_jsonable() == reference
        assert resumed.quarantined == 1
        assert counter.calls == 1  # only the damaged block
        quarantined = list((tmp_path / "j" / "blocks").glob("*.quarantined"))
        assert len(quarantined) == 1
        # The recomputed block was re-recorded: the journal healed.
        assert resumed.completed() == len(_payloads())

    def test_truncated_block_reads_as_miss(self, tmp_path):
        journal = RunJournal(tmp_path / "j")
        run_matrix(journal=journal, **_MATRIX)
        blocks = sorted((tmp_path / "j" / "blocks").glob("*.blk"))
        blocks[0].write_bytes(blocks[0].read_bytes()[:7])
        resumed = RunJournal(tmp_path / "j", resume=True)
        resumed.bind(_payloads())
        # Whichever payload maps to the damaged file, exactly one of
        # the lookups misses; the rest still hit.
        misses = sum(
            1
            for payload in _payloads()
            if not resumed.lookup(payload)[0]
        )
        assert misses >= 1
        assert resumed.quarantined >= 1
