"""Tests for repro.core.transient."""

import pytest

from repro.core.bus_model import BusClient, build_joint_bus_ctmdp
from repro.core.transient import (
    longest_queue_policy,
    time_to_steady_state,
    transient_loss_profile,
)
from repro.errors import ModelError


def clients_pair(lam=1.5, mu=2.0, k=2):
    return [
        BusClient("a", lam, mu, k),
        BusClient("b", lam * 0.8, mu, k),
    ]


class TestLongestQueuePolicy:
    def test_serves_longer_queue(self):
        clients = clients_pair()
        model = build_joint_bus_ctmdp(clients)
        policy = longest_queue_policy(model, clients)
        assert policy.action_probabilities((2, 1)) == {"a": 1.0}
        assert policy.action_probabilities((1, 2)) == {"b": 1.0}

    def test_tie_breaks_to_first(self):
        clients = clients_pair()
        model = build_joint_bus_ctmdp(clients)
        policy = longest_queue_policy(model, clients)
        assert policy.action_probabilities((1, 1)) == {"a": 1.0}


class TestTransientProfile:
    def test_starts_lossless_from_empty(self):
        profile = transient_loss_profile(clients_pair(), [0.0, 0.1, 5.0])
        assert profile[0].loss_rate == pytest.approx(0.0)
        # Loss rate builds up from an empty start.
        assert profile[-1].loss_rate > profile[0].loss_rate

    def test_converges_to_stationary(self):
        clients = clients_pair()
        profile = transient_loss_profile(clients, [200.0])
        model = build_joint_bus_ctmdp(clients)
        policy = longest_queue_policy(model, clients)
        steady = policy.average_cost_rate()
        assert profile[0].loss_rate == pytest.approx(steady, rel=0.01)

    def test_full_start_transiently_lossier(self):
        clients = clients_pair()
        full = tuple(c.capacity for c in clients)
        from_full = transient_loss_profile(
            clients, [0.05], initial_state=full
        )
        from_empty = transient_loss_profile(clients, [0.05])
        assert from_full[0].loss_rate > from_empty[0].loss_rate

    def test_validation(self):
        with pytest.raises(ModelError):
            transient_loss_profile(clients_pair(), [])
        with pytest.raises(ModelError):
            transient_loss_profile(clients_pair(), [-1.0])
        with pytest.raises(ModelError):
            transient_loss_profile(clients_pair(), [2.0, 1.0])
        with pytest.raises(ModelError):
            transient_loss_profile(
                clients_pair(), [1.0], initial_state=(99, 99)
            )


class TestTimeToSteadyState:
    def test_settles_within_horizon(self):
        t = time_to_steady_state(clients_pair(), horizon=300.0)
        assert 0.0 < t <= 300.0

    def test_tolerance_monotone(self):
        loose = time_to_steady_state(
            clients_pair(), tolerance=0.2, horizon=200.0
        )
        tight = time_to_steady_state(
            clients_pair(), tolerance=0.01, horizon=200.0
        )
        assert loose <= tight + 1e-9

    def test_validation(self):
        with pytest.raises(ModelError):
            time_to_steady_state(clients_pair(), tolerance=0.0)
        with pytest.raises(ModelError):
            time_to_steady_state(clients_pair(), horizon=0.0)
