"""Equivalence suite for the batched simulation lane (repro.sim.batched).

The batched backend must be a pure speedup: for deterministic arbiters
(fixed priority, round robin, longest queue) fixed-seed metrics are
bitwise identical to the heap engine across timeout/warmup configs and
topologies; for randomised arbitration it must agree within batch-means
confidence tolerance.  The lane's building blocks — the same-timestamp
drain core, the occupancy-count grant surface, the block RNG draws, the
packet ring — are each pinned to their object-engine references here.
"""

import numpy as np
import pytest

from repro.arch.netproc import network_processor
from repro.arch.templates import amba_like, paper_figure1
from repro.errors import SimulationError
from repro.policies.uniform import UniformSizing
from repro.sim.arbiter import (
    FixedPriorityArbiter,
    LongestQueueArbiter,
    RoundRobinArbiter,
    WeightedRandomArbiter,
)
from repro.sim.batched import BatchedSystem
from repro.sim.buffer import FiniteBuffer, PacketRing
from repro.sim.engine import BatchedSimulator
from repro.sim.fastpath import ExponentialPool
from repro.sim.packet import Hop, Packet
from repro.sim.runner import SIM_BACKENDS, replicate, simulate
from repro.sim.system import CommunicationSystem
from repro.sim.workloads import (
    RequestTrace,
    TraceTraffic,
    record_trace,
    replay_topology,
)

DETERMINISTIC_ARBITERS = ("fixed_priority", "round_robin", "longest_queue")


@pytest.fixture(scope="module")
def netproc():
    return network_processor()


@pytest.fixture(scope="module")
def netproc_caps(netproc):
    return UniformSizing().allocate(netproc, 160).as_capacities()


@pytest.fixture(scope="module")
def fig1():
    return paper_figure1()


@pytest.fixture(scope="module")
def fig1_caps(fig1):
    return UniformSizing().allocate(fig1, 40).as_capacities()


class TestBatchedSimulatorCore:
    def test_pop_batch_groups_equal_timestamps(self):
        sim = BatchedSimulator()
        sim.push(2.0, 10)
        sim.push(1.0, 11)
        sim.push(1.0, 12)
        when, codes = sim.pop_batch(5.0)
        assert when == 1.0
        assert codes == [11, 12]  # schedule order within the batch
        assert sim.now == 1.0
        when, codes = sim.pop_batch(5.0)
        assert (when, codes) == (2.0, [10])

    def test_pop_batch_respects_horizon(self):
        sim = BatchedSimulator()
        sim.push(3.0, 1)
        assert sim.pop_batch(2.0) is None
        assert sim.pending_events == 1
        sim.advance_to(2.0)
        assert sim.now == 2.0

    def test_push_in_past_rejected(self):
        sim = BatchedSimulator()
        sim.push(1.0, 0)
        sim.pop_batch(2.0)
        with pytest.raises(SimulationError):
            sim.push(0.5, 0)

    def test_advance_past_pending_rejected(self):
        sim = BatchedSimulator()
        sim.push(1.0, 0)
        with pytest.raises(SimulationError):
            sim.advance_to(2.0)

    def test_sequence_numbers_break_ties_like_the_heap_engine(self):
        sim = BatchedSimulator()
        first = sim.push(1.0, 7)
        second = sim.push(1.0, 8)
        assert second == first + 1
        _when, codes = sim.pop_batch(1.0)
        assert codes == [7, 8]


class TestExponentialPoolTake:
    def test_take_is_stream_identical_to_next(self):
        a = ExponentialPool(np.random.default_rng(5), chunk=32)
        b = ExponentialPool(np.random.default_rng(5), chunk=32)
        taken = a.take(100)
        scalars = np.array([b.next() for _ in range(100)])
        assert (taken == scalars).all()
        # And the pools stay aligned afterwards.
        assert a.next() == b.next()

    def test_take_interleaves_with_next(self):
        a = ExponentialPool(np.random.default_rng(9), chunk=16)
        b = ExponentialPool(np.random.default_rng(9), chunk=16)
        seq_a = [a.next(), *a.take(20).tolist(), a.next()]
        seq_b = [b.next() for _ in range(22)]
        assert seq_a == seq_b

    def test_take_negative_rejected(self):
        pool = ExponentialPool(np.random.default_rng(0))
        with pytest.raises(ValueError):
            pool.take(-1)

    def test_take_zero(self):
        pool = ExponentialPool(np.random.default_rng(0))
        assert pool.take(0).size == 0


def _buffers_with_occupancy(counts):
    buffers = []
    for i, c in enumerate(counts):
        buf = FiniteBuffer(f"c{i}", capacity=max(c, 1))
        for k in range(c):
            packet = Packet(
                packet_id=k,
                flow="f",
                source="p",
                destination="q",
                hops=(Hop(0, f"c{i}", 1.0),),
                created_at=0.0,
            )
            buf.offer(packet, 0.0)
        buffers.append(buf)
    return buffers


class TestGrantCountsEquivalence:
    """grant_counts must mirror grant on every occupancy pattern."""

    @pytest.mark.parametrize(
        "make",
        [FixedPriorityArbiter, LongestQueueArbiter, RoundRobinArbiter],
    )
    def test_deterministic_arbiters(self, make):
        rng = np.random.default_rng(0)
        obj_arb = make()
        cnt_arb = make()
        for _trial in range(200):
            counts = [int(c) for c in rng.integers(0, 4, size=5)]
            buffers = _buffers_with_occupancy(counts)
            names = [b.name for b in buffers]
            got_obj = obj_arb.grant(buffers, 0.0, rng)
            got_cnt = cnt_arb.grant_counts(counts, names, 0.0, rng)
            assert got_obj == got_cnt

    def test_weighted_random_same_rng_stream(self):
        weights = {"c0": 0.0, "c1": 2.0, "c3": 5.0}
        obj_arb = WeightedRandomArbiter(weights)
        cnt_arb = WeightedRandomArbiter(weights)
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        pattern_rng = np.random.default_rng(4)
        for _trial in range(200):
            counts = [int(c) for c in pattern_rng.integers(0, 3, size=4)]
            buffers = _buffers_with_occupancy(counts)
            names = [b.name for b in buffers]
            assert obj_arb.grant(buffers, 0.0, rng_a) == cnt_arb.grant_counts(
                counts, names, 0.0, rng_b
            )
        # Identical generator consumption, not just identical picks.
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_weighted_random_all_zero_weights_uniform_fallback(self):
        arb = WeightedRandomArbiter({"c0": 0.0, "c1": 0.0})
        got = arb.grant_counts(
            [1, 2], ["c0", "c1"], 0.0, np.random.default_rng(0)
        )
        assert got in (0, 1)


class TestPacketRing:
    def test_negative_capacity_rejected(self):
        with pytest.raises(SimulationError):
            PacketRing("x", -1)

    def test_zero_capacity_ring_is_empty_and_full(self):
        ring = PacketRing("x", 0)
        assert ring.capacity == 0
        assert ring.occupancy == 0
        assert ring.snapshot() == []

    def test_snapshot_wraps_fifo_order(self):
        ring = PacketRing("x", 3)
        # Fill slots as the lane would, wrapping past the end.
        ring.flow[:] = [7, 8, 9]
        ring.hop[:] = [0, 1, 0]
        ring.created[:] = [1.0, 2.0, 3.0]
        ring.enqueued[:] = [1.5, 2.5, 3.5]
        ring.head = 2
        ring.count = 2
        assert ring.snapshot() == [(9, 0, 3.0, 3.5), (7, 0, 1.0, 1.5)]


class TestBackendValidation:
    def test_unknown_backend_rejected(self, fig1, fig1_caps):
        with pytest.raises(SimulationError, match="backend"):
            simulate(fig1, fig1_caps, duration=10.0, backend="quantum")

    def test_backends_registry(self):
        assert SIM_BACKENDS == ("heap", "batched", "megabatch")

    def test_lane_rejects_started_system(self, fig1, fig1_caps):
        system = CommunicationSystem(fig1, fig1_caps)
        for source in system.sources:
            source.start()
        system.simulator.run_until(1.0)
        with pytest.raises(SimulationError, match="unstarted"):
            BatchedSystem(system)

    def test_lane_requires_start_before_run(self, fig1, fig1_caps):
        lane = BatchedSystem(CommunicationSystem(fig1, fig1_caps))
        with pytest.raises(SimulationError, match="start"):
            lane.run_until(1.0)
        lane.start()
        with pytest.raises(SimulationError):
            lane.start()


class TestHeapBatchedEquivalence:
    """The tentpole contract: fixed-seed metrics bitwise identical."""

    @pytest.mark.parametrize("arbiter", DETERMINISTIC_ARBITERS)
    @pytest.mark.parametrize("timeout", [None, 0.8])
    @pytest.mark.parametrize("warmup", [0.0, 60.0])
    def test_netproc_matrix(
        self, netproc, netproc_caps, arbiter, timeout, warmup
    ):
        kwargs = dict(
            duration=150.0,
            seed=3,
            arbiter_kind=arbiter,
            timeout_threshold=timeout,
            warmup=warmup,
        )
        heap = simulate(netproc, netproc_caps, **kwargs)
        batched = simulate(
            netproc, netproc_caps, backend="batched", **kwargs
        )
        assert heap == batched

    @pytest.mark.parametrize("arbiter", DETERMINISTIC_ARBITERS)
    def test_bridged_figure1(self, fig1, fig1_caps, arbiter):
        kwargs = dict(duration=400.0, seed=11, arbiter_kind=arbiter)
        assert simulate(fig1, fig1_caps, **kwargs) == simulate(
            fig1, fig1_caps, backend="batched", **kwargs
        )

    def test_amba_with_timeout_and_warmup(self):
        topology = amba_like()
        caps = UniformSizing().allocate(topology, 24).as_capacities()
        kwargs = dict(
            duration=300.0,
            seed=5,
            arbiter_kind="fixed_priority",
            timeout_threshold=1.2,
            warmup=40.0,
        )
        assert simulate(topology, caps, **kwargs) == simulate(
            topology, caps, backend="batched", **kwargs
        )

    def test_zero_capacity_bridge_buffers(self, netproc):
        # Processor-only allocation: every bridge entry defaults to 0
        # slots, so all crossing traffic is lost — the documented
        # "forgot the bridge buffers" regime must match too.
        caps = {p: 8 for p in netproc.processors}
        kwargs = dict(duration=120.0, seed=2)
        assert simulate(netproc, caps, **kwargs) == simulate(
            netproc, caps, backend="batched", **kwargs
        )

    def test_different_seeds_differ(self, netproc, netproc_caps):
        a = simulate(
            netproc, netproc_caps, duration=120.0, seed=1, backend="batched"
        )
        b = simulate(
            netproc, netproc_caps, duration=120.0, seed=2, backend="batched"
        )
        assert a != b

    def test_warmup_windows_carry_buffers_over(self, netproc, netproc_caps):
        """Splitting at the warmup boundary must not reset any pool.

        A warmed run and an unwarmed run over the same total horizon
        consume the bit stream identically, so the warmed run's offered
        counts plus its discarded baseline must reproduce the full-run
        counts — on both backends, and identically across them.
        """
        for backend in SIM_BACKENDS:
            full = simulate(
                netproc,
                netproc_caps,
                duration=200.0,
                seed=6,
                backend=backend,
            )
            warmed = simulate(
                netproc,
                netproc_caps,
                duration=150.0,
                warmup=50.0,
                seed=6,
                backend=backend,
            )
            assert sum(warmed.offered.values()) <= sum(full.offered.values())
        heap = simulate(
            netproc, netproc_caps, duration=150.0, warmup=50.0, seed=6
        )
        batched = simulate(
            netproc,
            netproc_caps,
            duration=150.0,
            warmup=50.0,
            seed=6,
            backend="batched",
        )
        assert heap == batched


class TestRandomisedArbiterEquivalence:
    """Contract: batch-means CI tolerance; currently bitwise in fact."""

    def test_weighted_random_within_ci(self, netproc, netproc_caps):
        weights = {f"p{i}": float(i) for i in range(1, 18)}
        kwargs = dict(
            replications=5,
            duration=120.0,
            base_seed=0,
            arbiter_kind="weighted_random",
            arbiter_weights=weights,
        )
        heap = replicate(netproc, netproc_caps, **kwargs)
        batched = replicate(
            netproc, netproc_caps, backend="batched", **kwargs
        )
        spread = max(heap.std_total_loss(), 1.0)
        assert abs(
            heap.mean_total_loss() - batched.mean_total_loss()
        ) <= 3.0 * spread

    def test_weighted_random_bitwise_today(self, fig1, fig1_caps):
        # Stronger than the contract: grant_counts mirrors the exact
        # generator calls of grant, so even randomised arbitration is
        # currently bitwise across backends.  If a future lane change
        # legitimately breaks this, demote the test to the CI-tolerance
        # contract above.
        weights = {"p1": 2.0, "p3": 0.5}
        kwargs = dict(
            duration=250.0,
            seed=13,
            arbiter_kind="weighted_random",
            arbiter_weights=weights,
        )
        assert simulate(fig1, fig1_caps, **kwargs) == simulate(
            fig1, fig1_caps, backend="batched", **kwargs
        )


class TestPooledBatchedReplication:
    def test_jobs_bitwise_identical_to_serial(self, fig1, fig1_caps):
        kwargs = dict(
            replications=4, duration=120.0, base_seed=7, backend="batched"
        )
        serial = replicate(fig1, fig1_caps, jobs=1, **kwargs)
        pooled = replicate(fig1, fig1_caps, jobs=2, **kwargs)
        assert len(serial.results) == len(pooled.results)
        for a, b in zip(serial.results, pooled.results):
            assert a == b

    def test_batched_replication_matches_heap(self, fig1, fig1_caps):
        kwargs = dict(replications=3, duration=100.0, base_seed=1)
        heap = replicate(fig1, fig1_caps, **kwargs)
        batched = replicate(fig1, fig1_caps, backend="batched", **kwargs)
        for a, b in zip(heap.results, batched.results):
            assert a == b


class TestTraceWorkloads:
    def test_vectorised_sampler_matches_loop_reference(self):
        gaps = [0.5, 1.25, 0.0, 2.0, 0.75]
        traffic = TraceTraffic(gaps)
        reference_cursor = 0
        rng = np.random.default_rng(0)
        for count in (3, 7, 1, 0, 11, 5):
            got = traffic.sample_interarrivals(rng, count)
            expected = []
            for _ in range(count):
                expected.append(gaps[reference_cursor])
                reference_cursor = (reference_cursor + 1) % len(gaps)
            assert got.tolist() == expected

    def test_trace_replay_equivalent_across_backends(self, fig1):
        # TraceTraffic replay cursors are stateful across runs (a
        # pre-existing property of the descriptor, backend-independent),
        # so each backend gets its own freshly replayed topology.
        trace = record_trace(fig1, duration=200.0, seed=4)
        caps = UniformSizing().allocate(
            replay_topology(fig1, trace), 40
        ).as_capacities()
        kwargs = dict(duration=200.0, seed=0)
        heap = simulate(replay_topology(fig1, trace), caps, **kwargs)
        batched = simulate(
            replay_topology(fig1, trace), caps, backend="batched", **kwargs
        )
        assert heap == batched

    def test_simultaneous_trace_arrivals_tie_break_identically(self, fig1):
        # Two flows replaying the *same* timestamps produce genuine
        # same-timestamp event batches; the lane must resolve them in
        # heap order (event ids), not merely by chance.
        flows = sorted(fig1.flows)[:2]
        times = [0.4 * (k + 1) for k in range(12)]
        events = sorted(
            ((t, f) for t in times for f in flows),
            key=lambda e: (e[0], e[1]),
        )
        trace = RequestTrace(tuple(events))
        caps = UniformSizing().allocate(
            replay_topology(fig1, trace), 12
        ).as_capacities()
        kwargs = dict(duration=30.0, seed=0, arbiter_kind="fixed_priority")
        heap = simulate(replay_topology(fig1, trace), caps, **kwargs)
        batched = simulate(
            replay_topology(fig1, trace), caps, backend="batched", **kwargs
        )
        assert heap == batched


class TestLaneInternals:
    def test_ring_state_synced_after_window(self, fig1, fig1_caps):
        system = CommunicationSystem(fig1, fig1_caps, seed=3)
        lane = BatchedSystem(system)
        lane.start()
        lane.run_until(50.0)
        for ring, tracked in zip(lane.rings, lane._count):
            assert ring.count == tracked
            assert 0 <= ring.count <= max(ring.capacity, 0)
            assert len(ring.snapshot()) == ring.count

    def test_monitor_balance(self, netproc, netproc_caps):
        result = simulate(
            netproc, netproc_caps, duration=150.0, seed=0, backend="batched"
        )
        # Conservation: everything offered is delivered, lost, or still
        # in flight (bounded by total buffer space + in-service slots).
        in_flight = result.total_offered - result.total_lost - sum(
            result.delivered.values()
        )
        assert 0 <= in_flight <= sum(netproc_caps.values()) + 20
