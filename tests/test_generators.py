"""Tests for repro.arch.generators."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.generators import GeneratorConfig, random_topology
from repro.arch.validate import cluster_loads
from repro.core.splitting import split
from repro.errors import TopologyError


class TestConfig:
    def test_defaults_valid(self):
        GeneratorConfig()

    def test_validation(self):
        with pytest.raises(TopologyError):
            GeneratorConfig(num_clusters=0)
        with pytest.raises(TopologyError):
            GeneratorConfig(processors_per_cluster=0)
        with pytest.raises(TopologyError):
            GeneratorConfig(extra_bridges=-1)
        with pytest.raises(TopologyError):
            GeneratorConfig(local_flow_prob=1.5)
        with pytest.raises(TopologyError):
            GeneratorConfig(target_utilisation=0.0)


class TestRandomTopology:
    def test_deterministic(self):
        t1 = random_topology(7)
        t2 = random_topology(7)
        assert sorted(t1.flows) == sorted(t2.flows)
        assert t1.total_offered_rate() == pytest.approx(
            t2.total_offered_rate()
        )

    def test_structure(self):
        config = GeneratorConfig(num_clusters=3, processors_per_cluster=2)
        topo = random_topology(11, config)
        assert len(topo.buses) == 3
        assert len(topo.processors) == 6
        assert len(topo.bridges) >= 2  # spanning tree

    def test_single_cluster(self):
        config = GeneratorConfig(num_clusters=1, extra_bridges=0)
        topo = random_topology(3, config)
        assert len(topo.bridges) == 0
        assert len(topo.bus_clusters()) == 1

    def test_utilisation_near_target(self):
        config = GeneratorConfig(target_utilisation=0.6)
        topo = random_topology(5, config)
        worst = max(l.utilisation for l in cluster_loads(topo))
        # Bridge ingress makes the conservative bound exceed the local
        # target; allow head-room but require the right ballpark.
        assert 0.3 <= worst <= 1.3

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_always_valid_and_splittable(self, seed):
        topo = random_topology(seed)
        topo.validate()  # routing must succeed for every flow
        system = split(topo, capacity_cap=3)
        names = system.all_client_names()
        assert len(names) == len(set(names))

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_property_every_processor_participates(self, seed):
        topo = random_topology(seed)
        involved = set()
        for flow in topo.flows.values():
            involved.add(flow.source)
            involved.add(flow.destination)
        assert involved == set(topo.processors)
