"""Tests for repro.queueing.network."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.queueing.mm1k import MM1KQueue
from repro.queueing.network import (
    LossNetwork,
    TandemLossChain,
    carried_rate,
    reduced_load_fixed_point,
)


class TestCarriedRate:
    def test_basic(self):
        assert carried_rate(2.0, 0.25) == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ModelError):
            carried_rate(-1.0, 0.5)
        with pytest.raises(ModelError):
            carried_rate(1.0, 1.5)

    @given(
        offered=st.floats(min_value=0.0, max_value=100.0),
        blocking=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_bounded(self, offered, blocking):
        c = carried_rate(offered, blocking)
        assert 0.0 <= c <= offered


class TestTandemLossChain:
    def test_single_stage_matches_mm1k(self):
        chain = TandemLossChain(2.0, [1.5], [4])
        queue = MM1KQueue(2.0, 1.5, 4)
        assert chain.total_loss_rate() == pytest.approx(queue.loss_rate())

    def test_thinning_reduces_downstream_offered(self):
        chain = TandemLossChain(3.0, [1.0, 1.0], [2, 2])
        metrics = chain.stage_metrics()
        assert metrics[1]["offered"] < metrics[0]["offered"]
        assert metrics[1]["offered"] == pytest.approx(metrics[0]["carried"])

    def test_conservation(self):
        chain = TandemLossChain(2.5, [1.0, 2.0, 1.5], [3, 4, 2])
        metrics = chain.stage_metrics()
        total_stage_loss = sum(m["loss_rate"] for m in metrics)
        assert chain.total_loss_rate() == pytest.approx(total_stage_loss)
        assert chain.end_to_end_carried() + chain.total_loss_rate() == (
            pytest.approx(2.5)
        )

    def test_validation(self):
        with pytest.raises(ModelError):
            TandemLossChain(1.0, [1.0], [2, 3])
        with pytest.raises(ModelError):
            TandemLossChain(1.0, [], [])
        with pytest.raises(ModelError):
            TandemLossChain(0.0, [1.0], [2])

    def test_big_buffers_nearly_lossless(self):
        chain = TandemLossChain(0.5, [2.0, 2.0], [50, 50])
        assert chain.total_loss_rate() == pytest.approx(0.0, abs=1e-6)


class TestLossNetwork:
    def make_simple(self):
        return LossNetwork(
            link_capacities={"b": 4, "f": 4},
            link_service_rates={"b": 2.0, "f": 2.0},
            routes={"p2_to_p5": ["b", "f"], "p3_local": ["b"]},
            offered_rates={"p2_to_p5": 1.0, "p3_local": 0.8},
        )

    def test_solve_converges(self):
        net = self.make_simple()
        blockings = net.solve()
        assert set(blockings) == {"b", "f"}
        assert all(0.0 <= v < 1.0 for v in blockings.values())

    def test_link_b_sees_both_flows(self):
        net = self.make_simple()
        offered = net.link_offered_load({"b": 0.0, "f": 0.0})
        assert offered["b"] == pytest.approx(1.8)
        assert offered["f"] == pytest.approx(1.0)

    def test_downstream_link_sees_thinned_flow(self):
        net = self.make_simple()
        offered = net.link_offered_load({"b": 0.5, "f": 0.0})
        assert offered["f"] == pytest.approx(0.5)

    def test_flow_loss_rates_nonnegative_and_bounded(self):
        net = self.make_simple()
        losses = net.flow_loss_rates()
        assert losses["p2_to_p5"] >= 0
        assert losses["p2_to_p5"] <= 1.0
        assert losses["p3_local"] <= 0.8

    def test_single_link_matches_mm1k(self):
        net = LossNetwork(
            link_capacities={"a": 5},
            link_service_rates={"a": 1.0},
            routes={"f": ["a"]},
            offered_rates={"f": 2.0},
        )
        blockings = net.solve()
        expected = MM1KQueue(2.0, 1.0, 5).blocking_probability()
        assert blockings["a"] == pytest.approx(expected, abs=1e-8)

    def test_validation_unknown_link(self):
        with pytest.raises(ModelError, match="unknown link"):
            LossNetwork(
                link_capacities={"a": 2},
                link_service_rates={"a": 1.0},
                routes={"f": ["a", "zzz"]},
                offered_rates={"f": 1.0},
            )

    def test_validation_empty_route(self):
        with pytest.raises(ModelError, match="empty route"):
            LossNetwork(
                link_capacities={"a": 2},
                link_service_rates={"a": 1.0},
                routes={"f": []},
                offered_rates={"f": 1.0},
            )

    def test_validation_unknown_flow_rate(self):
        with pytest.raises(ModelError, match="unknown flow"):
            LossNetwork(
                link_capacities={"a": 2},
                link_service_rates={"a": 1.0},
                routes={"f": ["a"]},
                offered_rates={"g": 1.0},
            )

    def test_validation_bad_capacity(self):
        with pytest.raises(ModelError, match="capacity"):
            LossNetwork(
                link_capacities={"a": 0},
                link_service_rates={"a": 1.0},
                routes={"f": ["a"]},
                offered_rates={"f": 1.0},
            )


class TestReducedLoadFixedPoint:
    def test_identity_converges_immediately(self):
        rates, iters = reduced_load_fixed_point(
            [1.0, 2.0], update=lambda r: r
        )
        assert np.allclose(rates, [1.0, 2.0])
        assert iters == 1

    def test_linear_contraction(self):
        # x -> 0.5 x + 1 has fixed point 2.
        rates, _ = reduced_load_fixed_point(
            [0.0], update=lambda r: 0.5 * r + 1.0
        )
        assert rates[0] == pytest.approx(2.0, abs=1e-6)

    def test_divergent_update_raises(self):
        with pytest.raises(ModelError, match="did not converge"):
            reduced_load_fixed_point(
                [1.0], update=lambda r: r + 1.0, max_iter=50
            )

    def test_shape_change_rejected(self):
        with pytest.raises(ModelError, match="shape"):
            reduced_load_fixed_point(
                [1.0], update=lambda r: np.array([1.0, 2.0])
            )

    def test_damping_validation(self):
        with pytest.raises(ModelError, match="damping"):
            reduced_load_fixed_point([1.0], update=lambda r: r, damping=0.0)
