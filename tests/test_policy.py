"""Tests for repro.core.policy."""

import numpy as np
import pytest

from repro.core.ctmdp import CTMDP
from repro.core.policy import StationaryPolicy, policy_from_occupation_measure
from repro.errors import PolicyError


def make_mdp():
    m = CTMDP()
    m.add_action("lo", "slow", [("hi", 1.0)], cost_rate=0.0)
    m.add_action("lo", "fast", [("hi", 5.0)], cost_rate=2.0)
    m.add_action("hi", "drain", [("lo", 3.0)], cost_rate=1.0,
                 constraint_rates={"load": 1.0})
    return m


class TestConstruction:
    def test_deterministic(self):
        m = make_mdp()
        pol = StationaryPolicy.deterministic(
            m, {"lo": "slow", "hi": "drain"}
        )
        assert pol.is_deterministic()
        assert pol.randomised_states() == []

    def test_uniform(self):
        m = make_mdp()
        pol = StationaryPolicy.uniform(m)
        assert pol.action_probabilities("lo") == {
            "slow": 0.5, "fast": 0.5
        }
        assert pol.randomised_states() == ["lo"]

    def test_missing_state_rejected(self):
        m = make_mdp()
        with pytest.raises(PolicyError, match="missing state"):
            StationaryPolicy(m, {"lo": {"slow": 1.0}})

    def test_unavailable_action_rejected(self):
        m = make_mdp()
        with pytest.raises(PolicyError, match="unavailable action"):
            StationaryPolicy(
                m, {"lo": {"drain": 1.0}, "hi": {"drain": 1.0}}
            )

    def test_bad_sum_rejected(self):
        m = make_mdp()
        with pytest.raises(PolicyError, match="sum to"):
            StationaryPolicy(
                m, {"lo": {"slow": 0.5}, "hi": {"drain": 1.0}}
            )

    def test_negative_prob_rejected(self):
        m = make_mdp()
        with pytest.raises(PolicyError, match="negative"):
            StationaryPolicy(
                m,
                {"lo": {"slow": 1.5, "fast": -0.5}, "hi": {"drain": 1.0}},
            )

    def test_unknown_state_query(self):
        m = make_mdp()
        pol = StationaryPolicy.uniform(m)
        with pytest.raises(PolicyError):
            pol.action_probabilities("zzz")


class TestEvaluation:
    def test_induced_generator_slow(self):
        m = make_mdp()
        pol = StationaryPolicy.deterministic(m, {"lo": "slow", "hi": "drain"})
        q = pol.induced_generator()
        assert q[0, 1] == pytest.approx(1.0)
        assert q[1, 0] == pytest.approx(3.0)
        assert np.allclose(q.sum(axis=1), 0.0)

    def test_induced_generator_mixture(self):
        m = make_mdp()
        pol = StationaryPolicy(
            m,
            {"lo": {"slow": 0.5, "fast": 0.5}, "hi": {"drain": 1.0}},
        )
        q = pol.induced_generator()
        assert q[0, 1] == pytest.approx(3.0)  # 0.5*1 + 0.5*5

    def test_average_cost_closed_form(self):
        # slow policy: pi_lo = 3/4, pi_hi = 1/4 -> cost = 0.25 * 1.
        m = make_mdp()
        pol = StationaryPolicy.deterministic(m, {"lo": "slow", "hi": "drain"})
        assert pol.average_cost_rate() == pytest.approx(0.25)

    def test_average_constraint_rate(self):
        m = make_mdp()
        pol = StationaryPolicy.deterministic(m, {"lo": "slow", "hi": "drain"})
        assert pol.average_constraint_rate("load") == pytest.approx(0.25)

    def test_occupation_measure_sums_to_one(self):
        m = make_mdp()
        pol = StationaryPolicy.uniform(m)
        x = pol.stationary_state_action()
        assert sum(x.values()) == pytest.approx(1.0)

    def test_state_marginals_match_chain(self):
        m = make_mdp()
        pol = StationaryPolicy.deterministic(m, {"lo": "fast", "hi": "drain"})
        marg = pol.state_marginals()
        # fast: rates 5 up, 3 down -> pi_lo = 3/8.
        assert marg["lo"] == pytest.approx(3.0 / 8.0)


class TestFromOccupation:
    def test_roundtrip(self):
        m = make_mdp()
        pol = StationaryPolicy(
            m,
            {"lo": {"slow": 0.3, "fast": 0.7}, "hi": {"drain": 1.0}},
        )
        x = pol.stationary_state_action()
        pol2 = policy_from_occupation_measure(m, x)
        probs = pol2.action_probabilities("lo")
        assert probs["slow"] == pytest.approx(0.3)
        assert probs["fast"] == pytest.approx(0.7)

    def test_zero_mass_state_fallback_first(self):
        m = make_mdp()
        x = {("hi", "drain"): 1.0}  # no mass on 'lo'
        pol = policy_from_occupation_measure(m, x, fallback="first")
        assert pol.action_probabilities("lo") == {"slow": 1.0}

    def test_zero_mass_state_fallback_uniform(self):
        m = make_mdp()
        x = {("hi", "drain"): 1.0}
        pol = policy_from_occupation_measure(m, x, fallback="uniform")
        assert pol.action_probabilities("lo")["slow"] == pytest.approx(0.5)

    def test_unknown_fallback(self):
        m = make_mdp()
        with pytest.raises(PolicyError, match="fallback"):
            policy_from_occupation_measure(m, {}, fallback="zzz")
