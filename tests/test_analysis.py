"""Tests for repro.analysis."""

import numpy as np
import pytest

from repro.analysis.loss import compare_policies
from repro.analysis.report import bar_chart, format_table
from repro.analysis.stats import (
    confidence_interval,
    relative_improvement,
    summarise,
)
from repro.analysis.sweep import budget_sweep, load_sweep
from repro.arch.templates import single_bus
from repro.core.sizing import BufferAllocation
from repro.errors import ReproError
from repro.policies.proportional import ProportionalSizing
from repro.policies.uniform import UniformSizing


class TestStats:
    def test_summarise(self):
        s = summarise([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.count == 3
        assert s.std == pytest.approx(1.0)

    def test_summarise_single(self):
        s = summarise([5.0])
        assert s.std == 0.0

    def test_summarise_empty(self):
        with pytest.raises(ReproError):
            summarise([])

    def test_confidence_interval_contains_mean(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 2.0, size=30)
        lo, hi = confidence_interval(data)
        assert lo < data.mean() < hi

    def test_confidence_interval_single_point(self):
        assert confidence_interval([4.0]) == (4.0, 4.0)

    def test_confidence_interval_validation(self):
        with pytest.raises(ReproError):
            confidence_interval([1.0], confidence=1.5)
        with pytest.raises(ReproError):
            confidence_interval([])

    def test_relative_improvement(self):
        assert relative_improvement(10.0, 8.0) == pytest.approx(0.2)
        assert relative_improvement(10.0, 12.0) == pytest.approx(-0.2)

    def test_relative_improvement_validation(self):
        with pytest.raises(ReproError):
            relative_improvement(0.0, 1.0)


class TestReport:
    def test_format_table_basic(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3.0]])
        lines = text.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "2.50" in text

    def test_format_table_title(self):
        text = format_table(["a"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_format_table_validation(self):
        with pytest.raises(ReproError):
            format_table([], [])
        with pytest.raises(ReproError):
            format_table(["a"], [[1, 2]])

    def test_bar_chart_scales(self):
        text = bar_chart(
            {"pre": {"p1": 10.0}, "post": {"p1": 5.0}},
            categories=["p1"],
            width=20,
        )
        pre_line = next(l for l in text.splitlines() if "pre" in l)
        post_line = next(l for l in text.splitlines() if "post" in l)
        assert pre_line.count("#") == 20
        assert post_line.count("#") == 10

    def test_bar_chart_zero_values(self):
        text = bar_chart({"s": {"c": 0.0}}, categories=["c"])
        assert "0.0" in text

    def test_bar_chart_validation(self):
        with pytest.raises(ReproError):
            bar_chart({}, categories=["c"])
        with pytest.raises(ReproError):
            bar_chart({"s": {}}, categories=[], width=0)


class TestCompare:
    def make_allocations(self, topo):
        return {
            "uniform": UniformSizing().allocate(topo, 8),
            "proportional": ProportionalSizing().allocate(topo, 8),
        }

    def test_compare_policies(self):
        topo = single_bus(arrival_rate=2.0, service_rate=3.0)
        comparison = compare_policies(
            topo,
            self.make_allocations(topo),
            replications=2,
            duration=300.0,
        )
        assert set(comparison.summaries) == {"uniform", "proportional"}
        assert comparison.mean_total_loss("uniform") >= 0
        per_proc = comparison.per_processor("uniform")
        assert set(per_proc) == set(topo.processors)

    def test_unknown_policy(self):
        topo = single_bus()
        comparison = compare_policies(
            topo, self.make_allocations(topo), replications=1, duration=100.0
        )
        with pytest.raises(ReproError):
            comparison.mean_total_loss("ghost")
        with pytest.raises(ReproError):
            comparison.per_processor("ghost")

    def test_empty_allocations_rejected(self):
        topo = single_bus()
        with pytest.raises(ReproError):
            compare_policies(topo, {}, replications=1)

    def test_improvement_over(self):
        topo = single_bus(arrival_rate=2.5, service_rate=2.0)
        comparison = compare_policies(
            topo,
            self.make_allocations(topo),
            replications=2,
            duration=400.0,
        )
        value = comparison.improvement_over("uniform", "proportional")
        assert -2.0 < value < 1.0

    def test_timeout_threshold_applied(self):
        topo = single_bus(arrival_rate=2.0, service_rate=2.5)
        allocations = {"plain": UniformSizing().allocate(topo, 8),
                       "strict": UniformSizing().allocate(topo, 8)}
        comparison = compare_policies(
            topo,
            allocations,
            replications=2,
            duration=500.0,
            timeout_thresholds={"strict": 0.02},
        )
        assert comparison.mean_total_loss(
            "strict"
        ) > comparison.mean_total_loss("plain")


class TestSweeps:
    def test_budget_sweep(self):
        topo = single_bus(arrival_rate=2.0, service_rate=3.0)
        points = budget_sweep(
            topo,
            budgets=[6, 12],
            policy_factories={"uniform": UniformSizing},
            replications=1,
            duration=300.0,
        )
        assert len(points) == 2
        # More budget, less loss.
        assert points[1].comparison.mean_total_loss(
            "uniform"
        ) <= points[0].comparison.mean_total_loss("uniform")

    def test_budget_sweep_empty(self):
        with pytest.raises(ReproError):
            budget_sweep(single_bus(), [], {"u": UniformSizing})

    def test_load_sweep(self):
        points = load_sweep(
            topology_factory=lambda s: single_bus(
                arrival_rate=1.0 * s, service_rate=3.0
            ),
            load_scales=[0.5, 2.0],
            budget=8,
            policy_factories={"uniform": UniformSizing},
            replications=1,
            duration=300.0,
        )
        assert len(points) == 2
        assert points[1].comparison.mean_total_loss(
            "uniform"
        ) >= points[0].comparison.mean_total_loss("uniform")

    def test_load_sweep_empty(self):
        with pytest.raises(ReproError):
            load_sweep(lambda s: single_bus(), [], 8, {})
