"""Cross-module property-based tests on core invariants.

These exercise whole pipelines under randomly generated inputs:

* random single-bus systems: LP occupation measures are distributions,
  policies are proper, simulated conservation laws hold;
* random bridged topologies: splitting covers every client exactly once
  and bridge rates never exceed offered traffic;
* random allocations: the greedy K-switching allocation dominates (in
  predicted loss) any random allocation of the same budget.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bus_model import BusClient, build_joint_bus_ctmdp
from repro.core.kswitching import ClientDemand, allocate_greedy
from repro.core.lp import AverageCostLP
from repro.core.splitting import bridge_arrival_rates, split
from repro.arch.topology import Topology
from repro.sim.runner import simulate

client_strategy = st.builds(
    BusClient,
    name=st.sampled_from(["a", "b"]),
    arrival_rate=st.floats(min_value=0.1, max_value=3.0),
    service_rate=st.floats(min_value=0.5, max_value=5.0),
    capacity=st.integers(min_value=1, max_value=3),
    loss_weight=st.floats(min_value=0.1, max_value=5.0),
)


@st.composite
def client_pairs(draw):
    c1 = draw(client_strategy)
    c2 = draw(client_strategy)
    return [
        BusClient("a", c1.arrival_rate, c1.service_rate, c1.capacity,
                  c1.loss_weight),
        BusClient("b", c2.arrival_rate, c2.service_rate, c2.capacity,
                  c2.loss_weight),
    ]


class TestLPInvariants:
    @given(clients=client_pairs())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_occupation_measure_is_distribution(self, clients):
        model = build_joint_bus_ctmdp(clients)
        solution = AverageCostLP(model).solve()
        occ = solution.occupations[0]
        total = sum(occ.values())
        assert total == pytest.approx(1.0, abs=1e-6)
        assert all(mass >= -1e-9 for mass in occ.values())

    @given(clients=client_pairs())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_objective_bounded_by_weighted_offered(self, clients):
        model = build_joint_bus_ctmdp(clients)
        solution = AverageCostLP(model).solve()
        bound = sum(c.loss_weight * c.arrival_rate for c in clients)
        assert -1e-9 <= solution.objective <= bound + 1e-9

    @given(clients=client_pairs())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_policy_evaluation_matches_objective(self, clients):
        model = build_joint_bus_ctmdp(clients)
        solution = AverageCostLP(model).solve()
        achieved = solution.policies[0].average_cost_rate()
        assert achieved == pytest.approx(solution.objective, abs=1e-6)


@st.composite
def random_bridged_topology(draw):
    """Two bridged buses, 2-3 processors, random rates and flows."""
    topo = Topology("random")
    topo.add_bus("x")
    topo.add_bus("y")
    topo.add_bridge(
        "br", "x", "y",
        service_rate=draw(st.floats(min_value=1.0, max_value=6.0)),
    )
    num_procs = draw(st.integers(min_value=2, max_value=3))
    buses = ["x", "y"]
    for i in range(num_procs):
        topo.add_processor(
            f"p{i}",
            buses[i % 2],
            service_rate=draw(st.floats(min_value=1.0, max_value=8.0)),
        )
    # At least one flow; ensure at least one crosses the bridge.
    topo.add_poisson_flow(
        "cross", "p0", "p1",
        draw(st.floats(min_value=0.1, max_value=2.0)),
    )
    if num_procs == 3 and draw(st.booleans()):
        topo.add_poisson_flow(
            "extra", "p2", "p0",
            draw(st.floats(min_value=0.1, max_value=1.0)),
        )
    return topo


class TestSplittingInvariants:
    @given(topo=random_bridged_topology())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_clients_partitioned(self, topo):
        system = split(topo, capacity_cap=3)
        names = system.all_client_names()
        assert len(names) == len(set(names))
        for proc in topo.processors:
            assert proc in names

    @given(topo=random_bridged_topology())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_bridge_rates_bounded_by_offered(self, topo):
        system = split(topo, capacity_cap=3)
        total_offered = topo.total_offered_rate()
        rates = bridge_arrival_rates(system, blocking={})
        for rate in rates.values():
            assert -1e-9 <= rate <= total_offered + 1e-9

    @given(
        topo=random_bridged_topology(),
        blocking_level=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_blocking_monotone_thinning(self, topo, blocking_level):
        system = split(topo, capacity_cap=3)
        free = bridge_arrival_rates(system, blocking={})
        blocked = bridge_arrival_rates(
            system,
            blocking={name: blocking_level for name in topo.processors},
        )
        for name in free:
            assert blocked[name] <= free[name] + 1e-9


class TestSimulationInvariants:
    @given(
        lam=st.floats(min_value=0.2, max_value=3.0),
        mu=st.floats(min_value=0.5, max_value=5.0),
        cap=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_conservation(self, lam, mu, cap, seed):
        topo = Topology("t")
        topo.add_bus("x")
        topo.add_processor("src", "x", service_rate=mu)
        topo.add_processor("dst", "x", service_rate=mu)
        topo.add_poisson_flow("f", "src", "dst", lam)
        result = simulate(
            topo, {"src": cap, "dst": 1}, duration=300.0, seed=seed
        )
        offered = result.offered["src"]
        accounted = result.lost["src"] + result.delivered["src"]
        # In-flight at horizon: at most the buffer capacity.
        assert 0 <= offered - accounted <= cap
        assert result.lost["src"] >= 0


class TestGreedyOptimality:
    @given(
        seeds=st.integers(min_value=0, max_value=1_000),
        budget=st.integers(min_value=4, max_value=20),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_greedy_beats_random_split(self, seeds, budget):
        rng = np.random.default_rng(seeds)
        demands = []
        for i in range(3):
            rho = rng.uniform(0.2, 0.9)
            marginal = rho ** np.arange(budget + 1)
            demands.append(
                ClientDemand(
                    name=f"c{i}",
                    marginal=marginal / marginal.sum(),
                    arrival_rate=float(rng.uniform(0.5, 3.0)),
                    loss_weight=1.0,
                    max_size=budget,
                )
            )

        def predicted_loss(sizes):
            return sum(
                d.truncated_loss(sizes[d.name]) for d in demands
            )

        greedy = allocate_greedy(demands, budget)
        # A random feasible allocation of the same budget.
        sizes = {d.name: 1 for d in demands}
        for _ in range(budget - 3):
            sizes[f"c{int(rng.integers(3))}"] += 1
        assert predicted_loss(greedy) <= predicted_loss(sizes) + 1e-9