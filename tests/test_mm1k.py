"""Tests for repro.queueing.mm1k."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.queueing.mm1k import MM1KQueue, MMcKQueue


class TestMM1KValidation:
    def test_rejects_bad_arrival(self):
        with pytest.raises(ModelError):
            MM1KQueue(0.0, 1.0, 3)

    def test_rejects_bad_service(self):
        with pytest.raises(ModelError):
            MM1KQueue(1.0, -1.0, 3)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ModelError):
            MM1KQueue(1.0, 1.0, 0)


class TestMM1KClosedForm:
    def test_rho(self):
        q = MM1KQueue(2.0, 4.0, 3)
        assert q.rho == pytest.approx(0.5)

    def test_state_probabilities_sum_to_one(self):
        q = MM1KQueue(3.0, 2.0, 7)
        assert q.state_probabilities().sum() == pytest.approx(1.0)

    def test_rho_one_uniform(self):
        q = MM1KQueue(2.0, 2.0, 4)
        assert np.allclose(q.state_probabilities(), 0.2)

    def test_blocking_k1_is_erlang_b(self):
        # M/M/1/1 blocking = E/(1+E).
        q = MM1KQueue(3.0, 2.0, 1)
        e = 1.5
        assert q.blocking_probability() == pytest.approx(e / (1 + e))

    def test_matches_birth_death(self):
        q = MM1KQueue(1.7, 2.3, 6)
        bd = q.to_birth_death()
        assert np.allclose(
            q.state_probabilities(), bd.stationary_distribution()
        )
        assert q.blocking_probability() == pytest.approx(
            bd.blocking_probability()
        )

    def test_loss_rate_and_carried_rate(self):
        q = MM1KQueue(2.0, 1.0, 4)
        assert q.loss_rate() + q.carried_rate() == pytest.approx(2.0)

    def test_carried_equals_service_flow(self):
        q = MM1KQueue(2.0, 3.0, 5)
        # Carried rate equals mu * utilization in steady state.
        assert q.carried_rate() == pytest.approx(3.0 * q.utilization())

    def test_mean_number_monotone_in_load(self):
        low = MM1KQueue(0.5, 1.0, 5).mean_number_in_system()
        high = MM1KQueue(2.0, 1.0, 5).mean_number_in_system()
        assert high > low

    def test_sojourn_time_littles_law(self):
        q = MM1KQueue(1.0, 2.0, 5)
        w = q.mean_sojourn_time()
        assert w * q.carried_rate() == pytest.approx(q.mean_number_in_system())

    def test_waiting_time_below_sojourn(self):
        q = MM1KQueue(1.0, 2.0, 5)
        assert 0.0 <= q.mean_waiting_time() < q.mean_sojourn_time()

    @given(
        lam=st.floats(min_value=0.05, max_value=10.0),
        mu=st.floats(min_value=0.05, max_value=10.0),
        k=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_blocking_in_unit_interval(self, lam, mu, k):
        q = MM1KQueue(lam, mu, k)
        b = q.blocking_probability()
        assert 0.0 < b < 1.0

    @given(
        lam=st.floats(min_value=0.05, max_value=5.0),
        mu=st.floats(min_value=0.05, max_value=5.0),
        k=st.integers(min_value=1, max_value=15),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_blocking_decreases_with_capacity(self, lam, mu, k):
        b1 = MM1KQueue(lam, mu, k).blocking_probability()
        b2 = MM1KQueue(lam, mu, k + 1).blocking_probability()
        assert b2 <= b1 + 1e-12


class TestMMcK:
    def test_validation(self):
        with pytest.raises(ModelError):
            MMcKQueue(1.0, 1.0, 0, 3)
        with pytest.raises(ModelError):
            MMcKQueue(1.0, 1.0, 4, 3)
        with pytest.raises(ModelError):
            MMcKQueue(-1.0, 1.0, 1, 3)
        with pytest.raises(ModelError):
            MMcKQueue(1.0, 0.0, 1, 3)

    def test_single_server_reduces_to_mm1k(self):
        mmck = MMcKQueue(1.3, 2.1, 1, 5)
        mm1k = MM1KQueue(1.3, 2.1, 5)
        assert np.allclose(
            mmck.state_probabilities(), mm1k.state_probabilities()
        )

    def test_mmcc_blocking_is_erlang_b(self):
        from repro.queueing.erlang import erlang_b

        lam, mu, c = 3.0, 1.0, 4
        q = MMcKQueue(lam, mu, c, c)
        assert q.blocking_probability() == pytest.approx(
            erlang_b(lam / mu, c)
        )

    def test_more_servers_less_blocking(self):
        b1 = MMcKQueue(4.0, 1.0, 2, 8).blocking_probability()
        b2 = MMcKQueue(4.0, 1.0, 4, 8).blocking_probability()
        assert b2 < b1

    def test_flow_conservation(self):
        q = MMcKQueue(5.0, 1.0, 3, 9)
        assert q.loss_rate() + q.carried_rate() == pytest.approx(5.0)

    def test_mean_number_bounded_by_capacity(self):
        q = MMcKQueue(50.0, 1.0, 2, 6)
        assert q.mean_number_in_system() <= 6.0
