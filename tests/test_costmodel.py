"""Tests for repro.dist.costmodel — the scheduler's runtime predictor.

The model is a scheduling *hint* with hard invariants: equal features
predict equal costs (cold-start FIFO equivalence rides on this plus
stable sorts), predictions scale with the job's work units, every
observation refines the whole key hierarchy, and state round-trips
through JSON so brokers warm-start across runs.  Malformed inputs
(bench artifacts, persisted files, runtimes) must degrade to a cold
start, never to an exception — a broken hint must not break a fleet.
"""

import json

import pytest

from repro.dist.costmodel import (
    DEFAULT_UNIT_COST,
    CostModel,
    job_features,
)
from repro.dist.jobs import echo, run_block, sleep_block


class TestJobFeatures:
    def test_run_block_payload_units_are_duration_times_reps(self):
        payload = {
            "scenario": "amba",
            "budget": 16,
            "sim_backend": "batched",
            "duration": 500.0,
            "start": 2,
            "stop": 6,
        }
        features = job_features(run_block, payload)
        assert features["kind"] == "run_block"
        assert features["scenario"] == "amba"
        assert features["budget"] == 16
        assert features["sim_backend"] == "batched"
        assert features["units"] == 500.0 * 4

    def test_sleep_block_payload_units_are_duration(self):
        features = job_features(
            sleep_block, {"scenario": "short", "index": 3, "duration": 0.05}
        )
        assert features["units"] == pytest.approx(0.05)
        assert features["scenario"] == "short"

    def test_unknown_payload_reduces_to_kind_and_one_unit(self):
        features = job_features(echo, 17)
        assert features == {"kind": "echo", "units": 1.0}

    def test_non_positive_duration_is_ignored(self):
        features = job_features(echo, {"duration": 0})
        assert features["units"] == 1.0


class TestPredict:
    def test_cold_predictions_scale_with_units(self):
        model = CostModel()
        small = model.predict({"kind": "k", "units": 1.0})
        large = model.predict({"kind": "k", "units": 10.0})
        assert large == pytest.approx(10 * small)
        assert small == pytest.approx(DEFAULT_UNIT_COST)

    def test_equal_features_predict_equal_costs(self):
        # The cold-start FIFO-equivalence precondition: the scheduler's
        # stable sort keeps submission order among these.
        model = CostModel()
        a = model.predict({"kind": "k", "scenario": "s", "units": 2.0})
        b = model.predict({"kind": "k", "scenario": "s", "units": 2.0})
        assert a == b

    def test_most_specific_key_wins(self):
        model = CostModel()
        fine = {
            "kind": "k", "scenario": "s", "sim_backend": "b",
            "budget": 8, "units": 1.0,
        }
        coarse = {"kind": "k", "scenario": "other", "units": 1.0}
        model.observe(fine, 2.0)
        # The same scenario+backend at a *new* budget inherits the
        # scenario-level rate from that one observation.
        sibling = dict(fine, budget=16)
        assert model.predict(fine) == pytest.approx(2.0)
        assert model.predict(sibling) == pytest.approx(2.0)
        # A different scenario only has kind-level and global data.
        assert model.predict(coarse) == pytest.approx(2.0)

    def test_prior_scales_the_default(self):
        model = CostModel()
        model.seed_from_bench(
            {
                "benchmarks": [
                    {
                        "extra_info": {"scenario": "slow"},
                        "stats": {"mean": 3.0},
                    },
                    {
                        "extra_info": {"scenario": "fast"},
                        "stats": {"mean": 1.0},
                    },
                ]
            }
        )
        slow = model.predict({"kind": "k", "scenario": "slow", "units": 1.0})
        fast = model.predict({"kind": "k", "scenario": "fast", "units": 1.0})
        assert slow == pytest.approx(3 * fast)

    def test_featureless_prediction_is_finite(self):
        model = CostModel()
        assert model.predict(None) == pytest.approx(DEFAULT_UNIT_COST)
        model.observe({"kind": "k", "units": 1.0}, 0.5)
        assert model.predict(None) == pytest.approx(0.5)


class TestObserve:
    def test_observation_converges_rates(self):
        model = CostModel()
        features = {"kind": "k", "scenario": "s", "units": 2.0}
        for _ in range(30):
            model.observe(features, 1.0)
        # unit cost -> 0.5, so 2 units predict ~1 second.
        assert model.predict(features) == pytest.approx(1.0, rel=1e-3)
        assert model.observations == 30

    def test_error_ewma_tracks_prediction_accuracy(self):
        model = CostModel()
        features = {"kind": "k", "units": 1.0}
        model.observe(features, 1.0, predicted=2.0)  # 100% off
        assert model.mean_abs_rel_err == pytest.approx(1.0)
        model.observe(features, 1.0, predicted=1.0)  # spot on
        assert model.mean_abs_rel_err == pytest.approx(0.8)

    def test_garbage_runtimes_are_ignored(self):
        model = CostModel()
        features = {"kind": "k", "units": 1.0}
        for bad in (None, -1.0, float("nan"), float("inf")):
            model.observe(features, bad)
        assert model.observations == 0
        assert model.predict(features) == pytest.approx(DEFAULT_UNIT_COST)


class TestBenchSeeding:
    def test_seed_from_bench_file(self, tmp_path):
        path = tmp_path / "BENCH_quick.json"
        path.write_text(
            json.dumps(
                {
                    "benchmarks": [
                        {
                            "extra_info": {"scenario": "amba"},
                            "stats": {"mean": 4.0},
                        },
                        {
                            "extra_info": {"scenario": "netproc"},
                            "stats": {"mean": 2.0},
                        },
                    ]
                }
            )
        )
        model = CostModel()
        assert model.seed_from_bench(path) == 2
        assert model.stats()["priors"] == 2

    def test_malformed_sources_seed_nothing(self, tmp_path):
        model = CostModel()
        assert model.seed_from_bench(tmp_path / "missing.json") == 0
        assert model.seed_from_bench({"benchmarks": "nope"}) == 0
        assert model.seed_from_bench(
            {"benchmarks": [{"extra_info": {}, "stats": {"mean": 1.0}}]}
        ) == 0
        assert model.seed_from_bench(None) == 0


class TestPersistence:
    def test_state_roundtrip_preserves_predictions(self):
        model = CostModel()
        features = {"kind": "k", "scenario": "s", "units": 3.0}
        model.observe(features, 1.5)
        model.seed_from_bench(
            {
                "benchmarks": [
                    {
                        "extra_info": {"scenario": "x"},
                        "stats": {"mean": 1.0},
                    }
                ]
            }
        )
        restored = CostModel()
        assert restored.from_state(model.to_state())
        assert restored.predict(features) == model.predict(features)
        assert restored.observations == model.observations

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "costmodel.json"
        model = CostModel()
        model.observe({"kind": "k", "units": 1.0}, 0.25)
        model.save(path)
        restored = CostModel()
        assert restored.load(path)
        assert restored.predict({"kind": "k", "units": 1.0}) == (
            model.predict({"kind": "k", "units": 1.0})
        )

    def test_missing_or_damaged_file_is_a_cold_start(self, tmp_path):
        model = CostModel()
        assert not model.load(tmp_path / "missing.json")
        damaged = tmp_path / "damaged.json"
        damaged.write_text("{not json")
        assert not model.load(damaged)
        wrong_schema = tmp_path / "wrong.json"
        wrong_schema.write_text(json.dumps({"schema": 999}))
        assert not model.load(wrong_schema)

    def test_corrupt_state_resets_instead_of_half_loading(self):
        model = CostModel()
        model.observe({"kind": "k", "units": 1.0}, 1.0)
        assert not model.from_state(
            {"schema": 1, "rates": {"k": ["not-a-number", 1]}}
        )
        assert model.predict({"kind": "k", "units": 1.0}) == (
            pytest.approx(DEFAULT_UNIT_COST)
        )

    def test_invalid_alpha_rejected(self):
        for alpha in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                CostModel(alpha=alpha)


class TestStats:
    def test_stats_keys(self):
        model = CostModel()
        assert set(model.stats()) == {
            "observations", "entries", "priors", "mean_abs_rel_err",
        }
