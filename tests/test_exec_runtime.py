"""Tests for repro.exec — the experiment-execution runtime.

Covers the three determinism/equivalence contracts the runtime makes:

* ``jobs=N`` replication batches are bitwise-identical to ``jobs=1``;
* warm-started budget sweeps produce the same allocations as cold
  per-budget solves, in fewer total fixed-point iterations;
* the content-addressed cache hits on identical configurations and
  misses on any config or code-version change.
"""

import pickle

import pytest

from repro import _version
from repro.arch.templates import amba_like, coreconnect_like, paper_figure1
from repro.core.sizing import BufferSizer
from repro.errors import ReproError, SimulationError
from repro.exec import ExecutionContext
from repro.exec.cache import (
    ResultCache,
    canonicalize,
    stable_hash,
    topology_fingerprint,
)
from repro.exec.pool import parallel_map, resolve_jobs
from repro.exec.sweeps import sweep_budgets
from repro.sim.runner import replicate, replication_seeds


def _square(x):
    return x * x


def _raise_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


class TestPool:
    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1

    def test_negative_jobs_rejected(self):
        with pytest.raises(SimulationError):
            resolve_jobs(-2)

    def test_serial_pooled_identical(self):
        items = list(range(20))
        serial = parallel_map(_square, items, jobs=1)
        pooled = parallel_map(_square, items, jobs=2)
        assert serial == [x * x for x in items]
        assert pooled == serial

    def test_order_preserved_with_chunking(self):
        items = list(range(37))
        assert parallel_map(_square, items, jobs=3, chunksize=5) == [
            x * x for x in items
        ]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError):
            parallel_map(_raise_on_three, [1, 2, 3, 4], jobs=2)


class TestSeedSchemes:
    def test_legacy_is_the_historical_formula(self):
        assert replication_seeds(5, base_seed=7) == [
            7 + 1000 * r for r in range(5)
        ]

    def test_legacy_collides_across_nearby_batches(self):
        # The defect the spawn scheme fixes: replication 1 of batch 0 is
        # replication 0 of batch 1000.
        batch_a = replication_seeds(2, base_seed=0)
        batch_b = replication_seeds(2, base_seed=1000)
        assert batch_a[1] == batch_b[0]

    def test_spawn_unique_across_replications_and_batches(self):
        seeds = set()
        for base in range(6):
            batch = replication_seeds(50, base_seed=base, scheme="spawn")
            seeds.update(batch)
        assert len(seeds) == 6 * 50

    def test_spawn_deterministic(self):
        assert replication_seeds(8, 3, "spawn") == replication_seeds(
            8, 3, "spawn"
        )

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SimulationError):
            replication_seeds(2, scheme="quantum")

    def test_bad_replications_rejected(self):
        with pytest.raises(SimulationError):
            replication_seeds(0)


@pytest.fixture(scope="module")
def amba():
    return amba_like()


@pytest.fixture(scope="module")
def amba_caps(amba):
    return {name: 3 for name in amba.processors}


class TestParallelReplicate:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"arbiter_kind": "longest_queue"},
            {"arbiter_kind": "fixed_priority"},
            {"arbiter_kind": "round_robin"},
            {"arbiter_kind": "weighted_random"},
            {"arbiter_kind": "longest_queue", "timeout_threshold": 1.5},
            {"arbiter_kind": "longest_queue", "warmup": 50.0},
        ],
        ids=[
            "longest_queue",
            "fixed_priority",
            "round_robin",
            "weighted_random",
            "timeout",
            "warmup",
        ],
    )
    def test_pooled_bitwise_identical(self, amba, amba_caps, kwargs):
        serial = replicate(
            amba, amba_caps, replications=3, duration=200.0, jobs=1, **kwargs
        )
        pooled = replicate(
            amba, amba_caps, replications=3, duration=200.0, jobs=2, **kwargs
        )
        assert serial.results == pooled.results

    def test_spawn_scheme_pooled_identical(self, amba, amba_caps):
        serial = replicate(
            amba, amba_caps, replications=4, duration=150.0,
            jobs=1, seed_scheme="spawn",
        )
        pooled = replicate(
            amba, amba_caps, replications=4, duration=150.0,
            jobs=2, seed_scheme="spawn",
        )
        assert serial.results == pooled.results

    def test_spawn_differs_from_legacy(self, amba, amba_caps):
        legacy = replicate(amba, amba_caps, replications=3, duration=150.0)
        spawn = replicate(
            amba, amba_caps, replications=3, duration=150.0,
            seed_scheme="spawn",
        )
        assert legacy.results != spawn.results


class TestCanonicalize:
    def test_scalars_and_containers(self):
        tree = {"b": (1, 2), "a": {3, 1}, "c": None}
        assert canonicalize(tree) == {"b": [1, 2], "a": [1, 3], "c": None}

    def test_dataclass_tagged_with_type(self, amba):
        traffic = next(iter(amba.flows.values())).traffic
        out = canonicalize(traffic)
        assert out["__type__"] == type(traffic).__name__

    def test_unhashable_object_rejected(self):
        with pytest.raises(ReproError):
            canonicalize(object())

    def test_stable_hash_key_order_independent(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_topology_fingerprint_stable_across_builds(self, amba):
        fp = stable_hash(topology_fingerprint(amba))
        other = amba_like()
        assert stable_hash(topology_fingerprint(other)) == fp

    def test_topology_fingerprint_sensitive_to_rates(self, amba):
        from repro.arch.topology import Topology

        fp = stable_hash(topology_fingerprint(amba))
        perturbed = Topology(amba.name)
        for bus in amba.buses.values():
            perturbed.add_bus(bus.name)
        for link in amba.links:
            perturbed.add_link(link.bus_a, link.bus_b)
        for bridge in amba.bridges.values():
            perturbed.add_bridge(
                bridge.name, bridge.bus_a, bridge.bus_b,
                service_rate=bridge.service_rate,
                loss_weight=bridge.loss_weight,
            )
        for i, proc in enumerate(amba.processors.values()):
            perturbed.add_processor(
                proc.name, proc.bus,
                # Bump one processor's service rate; everything else
                # identical — the hash must move.
                proc.service_rate * (1.001 if i == 0 else 1.0),
                proc.loss_weight,
            )
        for flow in amba.flows.values():
            perturbed.add_flow(
                flow.name, flow.source, flow.destination, flow.traffic
            )
        assert stable_hash(topology_fingerprint(perturbed)) != fp

    def test_topology_fingerprint_sensitive_to_traffic(self, amba):
        fp = stable_hash(topology_fingerprint(amba))
        scaled = amba_like()
        name, flow = next(iter(scaled.flows.items()))
        scaled.flows[name] = type(flow)(
            name=flow.name,
            source=flow.source,
            destination=flow.destination,
            traffic=flow.traffic.scaled(1.01),
        )
        assert stable_hash(topology_fingerprint(scaled)) != fp


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("thing", {"x": 1})
        assert cache.get(key) == (False, None)
        cache.put(key, {"value": [1.5, 2.5]})
        hit, value = cache.get(key)
        assert hit and value == {"value": [1.5, 2.5]}

    def test_config_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.key("thing", {"x": 1}) != cache.key("thing", {"x": 2})
        assert cache.key("thing", {"x": 1}) != cache.key("other", {"x": 1})

    def test_code_version_invalidates(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        key_now = cache.key("thing", {"x": 1})
        monkeypatch.setattr(_version, "__version__", "999.0.0")
        assert cache.key("thing", {"x": 1}) != key_now

    def test_fetch_memoises(self, tmp_path):
        cache = ResultCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return 42

        assert cache.fetch("k", {"a": 1}, compute) == 42
        assert cache.fetch("k", {"a": 1}, compute) == 42
        assert len(calls) == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("thing", {"x": 1})
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        hit, _ = cache.get(key)
        assert not hit


class TestCacheEviction:
    """Size-bounded LRU eviction (max_bytes / --cache-max-mb)."""

    @staticmethod
    def _fill(cache, keys, payload=b"x" * 800):
        import os

        for age, key in enumerate(keys):
            cache.put(key, payload)
            # Pin distinct, increasing mtimes so LRU order is explicit
            # regardless of filesystem timestamp granularity.
            os.utime(cache.path_for(key), (age + 1, age + 1))

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = [cache.key("k", {"i": i}) for i in range(8)]
        self._fill(cache, keys)
        assert len(cache.entry_paths()) == 8
        assert cache.evictions == 0

    def test_evicts_oldest_first_and_respects_bound(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=4000)
        keys = [cache.key("k", {"i": i}) for i in range(8)]
        self._fill(cache, keys)
        newest = cache.key("k", {"i": "new"})
        cache.put(newest, b"y" * 800)
        assert cache.total_bytes() <= 4000
        assert cache.evictions > 0
        survivors = {p.name for p in cache.entry_paths()}
        # The oldest entries are the ones that went.
        assert f"{keys[0]}.pkl" not in survivors
        assert f"{keys[1]}.pkl" not in survivors
        assert f"{newest}.pkl" in survivors

    def test_hit_refreshes_recency(self, tmp_path):
        import os

        cache = ResultCache(tmp_path, max_bytes=3000)
        keys = [cache.key("k", {"i": i}) for i in range(3)]
        self._fill(cache, keys)
        # Touch the oldest through a hit; it must outlive a later
        # eviction wave that claims the (now) least recently used key.
        hit, _ = cache.get(keys[0])
        assert hit
        os.utime(cache.path_for(keys[0]), (100, 100))
        cache.put(cache.key("k", {"i": "more"}), b"z" * 2000)
        survivors = {p.name for p in cache.entry_paths()}
        assert f"{keys[0]}.pkl" in survivors
        assert f"{keys[1]}.pkl" not in survivors

    def test_entry_corrupted_after_footprint_scan_self_heals(
        self, tmp_path
    ):
        # Bit rot after the cache has already scanned its footprint:
        # the read must quarantine (not unpickle damaged bytes), count
        # a miss, and the next put of the key heals the entry while
        # the footprint bookkeeping stays consistent.
        cache = ResultCache(tmp_path, max_bytes=50_000)
        key = cache.key("k", {"i": "rot"})
        cache.put(key, {"v": 1})  # seeds the footprint estimate
        assert cache._approx_bytes is not None
        path = cache.path_for(key)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))

        hit, _ = cache.get(key)
        assert not hit
        assert cache.quarantined == 1
        assert [p.suffix for p in cache.quarantined_paths()] == [
            ".quarantined"
        ]
        assert cache.entry_paths() == []  # out of the hit namespace
        cache.put(key, {"v": 1})  # self-heal
        assert cache.get(key) == (True, {"v": 1})
        # Quarantined bytes are kept for forensics but never count
        # toward the entry footprint.
        assert cache.total_bytes() == path.stat().st_size

    def test_corrupt_entries_evict_like_any_other(self, tmp_path):
        import os

        cache = ResultCache(tmp_path, max_bytes=1500)
        key = cache.key("k", {"i": 0})
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"garbage" * 100)
        os.utime(path, (1, 1))
        hit, _ = cache.get(key)
        assert not hit  # corrupt reads stay misses
        fresh = cache.key("k", {"i": 1})
        cache.put(fresh, b"v" * 1200)
        survivors = {p.name for p in cache.entry_paths()}
        assert f"{key}.pkl" not in survivors
        assert f"{fresh}.pkl" in survivors

    def test_fetch_still_works_under_eviction_pressure(self, tmp_path):
        # A bound smaller than one entry disables persistence but must
        # never break fetch(): every call recomputes.
        cache = ResultCache(tmp_path, max_bytes=10)
        calls = []

        def compute():
            calls.append(1)
            return list(range(100))

        assert cache.fetch("k", {"a": 1}, compute) == list(range(100))
        assert cache.fetch("k", {"a": 1}, compute) == list(range(100))
        assert len(calls) == 2
        assert cache.total_bytes() <= 10

    def test_negative_bound_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            ResultCache(tmp_path, max_bytes=-1)

    def test_create_requires_cache_dir_for_bound(self):
        with pytest.raises(ReproError, match="cache directory"):
            ExecutionContext.create(cache_max_mb=1.0)

    def test_create_wires_bound_in_mib(self, tmp_path):
        context = ExecutionContext.create(
            cache_dir=tmp_path, cache_max_mb=2.5
        )
        assert context.cache.max_bytes == int(2.5 * 1024 * 1024)


class TestSimBackendThreading:
    """ExecutionContext.sim_backend reaches replicate() and cache keys."""

    def test_default_backend_is_batched(self):
        # Promoted to the experiment default after soaking (heap stays
        # the reference engine, selected via sim_backend="heap").
        assert ExecutionContext().sim_backend == "batched"
        assert ExecutionContext.create().sim_backend == "batched"

    def test_backend_injected_into_replication(self, amba, amba_caps):
        heap_ctx = ExecutionContext.create(sim_backend="heap")
        batched_ctx = ExecutionContext.create(sim_backend="batched")
        a = heap_ctx.replicate(
            amba, amba_caps, replications=2, duration=120.0
        )
        b = batched_ctx.replicate(
            amba, amba_caps, replications=2, duration=120.0
        )
        # Deterministic default arbiter: backends agree bitwise.
        assert a.results == b.results

    def test_backend_is_part_of_cache_key(self, tmp_path, amba, amba_caps):
        heap_ctx = ExecutionContext.create(
            cache_dir=tmp_path, sim_backend="heap"
        )
        heap_ctx.replicate(amba, amba_caps, replications=2, duration=120.0)
        batched_ctx = ExecutionContext.create(
            cache_dir=tmp_path, sim_backend="batched"
        )
        batched_ctx.replicate(
            amba, amba_caps, replications=2, duration=120.0
        )
        # Unlike jobs, the backend keys separately (randomised arbiters
        # are only statistically equivalent across backends).
        assert batched_ctx.cache.hits == 0
        assert batched_ctx.cache.misses == 1

    def test_explicit_backend_kwarg_wins(self, amba, amba_caps):
        context = ExecutionContext.create(sim_backend="batched")
        summary = context.replicate(
            amba,
            amba_caps,
            replications=2,
            duration=120.0,
            backend="heap",
        )
        reference = replicate(
            amba, amba_caps, replications=2, duration=120.0
        )
        assert summary.results == reference.results


class TestExecutionContext:
    def test_replicate_cached_across_calls(self, tmp_path, amba, amba_caps):
        context = ExecutionContext.create(jobs=1, cache_dir=tmp_path)
        first = context.replicate(
            amba, amba_caps, replications=2, duration=150.0
        )
        second = context.replicate(
            amba, amba_caps, replications=2, duration=150.0
        )
        assert context.cache.hits == 1
        assert first.results == second.results
        # A config change must recompute, not hit.
        context.replicate(amba, amba_caps, replications=2, duration=151.0)
        assert context.cache.misses == 2

    def test_size_cached(self, tmp_path, amba):
        context = ExecutionContext.create(cache_dir=tmp_path)
        first = context.size(amba, 12)
        second = context.size(amba, 12)
        assert context.cache.hits == 1
        assert first.allocation.sizes == second.allocation.sizes

    def test_size_explicit_defaults_share_cache_entry(self, tmp_path, amba):
        context = ExecutionContext.create(cache_dir=tmp_path)
        context.size(amba, 12)
        context.size(amba, 12, sizer_kwargs={"use_compiled": True})
        assert context.cache.hits == 1

    def test_jobs_do_not_affect_cache_key(self, tmp_path, amba, amba_caps):
        serial = ExecutionContext.create(jobs=1, cache_dir=tmp_path)
        serial.replicate(amba, amba_caps, replications=2, duration=150.0)
        pooled = ExecutionContext.create(jobs=2, cache_dir=tmp_path)
        pooled.replicate(amba, amba_caps, replications=2, duration=150.0)
        assert pooled.cache.hits == 1

    def test_explicit_defaults_share_cache_entry(
        self, tmp_path, amba, amba_caps
    ):
        # Spelling out a default (as the CLI does) and omitting it (as
        # compare_policies does) must address the same entry.
        context = ExecutionContext.create(cache_dir=tmp_path)
        context.replicate(amba, amba_caps, replications=2, duration=150.0)
        context.replicate(
            amba, amba_caps, replications=2, duration=150.0,
            seed_scheme="legacy", arbiter_kind="longest_queue",
            timeout_threshold=None, warmup=0.0,
        )
        assert context.cache.hits == 1

    def test_non_converged_sizing_never_cached(self, tmp_path):
        # One outer iteration cannot converge fig1's bridge fixed point,
        # so the start-dependent result must be recomputed every time.
        topo = paper_figure1()
        context = ExecutionContext.create(cache_dir=tmp_path)
        kwargs = {"max_fixed_point_iterations": 1}
        first = context.size(topo, 16, sizer_kwargs=kwargs)
        assert not first.converged
        context.size(topo, 16, sizer_kwargs=kwargs)
        assert context.cache.hits == 0
        assert context.cache.misses == 2


class TestWarmSweeps:
    BUDGETS = (14, 16, 18, 20, 22, 24)

    @pytest.fixture(scope="class")
    def fig1(self):
        return paper_figure1()

    @pytest.fixture(scope="class")
    def cold(self, fig1):
        return sweep_budgets(fig1, self.BUDGETS, warm_start=False)

    @pytest.fixture(scope="class")
    def warm(self, fig1):
        return sweep_budgets(fig1, self.BUDGETS, warm_start=True)

    def test_allocations_equal_cold(self, cold, warm):
        assert warm.allocations() == cold.allocations()

    def test_warm_reduces_total_iterations(self, cold, warm):
        assert (
            warm.total_fixed_point_iterations
            < cold.total_fixed_point_iterations
        )

    def test_warm_flags(self, cold, warm):
        assert [p.warm_started for p in warm.points] == [
            False, True, True, True, True, True,
        ]
        assert not any(p.warm_started for p in cold.points)

    def test_budgets_match_cold_single_solves(self, fig1, warm):
        for budget in (14, 24):
            cold_result = BufferSizer(total_budget=budget).size(fig1)
            assert (
                warm.result_for(budget).allocation.sizes
                == cold_result.allocation.sizes
            )

    def test_fixed_cap_keeps_structure_for_basis_reuse(self):
        topo = coreconnect_like()
        budgets = (12, 14, 16, 18, 20)
        kwargs = {"capacity_cap": 4}
        cold = sweep_budgets(topo, budgets, kwargs, warm_start=False)
        warm = sweep_budgets(topo, budgets, kwargs, warm_start=True)
        assert warm.allocations() == cold.allocations()
        assert (
            warm.total_fixed_point_iterations
            <= cold.total_fixed_point_iterations
        )

    def test_parallel_cold_sweep_matches_serial(self, fig1, cold):
        pooled = sweep_budgets(fig1, self.BUDGETS, warm_start=False, jobs=2)
        assert pooled.allocations() == cold.allocations()

    def test_cache_short_circuits_second_sweep(self, tmp_path, fig1):
        cache = ResultCache(tmp_path)
        first = sweep_budgets(fig1, (14, 16), cache=cache)
        second = sweep_budgets(fig1, (14, 16), cache=cache)
        assert all(not p.from_cache for p in first.points)
        assert all(p.from_cache for p in second.points)
        assert second.total_fixed_point_iterations == 0
        assert second.allocations() == first.allocations()

    def test_converged_flag_set(self, warm):
        assert all(p.result.converged for p in warm.points)

    def test_duplicate_budgets_solved_once(self, fig1):
        deduped = sweep_budgets(fig1, (14, 14, 16), warm_start=True)
        assert [p.budget for p in deduped.points] == [14, 14, 16]
        assert deduped.points[0].result is deduped.points[1].result
        single = sweep_budgets(fig1, (14, 16), warm_start=True)
        assert (
            deduped.total_fixed_point_iterations
            == single.total_fixed_point_iterations
        )

    def test_non_converged_sweep_points_not_cached(self, tmp_path, fig1):
        cache = ResultCache(tmp_path)
        kwargs = {"max_fixed_point_iterations": 1}
        first = sweep_budgets(fig1, (16,), kwargs, cache=cache)
        assert not first.points[0].result.converged
        second = sweep_budgets(fig1, (16,), kwargs, cache=cache)
        assert not second.points[0].from_cache

    def test_sizing_result_picklable(self, fig1, warm):
        blob = pickle.dumps(warm.result_for(14))
        assert pickle.loads(blob).allocation.sizes == warm.result_for(
            14
        ).allocation.sizes

    def test_empty_budgets_rejected(self, fig1):
        with pytest.raises(ReproError):
            sweep_budgets(fig1, ())

    def test_unknown_budget_rejected(self, warm):
        with pytest.raises(ReproError):
            warm.result_for(999)


# ----------------------------------------------------------------------
# Progress reporting (on_result / ExecutionContext.progress) and the
# pluggable-executor seam the distributed runtime uses.


class _RecordingExecutor:
    """Stub executor implementing the parallel_map executor protocol."""

    def __init__(self):
        self.maps = 0

    def map(self, fn, items, on_result=None):
        self.maps += 1
        results = []
        for index, item in enumerate(items):
            result = fn(item)
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results


class TestOnResult:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_parallel_map_fires_in_index_order(self, jobs):
        seen = []
        out = parallel_map(
            _square,
            range(9),
            jobs=jobs,
            on_result=lambda i, r: seen.append((i, r)),
        )
        assert out == [i * i for i in range(9)]
        assert seen == [(i, i * i) for i in range(9)]

    def test_replicate_streams_results_in_replication_order(
        self, amba, amba_caps
    ):
        seen = []
        summary = replicate(
            amba,
            amba_caps,
            replications=3,
            duration=150.0,
            on_result=lambda i, r: seen.append((i, r)),
        )
        assert [i for i, _ in seen] == [0, 1, 2]
        assert [r for _, r in seen] == summary.results

    def test_sweep_fires_per_budget_warm_cold_and_cached(
        self, tmp_path, amba
    ):
        budgets = [10, 12]
        warm_seen = []
        sweep_budgets(
            amba,
            budgets,
            warm_start=True,
            on_result=lambda b, r: warm_seen.append(b),
        )
        assert warm_seen == budgets
        cold_seen = []
        sweep_budgets(
            amba,
            budgets,
            warm_start=False,
            on_result=lambda b, r: cold_seen.append(b),
        )
        assert cold_seen == budgets
        # Cache hits report too — a fully cached sweep still streams
        # one event per unique budget.
        cache = ResultCache(tmp_path)
        sweep_budgets(amba, budgets, cache=cache)
        cached_seen = []
        sweep_budgets(
            amba,
            budgets,
            cache=cache,
            on_result=lambda b, r: cached_seen.append(b),
        )
        assert cached_seen == budgets


class TestContextProgressAndExecutor:
    def test_progress_events_replication_and_sizing(self, amba, amba_caps):
        events = []
        context = ExecutionContext(
            progress=lambda kind, key: events.append((kind, key))
        )
        context.replicate(amba, amba_caps, replications=2, duration=150.0)
        assert events == [("replication", 0), ("replication", 1)]
        events.clear()
        context.sweep(amba, [10, 12])
        assert events == [("sizing", 10), ("sizing", 12)]

    def test_explicit_on_result_wins_over_progress(self, amba, amba_caps):
        events, seen = [], []
        context = ExecutionContext(
            progress=lambda kind, key: events.append((kind, key))
        )
        context.replicate(
            amba,
            amba_caps,
            replications=2,
            duration=150.0,
            on_result=lambda i, r: seen.append(i),
        )
        assert seen == [0, 1]
        assert events == []

    def test_parallel_map_executor_replaces_pool(self):
        stub = _RecordingExecutor()
        assert parallel_map(
            _square, range(5), jobs=8, executor=stub
        ) == [i * i for i in range(5)]
        assert stub.maps == 1

    def test_context_executor_preserves_results(self, amba, amba_caps):
        stub = _RecordingExecutor()
        via_executor = ExecutionContext(executor=stub).replicate(
            amba, amba_caps, replications=2, duration=150.0
        )
        serial = ExecutionContext().replicate(
            amba, amba_caps, replications=2, duration=150.0
        )
        assert stub.maps == 1
        assert via_executor.results == serial.results

    def test_progress_and_executor_never_reach_cache_keys(
        self, tmp_path, amba, amba_caps
    ):
        import dataclasses

        observed = dataclasses.replace(
            ExecutionContext.create(
                cache_dir=tmp_path, progress=lambda kind, key: None
            ),
            executor=_RecordingExecutor(),
        )
        observed.replicate(amba, amba_caps, replications=2, duration=150.0)
        plain = ExecutionContext.create(cache_dir=tmp_path)
        plain.replicate(amba, amba_caps, replications=2, duration=150.0)
        assert plain.cache.hits == 1


# ----------------------------------------------------------------------
# Concurrent-writer safety of ResultCache (the shared-tier and parallel
# CI prerequisite): racing writers/evictors must never crash or corrupt.


def _cache_hammer(args):
    """Pool worker: hammer one shared cache directory with put/get/evict."""
    root, worker, rounds = args
    cache = ResultCache(root, max_bytes=4096)
    for i in range(rounds):
        key = cache.key("race", {"worker": worker, "i": i % 7})
        cache.put(key, list(range(50)))
        cache.lookup(key)
        # Read keys the *other* writers own, racing their evictions.
        cache.lookup(cache.key("race", {"worker": (worker + 1) % 4, "i": i % 7}))
    return cache.evictions


class TestCacheConcurrency:
    def test_racing_processes_never_crash_or_corrupt(self, tmp_path):
        # Four processes put/get/evict the same directory; any
        # unhandled FileNotFoundError (stat/unlink/open races) or a
        # torn entry read would propagate out of parallel_map.
        parallel_map(
            _cache_hammer,
            [(str(tmp_path), w, 40) for w in range(4)],
            jobs=4,
        )
        survivor = ResultCache(tmp_path, max_bytes=4096)
        key = survivor.key("race", {"post": True})
        survivor.put(key, "still works")
        assert survivor.lookup(key) == (True, "still works")

    def test_racing_threads_on_one_instance(self, tmp_path):
        # The broker serves one ResultCache from many connection
        # threads; eviction bookkeeping must be serialised.
        import threading

        cache = ResultCache(tmp_path, max_bytes=2048)
        errors = []

        def work(tid):
            try:
                for i in range(40):
                    key = cache.key("threads", {"tid": tid, "i": i % 5})
                    cache.put(key, b"x" * 200)
                    cache.lookup(key)
            except Exception as exc:  # pragma: no cover - the failure
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(tid,)) for tid in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        # The bound is enforced once the racing writers settle.
        cache.put(cache.key("threads", {"final": True}), b"y")
        assert cache.total_bytes() <= 2048

    def test_eviction_tolerates_files_vanishing_underneath(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=200)
        for i in range(4):
            cache.put(cache.key("vanish", {"i": i}), b"z" * 120)
        # Another process "evicts" everything behind this instance's
        # back; the stale footprint estimate must correct itself
        # without raising on the vanished files.
        for path in cache.entry_paths():
            path.unlink()
        cache.put(cache.key("vanish", {"i": 99}), b"z" * 120)
        assert cache.lookup(cache.key("vanish", {"i": 99}))[0]


class TestCachedReplicateProgress:
    def test_cache_hit_still_streams_replication_events(
        self, tmp_path, amba, amba_caps
    ):
        events = []
        context = ExecutionContext.create(
            cache_dir=tmp_path,
            progress=lambda kind, key: events.append((kind, key)),
        )
        context.replicate(amba, amba_caps, replications=2, duration=150.0)
        first = list(events)
        events.clear()
        context.replicate(amba, amba_caps, replications=2, duration=150.0)
        # The second batch is a cache hit; observers still see one
        # event per replication (as sweep cache hits do), not silence.
        assert context.cache.hits == 1
        assert events == first == [("replication", 0), ("replication", 1)]
