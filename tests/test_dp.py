"""Tests for repro.core.dp — DP solvers and LP cross-checks."""

import numpy as np
import pytest

from repro.core.bus_model import BusClient, build_joint_bus_ctmdp
from repro.core.ctmdp import CTMDP
from repro.core.dp import policy_iteration, relative_value_iteration
from repro.core.lp import AverageCostLP


def make_switch_mdp(cost_fast=2.0):
    m = CTMDP()
    m.add_action("lo", "slow", [("hi", 1.0)], cost_rate=0.0)
    m.add_action("lo", "fast", [("hi", 5.0)], cost_rate=cost_fast)
    m.add_action("hi", "drain", [("lo", 3.0)], cost_rate=1.0)
    return m


class TestRelativeValueIteration:
    def test_picks_cheap_action(self):
        m = make_switch_mdp(cost_fast=100.0)
        solution = relative_value_iteration(m)
        assert solution.policy.action_probabilities("lo") == {"slow": 1.0}

    def test_cost_matches_policy_evaluation(self):
        m = make_switch_mdp()
        solution = relative_value_iteration(m)
        assert solution.average_cost_rate == pytest.approx(
            solution.policy.average_cost_rate(), abs=1e-7
        )

    def test_bias_normalised(self):
        m = make_switch_mdp()
        solution = relative_value_iteration(m)
        assert solution.bias[0] == pytest.approx(0.0)

    def test_matches_lp_on_bus_model(self):
        clients = [
            BusClient("a", 1.0, 2.0, 2, loss_weight=5.0),
            BusClient("b", 0.7, 1.5, 2, loss_weight=1.0),
        ]
        model = build_joint_bus_ctmdp(clients)
        lp = AverageCostLP(model).solve()
        vi = relative_value_iteration(model, tol=1e-11)
        assert vi.average_cost_rate == pytest.approx(
            lp.objective, abs=1e-6
        )


class TestPolicyIteration:
    def test_picks_cheap_action(self):
        m = make_switch_mdp(cost_fast=100.0)
        solution = policy_iteration(m)
        assert solution.policy.action_probabilities("lo") == {"slow": 1.0}

    def test_matches_value_iteration(self):
        m = make_switch_mdp()
        vi = relative_value_iteration(m)
        pi = policy_iteration(m)
        assert pi.average_cost_rate == pytest.approx(
            vi.average_cost_rate, abs=1e-7
        )

    def test_matches_lp_on_bus_model(self):
        clients = [
            BusClient("a", 1.2, 2.0, 2, loss_weight=3.0),
            BusClient("b", 0.5, 1.0, 3, loss_weight=1.0),
        ]
        model = build_joint_bus_ctmdp(clients)
        lp = AverageCostLP(model).solve()
        pi = policy_iteration(model)
        assert pi.average_cost_rate == pytest.approx(
            lp.objective, abs=1e-7
        )

    def test_terminates_quickly(self):
        clients = [
            BusClient("a", 1.0, 2.0, 3),
            BusClient("b", 1.0, 2.0, 3),
        ]
        model = build_joint_bus_ctmdp(clients)
        solution = policy_iteration(model)
        assert solution.iterations < 50


class TestTriSolverAgreement:
    """LP, VI and PI must agree on random small bus instances."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        clients = [
            BusClient(
                f"c{i}",
                arrival_rate=float(rng.uniform(0.3, 2.0)),
                service_rate=float(rng.uniform(1.0, 3.0)),
                capacity=int(rng.integers(1, 3)),
                loss_weight=float(rng.uniform(0.5, 4.0)),
            )
            for i in range(2)
        ]
        model = build_joint_bus_ctmdp(clients)
        lp = AverageCostLP(model).solve().objective
        vi = relative_value_iteration(model, tol=1e-11).average_cost_rate
        pi = policy_iteration(model).average_cost_rate
        assert vi == pytest.approx(lp, abs=1e-6)
        assert pi == pytest.approx(lp, abs=1e-6)
