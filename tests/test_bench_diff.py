"""Tests for the CI bench-diff tripwire (benchmarks/diff_bench.py)."""

import json

import pytest

from benchmarks.diff_bench import find_regressions, main, throughput_of


def _bench(name, mean=None, eps=None, rps=None):
    entry = {"fullname": name, "stats": {}, "extra_info": {}}
    if mean is not None:
        entry["stats"]["mean"] = mean
    if eps is not None:
        entry["extra_info"]["events_per_second"] = eps
    if rps is not None:
        entry["extra_info"]["replications_per_second"] = rps
    return entry


def _report(*benches):
    return {"benchmarks": list(benches)}


class TestThroughputOf:
    def test_prefers_events_per_second(self):
        assert throughput_of(_bench("a", mean=2.0, eps=1000)) == (
            "events_per_second", 1000.0,
        )

    def test_prefers_replications_per_second_over_both(self):
        # The mega-batch replication benches report both rates; the
        # acceptance metric (replications/s) wins.
        assert throughput_of(
            _bench("a", mean=2.0, eps=1000, rps=7.5)
        ) == ("replications_per_second", 7.5)

    def test_falls_back_to_reciprocal_mean(self):
        metric, value = throughput_of(_bench("a", mean=0.5))
        assert metric == "1/mean"
        assert value == pytest.approx(2.0)

    def test_malformed_entry_is_none(self):
        assert throughput_of({"fullname": "a"}) is None
        assert throughput_of(_bench("a", mean=0.0)) is None


class TestFindRegressions:
    def test_flags_events_per_second_drop(self):
        prev = _report(_bench("sim", eps=1000, mean=1.0))
        curr = _report(_bench("sim", eps=800, mean=1.0))
        found = find_regressions(prev, curr, threshold=0.15)
        assert [r.name for r in found] == ["sim"]
        assert found[0].metric == "events_per_second"
        assert found[0].drop == pytest.approx(0.2)
        assert "::warning" in found[0].annotation()

    def test_flags_replications_per_second_drop(self):
        name = "bench_sim_throughput.py::test_replication_throughput[megabatch-32]"
        prev = _report(_bench(name, eps=900_000, rps=10.0, mean=3.2))
        curr = _report(_bench(name, eps=900_000, rps=6.0, mean=3.2))
        found = find_regressions(prev, curr, threshold=0.15)
        assert [r.name for r in found] == [name]
        assert found[0].metric == "replications_per_second"

    def test_within_threshold_is_quiet(self):
        prev = _report(_bench("sim", eps=1000))
        curr = _report(_bench("sim", eps=900))
        assert find_regressions(prev, curr, threshold=0.15) == []

    def test_flags_wall_time_regression(self):
        prev = _report(_bench("sizing", mean=1.0))
        curr = _report(_bench("sizing", mean=1.5))
        found = find_regressions(prev, curr, threshold=0.15)
        assert [r.name for r in found] == ["sizing"]
        assert found[0].metric == "1/mean"

    def test_improvement_is_quiet(self):
        prev = _report(_bench("sim", eps=1000))
        curr = _report(_bench("sim", eps=2000))
        assert find_regressions(prev, curr, threshold=0.15) == []

    def test_added_and_removed_benches_skipped(self):
        prev = _report(_bench("old", mean=1.0))
        curr = _report(_bench("new", mean=10.0))
        assert find_regressions(prev, curr, threshold=0.15) == []

    def test_metric_mismatch_skipped(self):
        # A bench that gained events/s reporting cannot be compared to
        # its wall-time-only past.
        prev = _report(_bench("sim", mean=1.0))
        curr = _report(_bench("sim", mean=5.0, eps=100))
        assert find_regressions(prev, curr, threshold=0.15) == []

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            find_regressions(_report(), _report(), threshold=0.0)

    def test_obs_overhead_bench_is_covered(self):
        # bench_obs_overhead reports events_per_second per mode, so a
        # disabled-path slowdown trips the diff like any throughput
        # bench — parametrized modes are distinct fullnames.
        name = "bench_obs_overhead.py::test_bench_obs_overhead[off]"
        prev = _report(_bench(name, eps=20_000_000, mean=1.0))
        curr = _report(_bench(name, eps=10_000_000, mean=1.0))
        found = find_regressions(prev, curr, threshold=0.15)
        assert [r.name for r in found] == [name]
        assert found[0].metric == "events_per_second"


class TestMain:
    def _write(self, path, report):
        path.write_text(json.dumps(report))
        return str(path)

    def test_warning_only_by_default(self, tmp_path, capsys):
        prev = self._write(
            tmp_path / "prev.json", _report(_bench("sim", eps=1000))
        )
        curr = self._write(
            tmp_path / "curr.json", _report(_bench("sim", eps=100))
        )
        assert main([prev, curr]) == 0
        out = capsys.readouterr().out
        assert "::warning" in out
        assert "1 regression(s)" in out

    def test_strict_exits_nonzero(self, tmp_path, capsys):
        prev = self._write(
            tmp_path / "prev.json", _report(_bench("sim", eps=1000))
        )
        curr = self._write(
            tmp_path / "curr.json", _report(_bench("sim", eps=100))
        )
        assert main([prev, curr, "--strict"]) == 1

    def test_corrupt_baseline_skips_instead_of_crashing(
        self, tmp_path, capsys
    ):
        prev = tmp_path / "prev.json"
        prev.write_text('{"benchmarks": [truncated')
        curr = self._write(
            tmp_path / "curr.json", _report(_bench("sim", eps=1000))
        )
        assert main([str(prev), curr, "--strict"]) == 0
        assert "skipping diff" in capsys.readouterr().out
        assert main([str(tmp_path / "missing.json"), curr]) == 0
        assert "skipping diff" in capsys.readouterr().out

    def test_clean_diff(self, tmp_path, capsys):
        prev = self._write(
            tmp_path / "prev.json", _report(_bench("sim", eps=1000))
        )
        curr = self._write(
            tmp_path / "curr.json", _report(_bench("sim", eps=1001))
        )
        assert main([prev, curr, "--strict"]) == 0
        out = capsys.readouterr().out
        assert "::warning" not in out
        assert "0 regression(s)" in out
