"""Tests for repro.cli."""

import pytest

from repro.arch.dsl import serialize_topology
from repro.arch.templates import amba_like
from repro.cli import build_parser, main


@pytest.fixture()
def arch_file(tmp_path):
    path = tmp_path / "amba.soc"
    path.write_text(serialize_topology(amba_like()))
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_size_file_requires_budget(self, arch_file, capsys):
        # --budget is only optional with --scenario (the scenario's
        # declared default applies); architecture files must pass one.
        assert main(["size", arch_file]) == 2
        assert "--budget" in capsys.readouterr().err

    def test_policy_choices(self):
        args = build_parser().parse_args(
            ["simulate", "a.soc", "--budget", "8", "--policy", "uniform"]
        )
        assert args.policy == "uniform"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "a.soc", "--budget", "8", "--policy", "zzz"]
            )


class TestCommands:
    def test_inspect(self, arch_file, capsys):
        assert main(["inspect", arch_file]) == 0
        out = capsys.readouterr().out
        assert "clusters:" in out
        assert "cpu" in out

    def test_size(self, arch_file, capsys):
        assert main(["size", arch_file, "--budget", "14"]) == 0
        out = capsys.readouterr().out
        assert "# allocation" in out
        assert "expected loss rate" in out
        sizes = [
            int(line.split()[1])
            for line in out.splitlines()
            if line and not line.startswith("#")
        ]
        assert sum(sizes) == 14

    def test_simulate(self, arch_file, capsys):
        code = main([
            "simulate", arch_file, "--budget", "12",
            "--policy", "proportional", "--duration", "300",
            "--reps", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean total loss" in out

    def test_missing_file(self, capsys):
        assert main(["inspect", "/nonexistent/arch.soc"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_architecture(self, tmp_path, capsys):
        bad = tmp_path / "bad.soc"
        bad.write_text("soc x\nbogus\n")
        assert main(["inspect", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_infeasible_budget(self, arch_file, capsys):
        assert main(["size", arch_file, "--budget", "1"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRuntimeFlags:
    def test_flags_parse(self):
        args = build_parser().parse_args([
            "table1", "--jobs", "4", "--cache-dir", "/tmp/c",
            "--no-warm-start",
        ])
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_warm_start is True

    def test_simulate_lacks_warm_start_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "a.soc", "--budget", "8", "--no-warm-start"]
            )

    def test_simulate_pooled_and_cached(self, arch_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = [
            "simulate", arch_file, "--budget", "12",
            "--policy", "uniform", "--duration", "200", "--reps", "2",
            "--jobs", "2", "--cache-dir", cache_dir,
        ]
        assert main(argv) == 0
        pooled = capsys.readouterr().out
        # Serial, uncached run must report the same statistics.
        assert main([
            "simulate", arch_file, "--budget", "12",
            "--policy", "uniform", "--duration", "200", "--reps", "2",
        ]) == 0
        assert capsys.readouterr().out == pooled
        # Third run hits the populated cache and still agrees.
        assert main(argv) == 0
        assert capsys.readouterr().out == pooled

    def test_simulate_spawn_seed_scheme(self, arch_file, capsys):
        assert main([
            "simulate", arch_file, "--budget", "12",
            "--policy", "uniform", "--duration", "200", "--reps", "2",
            "--seed-scheme", "spawn",
        ]) == 0
        assert "mean total loss" in capsys.readouterr().out

    def test_sim_backend_flag(self, arch_file, capsys):
        base = [
            "simulate", arch_file, "--budget", "12",
            "--policy", "uniform", "--duration", "200", "--reps", "2",
        ]
        # The default is the batched array lane; --sim-backend heap is
        # the reference-engine escape hatch.  The default longest-queue
        # arbiter is deterministic, so the two must report
        # byte-identical statistics.
        assert main(base) == 0
        batched_out = capsys.readouterr().out
        assert main(base + ["--sim-backend", "heap"]) == 0
        assert capsys.readouterr().out == batched_out

    def test_sim_backend_choices_enforced(self, arch_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "simulate", arch_file, "--budget", "8",
                "--sim-backend", "quantum",
            ])

    def test_cache_max_mb_flag(self, arch_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = [
            "simulate", arch_file, "--budget", "12",
            "--policy", "uniform", "--duration", "200", "--reps", "2",
            "--cache-dir", cache_dir, "--cache-max-mb", "64",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "mean total loss" in out
        # The bound without a directory is a config error, not a crash.
        assert main([
            "simulate", arch_file, "--budget", "12",
            "--policy", "uniform", "--duration", "200", "--reps", "2",
            "--cache-max-mb", "64",
        ]) == 2
        assert "cache" in capsys.readouterr().err


class TestScenariosListing:
    def test_families_show_grammar_and_resolvable_example(self, capsys):
        from repro import scenarios

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        # Every parametric family states its parameter grammar and one
        # concrete member name that actually resolves.
        assert out.count("parameters: ") >= len(scenarios.families())
        for family in scenarios.families():
            assert family.grammar and family.grammar in out
            assert family.example
            spec = scenarios.get(family.example)
            assert spec.name == family.example  # canonical spelling
            assert f"example: {spec.name}" in out


class TestProgressFlag:
    def test_simulate_progress_lines_on_stderr(self, arch_file, capsys):
        assert main([
            "simulate", arch_file, "--budget", "12",
            "--policy", "uniform", "--duration", "200", "--reps", "2",
            "--progress",
        ]) == 0
        err = capsys.readouterr().err
        assert "progress: replication 0 done" in err
        assert "progress: replication 1 done" in err

    def test_table1_accepts_progress_and_dist_flags(self):
        args = build_parser().parse_args(
            ["table1", "--progress", "--dist", "broker:7070"]
        )
        assert args.progress is True
        assert args.dist == "broker:7070"


class TestDistCli:
    def test_dist_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dist"])

    def test_serve_worker_run_flags_parse(self):
        args = build_parser().parse_args(
            ["dist", "serve", "--port", "0", "--lease-timeout", "2.5"]
        )
        assert args.port == 0 and args.lease_timeout == 2.5
        args = build_parser().parse_args([
            "dist", "worker", "host:7070",
            "--cache-dir", "/tmp/c", "--prefetch", "3", "--max-idle", "5",
        ])
        assert args.address == "host:7070"
        assert args.prefetch == 3 and args.max_idle == 5.0
        args = build_parser().parse_args([
            "dist", "run", "--scenario", "amba", "--scenario", "fig1",
            "--budgets", "8,12", "--reps", "2", "--verify-local",
        ])
        assert args.scenario == ["amba", "fig1"]
        assert args.budgets == "8,12" and args.verify_local is True

    def test_worker_cache_bound_requires_dir(self, capsys):
        assert main([
            "dist", "worker", "127.0.0.1:1", "--cache-max-mb", "8",
        ]) == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_run_local_matrix_with_artifacts(self, tmp_path, capsys):
        # Without --dist the fleet driver runs the same job matrix on
        # the local path; --verify-local re-runs it serially and
        # asserts the bitwise-identity contract end to end.
        out_json = tmp_path / "fleet.json"
        assert main([
            "dist", "run", "--scenario", "single-bus-4",
            "--budgets", "8", "--reps", "2", "--duration", "100",
            "--jobs", "2", "--verify-local", "--json", str(out_json),
        ]) == 0
        captured = capsys.readouterr()
        # Status lines go to stderr (repro.obs.log); the table to stdout.
        assert "bitwise-identical" in captured.err
        assert "single-bus-4" in captured.out
        out = captured.out
        import json

        cells = json.loads(out_json.read_text())
        assert cells[0]["scenario"] == "single-bus-4"
        assert cells[0]["summary"]["__type__"] == "ReplicationSummary"

    def test_run_unknown_scenario_is_an_error(self, capsys):
        assert main([
            "dist", "run", "--scenario", "no-such", "--reps", "1",
        ]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestDistCliValidation:
    def test_malformed_budgets_is_a_clean_error(self, capsys):
        assert main([
            "dist", "run", "--scenario", "single-bus-4",
            "--budgets", "8x,12", "--reps", "1",
        ]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "--budgets" in err

    def test_authkey_runtime_flag_parses(self):
        args = build_parser().parse_args([
            "simulate", "a.soc", "--budget", "8",
            "--dist", "h:1", "--authkey", "secret",
        ])
        assert args.authkey == "secret"
