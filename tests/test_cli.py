"""Tests for repro.cli."""

import pytest

from repro.arch.dsl import serialize_topology
from repro.arch.templates import amba_like
from repro.cli import build_parser, main


@pytest.fixture()
def arch_file(tmp_path):
    path = tmp_path / "amba.soc"
    path.write_text(serialize_topology(amba_like()))
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_size_file_requires_budget(self, arch_file, capsys):
        # --budget is only optional with --scenario (the scenario's
        # declared default applies); architecture files must pass one.
        assert main(["size", arch_file]) == 2
        assert "--budget" in capsys.readouterr().err

    def test_policy_choices(self):
        args = build_parser().parse_args(
            ["simulate", "a.soc", "--budget", "8", "--policy", "uniform"]
        )
        assert args.policy == "uniform"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "a.soc", "--budget", "8", "--policy", "zzz"]
            )


class TestCommands:
    def test_inspect(self, arch_file, capsys):
        assert main(["inspect", arch_file]) == 0
        out = capsys.readouterr().out
        assert "clusters:" in out
        assert "cpu" in out

    def test_size(self, arch_file, capsys):
        assert main(["size", arch_file, "--budget", "14"]) == 0
        out = capsys.readouterr().out
        assert "# allocation" in out
        assert "expected loss rate" in out
        sizes = [
            int(line.split()[1])
            for line in out.splitlines()
            if line and not line.startswith("#")
        ]
        assert sum(sizes) == 14

    def test_simulate(self, arch_file, capsys):
        code = main([
            "simulate", arch_file, "--budget", "12",
            "--policy", "proportional", "--duration", "300",
            "--reps", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "mean total loss" in out

    def test_missing_file(self, capsys):
        assert main(["inspect", "/nonexistent/arch.soc"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_architecture(self, tmp_path, capsys):
        bad = tmp_path / "bad.soc"
        bad.write_text("soc x\nbogus\n")
        assert main(["inspect", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_infeasible_budget(self, arch_file, capsys):
        assert main(["size", arch_file, "--budget", "1"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRuntimeFlags:
    def test_flags_parse(self):
        args = build_parser().parse_args([
            "table1", "--jobs", "4", "--cache-dir", "/tmp/c",
            "--no-warm-start",
        ])
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_warm_start is True

    def test_simulate_lacks_warm_start_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "a.soc", "--budget", "8", "--no-warm-start"]
            )

    def test_simulate_pooled_and_cached(self, arch_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = [
            "simulate", arch_file, "--budget", "12",
            "--policy", "uniform", "--duration", "200", "--reps", "2",
            "--jobs", "2", "--cache-dir", cache_dir,
        ]
        assert main(argv) == 0
        pooled = capsys.readouterr().out
        # Serial, uncached run must report the same statistics.
        assert main([
            "simulate", arch_file, "--budget", "12",
            "--policy", "uniform", "--duration", "200", "--reps", "2",
        ]) == 0
        assert capsys.readouterr().out == pooled
        # Third run hits the populated cache and still agrees.
        assert main(argv) == 0
        assert capsys.readouterr().out == pooled

    def test_simulate_spawn_seed_scheme(self, arch_file, capsys):
        assert main([
            "simulate", arch_file, "--budget", "12",
            "--policy", "uniform", "--duration", "200", "--reps", "2",
            "--seed-scheme", "spawn",
        ]) == 0
        assert "mean total loss" in capsys.readouterr().out

    def test_sim_backend_flag(self, arch_file, capsys):
        base = [
            "simulate", arch_file, "--budget", "12",
            "--policy", "uniform", "--duration", "200", "--reps", "2",
        ]
        # The default is the batched array lane; --sim-backend heap is
        # the reference-engine escape hatch.  The default longest-queue
        # arbiter is deterministic, so the two must report
        # byte-identical statistics.
        assert main(base) == 0
        batched_out = capsys.readouterr().out
        assert main(base + ["--sim-backend", "heap"]) == 0
        assert capsys.readouterr().out == batched_out

    def test_sim_backend_choices_enforced(self, arch_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "simulate", arch_file, "--budget", "8",
                "--sim-backend", "quantum",
            ])

    def test_cache_max_mb_flag(self, arch_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = [
            "simulate", arch_file, "--budget", "12",
            "--policy", "uniform", "--duration", "200", "--reps", "2",
            "--cache-dir", cache_dir, "--cache-max-mb", "64",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "mean total loss" in out
        # The bound without a directory is a config error, not a crash.
        assert main([
            "simulate", arch_file, "--budget", "12",
            "--policy", "uniform", "--duration", "200", "--reps", "2",
            "--cache-max-mb", "64",
        ]) == 2
        assert "cache" in capsys.readouterr().err
