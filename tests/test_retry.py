"""Tests for repro.retry — the unified backoff policy.

Covers the seeded, capped exponential schedule (deterministic per
seed, so chaos runs are reproducible), the transient-vs-fatal
classification the distributed runtime relies on, and the injectable
sleep that keeps every one of these tests instant.
"""

import pytest

from repro.errors import (
    BrokerUnavailableError,
    CacheCorruptionError,
    ReproError,
    TransientError,
    is_transient,
)
from repro.retry import DEFAULT_RETRY, RetryPolicy


class TestSchedule:
    def test_deterministic_per_seed(self):
        a = RetryPolicy(attempts=5, seed=7).delays()
        b = RetryPolicy(attempts=5, seed=7).delays()
        c = RetryPolicy(attempts=5, seed=8).delays()
        assert a == b
        assert a != c

    def test_exponential_then_capped(self):
        policy = RetryPolicy(
            attempts=6, base_delay=0.1, max_delay=0.4, jitter=0.0
        )
        assert policy.delays() == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_jitter_bounded_fraction(self):
        policy = RetryPolicy(
            attempts=4, base_delay=1.0, max_delay=1.0, jitter=0.5
        )
        for delay in policy.delays():
            assert 1.0 <= delay < 1.5

    def test_single_attempt_never_sleeps(self):
        assert RetryPolicy(attempts=1).delays() == []

    def test_validation(self):
        with pytest.raises(ReproError):
            RetryPolicy(attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=-0.1)


class TestCall:
    def _policy(self):
        return RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.02)

    def test_success_needs_no_sleep(self):
        slept = []
        result = self._policy().call(
            lambda: 42, sleep=slept.append
        )
        assert result == 42
        assert slept == []

    def test_transient_retried_until_success(self):
        policy = self._policy()
        slept, attempts = [], []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionResetError("blip")
            return "ok"

        assert policy.call(flaky, sleep=slept.append) == "ok"
        assert len(attempts) == 3
        assert slept == policy.delays()

    def test_fatal_raises_immediately(self):
        calls = []

        def bad():
            calls.append(1)
            raise ReproError("configuration is wrong")

        with pytest.raises(ReproError):
            self._policy().call(bad, sleep=lambda _: None)
        assert len(calls) == 1

    def test_exhausted_transient_raises_last_error(self):
        def always():
            raise ConnectionRefusedError("down for good")

        with pytest.raises(ConnectionRefusedError):
            self._policy().call(always, sleep=lambda _: None)

    def test_on_retry_observes_each_retry(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise TimeoutError("slow")
            return True

        assert self._policy().call(
            flaky,
            on_retry=lambda attempt, exc: seen.append(
                (attempt, type(exc).__name__)
            ),
            sleep=lambda _: None,
        )
        assert seen == [(1, "TimeoutError"), (2, "TimeoutError")]

    def test_custom_classifier_wins(self):
        calls = []

        def bad():
            calls.append(1)
            raise ValueError("retry me anyway")

        with pytest.raises(ValueError):
            self._policy().call(
                bad,
                classify=lambda exc: isinstance(exc, ValueError),
                sleep=lambda _: None,
            )
        assert len(calls) == 3  # retried despite being fatal by default

    def test_default_policy_is_bounded(self):
        assert DEFAULT_RETRY.attempts >= 2
        assert sum(DEFAULT_RETRY.delays()) < 10.0


class TestTransientTaxonomy:
    def test_transport_errors_are_transient(self):
        for exc in (
            ConnectionResetError("r"),
            ConnectionRefusedError("r"),
            BrokenPipeError("p"),
            EOFError(),
            TimeoutError(),
            OSError("io"),
            TransientError("t"),
            BrokerUnavailableError("b"),
        ):
            assert is_transient(exc), exc

    def test_domain_and_auth_errors_are_fatal(self):
        from multiprocessing import AuthenticationError

        for exc in (
            ReproError("bad config"),
            CacheCorruptionError("bad bytes"),
            AuthenticationError("wrong key"),
            ValueError("logic bug"),
            KeyError("logic bug"),
        ):
            assert not is_transient(exc), exc

    def test_broker_unavailable_is_a_repro_error_too(self):
        # Callers catching the library base class still see broker
        # loss; callers classifying retries see it as transient.
        assert issubclass(BrokerUnavailableError, ReproError)
        assert issubclass(BrokerUnavailableError, TransientError)
