"""Equivalence tests for the compiled kernel layer (repro.core.compiled).

The compiled path must be a pure speedup: sparse uniformization,
vectorised DP, the lattice-built joint bus model and the
refreshed-coefficient BlockProgram all have dict-based reference
implementations they are held against here, on randomized small CTMDPs
and on the paper's testbeds.
"""

import numpy as np
import pytest
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.arch.netproc import network_processor
from repro.arch.templates import amba_like, paper_figure1
from repro.core.bus_model import (
    BUS_TIME,
    SPACE,
    BusClient,
    build_client_chain_ctmdp,
    build_joint_bus_ctmdp,
    joint_client_marginals,
)
from repro.core.compiled import (
    CompiledBusLattice,
    CompiledClientChain,
    CompiledCTMDP,
    solve_sparse_lp,
)
from repro.core.ctmdp import CTMDP, Transition
from repro.core.dp import policy_iteration, relative_value_iteration
from repro.core.lp import AverageCostLP, BlockLP
from repro.core.sizing import BufferSizer
from repro.errors import ModelError


def random_clients(seed, n=2, max_cap=3):
    rng = np.random.default_rng(seed)
    return [
        BusClient(
            f"c{i}",
            arrival_rate=float(rng.uniform(0.3, 2.0)),
            service_rate=float(rng.uniform(1.0, 3.0)),
            capacity=int(rng.integers(1, max_cap + 1)),
            loss_weight=float(rng.uniform(0.5, 4.0)),
        )
        for i in range(n)
    ]


class TestSparseUniformization:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_dense_on_random_bus_models(self, seed):
        model = build_joint_bus_ctmdp(random_clients(seed))
        p_dense, c_dense, pairs, rate_dense = model.uniformized()
        comp = model.compiled()
        p_sparse, c_sparse, rate_sparse = comp.uniformized_sparse()
        assert rate_sparse == pytest.approx(rate_dense)
        assert comp.pairs == pairs
        np.testing.assert_allclose(c_sparse, c_dense, atol=1e-15)
        np.testing.assert_allclose(
            p_sparse.toarray(), p_dense, atol=1e-12
        )

    def test_explicit_rate_respected(self):
        model = build_joint_bus_ctmdp(random_clients(0))
        p, c, rate = model.compiled().uniformized_sparse(rate=50.0)
        assert rate == 50.0
        np.testing.assert_allclose(
            np.asarray(p.sum(axis=1)).ravel(), 1.0, atol=1e-12
        )

    def test_small_rate_rejected(self):
        model = build_joint_bus_ctmdp(random_clients(0))
        with pytest.raises(ModelError, match="below max exit"):
            model.compiled().uniformized_sparse(rate=1e-6)


class TestRenormalizationGuard:
    """uniformized() must raise on inconsistent rate bookkeeping rather
    than silently renormalising it away."""

    def _model(self):
        m = CTMDP()
        m.add_action("lo", "slow", [("hi", 1.0)], cost_rate=0.0)
        m.add_action("hi", "drain", [("lo", 3.0)], cost_rate=1.0)
        return m

    def test_dense_raises_on_stale_exit_rates(self):
        m = self._model()
        # Simulate a bookkeeping bug: a transition appended behind the
        # cached exit rate's back.
        m._transitions[("lo", "slow")].append(Transition("hi", 1.0))
        with pytest.raises(ModelError, match=r"\('lo', 'slow'\)"):
            m.uniformized(rate=10.0)

    def test_sparse_raises_on_tampered_rates(self):
        m = self._model()
        comp = m.compiled()
        comp.t_rate[0] *= 2.0  # rate array out of sync with exit rates
        with pytest.raises(ModelError, match="sums to"):
            comp.uniformized_sparse(rate=10.0)

    def test_clean_models_renormalise_silently(self):
        p, _c, _pairs, _rate = self._model().uniformized()
        np.testing.assert_allclose(p.sum(axis=1), 1.0, atol=1e-12)


class TestVectorizedDP:
    @pytest.mark.parametrize("seed", range(6))
    def test_rvi_matches_reference(self, seed):
        model = build_joint_bus_ctmdp(random_clients(seed))
        fast = relative_value_iteration(model, tol=1e-11)
        ref = relative_value_iteration(model, tol=1e-11, use_compiled=False)
        assert fast.average_cost_rate == pytest.approx(
            ref.average_cost_rate, abs=1e-9
        )
        for s in model.states:
            assert fast.policy.action_probabilities(
                s
            ) == ref.policy.action_probabilities(s)
        np.testing.assert_allclose(fast.bias, ref.bias, atol=1e-7)

    @pytest.mark.parametrize("seed", range(6))
    def test_pi_matches_reference(self, seed):
        model = build_joint_bus_ctmdp(random_clients(seed))
        fast = policy_iteration(model)
        ref = policy_iteration(model, use_compiled=False)
        assert fast.average_cost_rate == pytest.approx(
            ref.average_cost_rate, abs=1e-9
        )
        assert fast.iterations == ref.iterations
        for s in model.states:
            assert fast.policy.action_probabilities(
                s
            ) == ref.policy.action_probabilities(s)


def joint_bus_model_in_lattice_order(clients):
    """build_joint_bus_ctmdp with states pre-registered in product order.

    The dict builder registers states in encounter order (targets first
    reached by a transition); the lattice enumerates the product order.
    Pre-registering aligns the two so structures can be compared entry
    for entry — the models are identical up to that relabelling.
    """
    import itertools

    from repro.core.ctmdp import CTMDP

    reference = build_joint_bus_ctmdp(clients)
    aligned = CTMDP()
    for occupancy in itertools.product(
        *(range(c.capacity + 1) for c in clients)
    ):
        aligned.add_state(tuple(occupancy))
    for state in aligned.states_ro:
        for action in reference.actions_ro(state):
            aligned.add_action(
                state,
                action,
                [
                    (t.target, t.rate)
                    for t in reference.transitions_ro(state, action)
                ],
                cost_rate=reference.cost_rate(state, action),
                constraint_rates={
                    name: reference.constraint_rate(name, state, action)
                    for name in reference.constraint_names
                },
            )
    aligned.validate()
    return aligned


class TestCompiledBusLattice:
    @pytest.mark.parametrize("seed", range(5))
    def test_structure_matches_dict_builder(self, seed):
        clients = random_clients(seed, n=3, max_cap=2)
        model = joint_bus_model_in_lattice_order(clients)
        comp = model.compiled()
        lattice = CompiledBusLattice(clients)
        assert lattice.n_states == comp.n_states
        assert lattice.n_pairs == comp.n_pairs
        assert lattice.pairs == comp.pairs
        # Balance equations must be *exactly* equal — the LP consumes
        # them, and the compiled sizing path promises bitwise-identical
        # coefficients.
        shape = (comp.n_states, comp.n_pairs)
        a_ref = csr_matrix((comp.balance_coo()[2], comp.balance_coo()[:2]), shape=shape)
        a_fast = csr_matrix(
            (lattice.balance_coo()[2], lattice.balance_coo()[:2]), shape=shape
        )
        assert (a_ref != a_fast).nnz == 0
        np.testing.assert_array_equal(lattice.cost_rates, comp.cost_rates)
        np.testing.assert_array_equal(lattice.exit_rates, comp.exit_rates)
        np.testing.assert_array_equal(
            lattice.constraint_vector(SPACE), comp.constraint_vector(SPACE)
        )
        for c in clients:
            np.testing.assert_array_equal(
                lattice.constraint_vector(f"{SPACE}:{c.name}"),
                comp.constraint_vector(f"{SPACE}:{c.name}"),
            )

    def test_refresh_matches_rebuild(self):
        clients = random_clients(3, n=2)
        lattice = CompiledBusLattice(clients)
        new_rates = {"c0": 0.9, "c1": 1.7}
        assert lattice.refresh(new_rates)
        rebuilt = joint_bus_model_in_lattice_order(
            [c.with_arrival_rate(new_rates[c.name]) for c in clients]
        ).compiled()
        shape = (rebuilt.n_states, rebuilt.n_pairs)
        a_ref = csr_matrix(
            (rebuilt.balance_coo()[2], rebuilt.balance_coo()[:2]), shape=shape
        )
        a_fast = csr_matrix(
            (lattice.balance_coo()[2], lattice.balance_coo()[:2]), shape=shape
        )
        assert (a_ref != a_fast).nnz == 0
        np.testing.assert_array_equal(lattice.cost_rates, rebuilt.cost_rates)

    def test_refresh_reports_pattern_change(self):
        clients = random_clients(4, n=2)
        lattice = CompiledBusLattice(clients)
        assert not lattice.refresh({"c0": 0.0})

    def test_marginals_match_dict_extraction(self):
        clients = random_clients(5, n=2)
        model = build_joint_bus_ctmdp(clients)
        solution = AverageCostLP(model).solve()
        occ = solution.occupations[0]
        ref = joint_client_marginals(clients, occ)
        lattice = CompiledBusLattice(clients)
        x = np.array([occ[pair] for pair in lattice.pairs])
        fast = lattice.client_marginals(x)
        for name in ref:
            np.testing.assert_allclose(fast[name], ref[name], atol=1e-12)


def _reference_lp_objective(model, shared_space_bound=None):
    """Dict-walking LP assembly, as the pre-compiled BlockLP did it."""
    pairs = model.state_action_pairs()
    n = model.num_states
    index = {s: i for i, s in enumerate(model.states)}
    cost = np.array([model.cost_rate(s, a) for s, a in pairs])
    a_eq = np.zeros((n + 1, len(pairs)))
    for k, (s, a) in enumerate(pairs):
        exit_rate = 0.0
        for t in model.transitions(s, a):
            a_eq[index[t.target], k] += t.rate
            exit_rate += t.rate
        a_eq[index[s], k] -= exit_rate
        a_eq[n, k] = 1.0
    b_eq = np.zeros(n + 1)
    b_eq[n] = 1.0
    a_ub = b_ub = None
    if shared_space_bound is not None:
        row = np.array(
            [model.constraint_rate(SPACE, s, a) for s, a in pairs]
        )
        a_ub, b_ub = row[np.newaxis, :], [shared_space_bound]
    result = linprog(
        cost, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
        bounds=(0, None), method="highs",
    )
    assert result.success
    return float(result.fun)


class TestCompiledBlockLP:
    @pytest.mark.parametrize("seed", range(4))
    def test_objective_matches_reference_assembly(self, seed):
        model = build_joint_bus_ctmdp(random_clients(seed))
        compiled = AverageCostLP(model).solve().objective
        reference = _reference_lp_objective(model)
        assert compiled == pytest.approx(reference, abs=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_constrained_objective_matches_reference(self, seed):
        client = random_clients(seed, n=1)[0]
        model = build_client_chain_ctmdp(client, holding_cost_rate=1e-4)
        # Bound at the unconstrained optimum's occupancy: guaranteed
        # feasible, and both paths must agree on the constrained LP.
        base = AverageCostLP(model).solve()
        occupancy = sum(
            q * mass for (q, _a), mass in base.occupations[0].items()
        )
        bound = max(occupancy, 1e-6)
        block = BlockLP()
        block.add_block(model)
        block.add_shared_budget("budget", SPACE, bound=bound)
        compiled = block.solve().objective
        reference = _reference_lp_objective(model, shared_space_bound=bound)
        assert compiled == pytest.approx(reference, abs=1e-9)

    def test_warm_started_resolve_matches_cold(self):
        model = build_joint_bus_ctmdp(random_clients(7))
        block = BlockLP()
        block.add_block(model)
        program = block.compile()
        cold, _ = program.solve(warm=False)
        warm, _ = program.solve(warm=True)
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)


class TestCompiledSizerEquivalence:
    @pytest.mark.parametrize(
        "topology_factory,budget",
        [(paper_figure1, 24), (amba_like, 16)],
    )
    def test_allocations_match_reference_path(self, topology_factory, budget):
        fast = BufferSizer(total_budget=budget).size(topology_factory())
        ref = BufferSizer(
            total_budget=budget, use_compiled=False
        ).size(topology_factory())
        assert fast.allocation.sizes == ref.allocation.sizes
        assert fast.expected_loss_rate == pytest.approx(
            ref.expected_loss_rate, abs=1e-6
        )

    def test_chain_fallback_allocations_match(self):
        kwargs = dict(total_budget=40, capacity_cap=5, joint_state_limit=1)
        fast = BufferSizer(**kwargs).size(amba_like())
        ref = BufferSizer(use_compiled=False, **kwargs).size(amba_like())
        assert fast.allocation.sizes == ref.allocation.sizes


def chain_holding(client):
    """The sizing pipeline's degeneracy-breaking holding cost."""
    return 1e-5 * (client.loss_weight * client.arrival_rate + 1.0)


class TestCompiledClientChain:
    """The refreshable chain block must be bitwise-equal to freezing
    build_client_chain_ctmdp, and refreshing must equal rebuilding."""

    def _assert_matches_reference(self, chain, client, holding):
        ref = build_client_chain_ctmdp(
            client, holding_cost_rate=holding
        ).compiled()
        assert chain.n_states == ref.n_states
        assert chain.n_pairs == ref.n_pairs
        assert chain.pairs == ref.pairs
        for attr in (
            "pair_state",
            "t_pair",
            "t_target",
            "t_rate",
            "exit_rates",
            "cost_rates",
        ):
            np.testing.assert_array_equal(
                getattr(chain, attr), getattr(ref, attr), err_msg=attr
            )
        for name in (SPACE, f"{SPACE}:{client.name}", BUS_TIME, "other"):
            np.testing.assert_array_equal(
                chain.constraint_vector(name),
                ref.constraint_vector(name),
                err_msg=name,
            )
        for got, want in zip(chain.balance_coo(), ref.balance_coo()):
            np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("seed", range(6))
    def test_structure_matches_dict_builder(self, seed):
        (client,) = random_clients(seed, n=1, max_cap=8)
        holding = chain_holding(client)
        chain = CompiledClientChain(client, holding_cost_rate=holding)
        self._assert_matches_reference(chain, client, holding)

    def test_zero_arrival_rate_client(self):
        client = BusClient(
            "idlehost", arrival_rate=0.0, service_rate=2.0, capacity=4
        )
        chain = CompiledClientChain(client, holding_cost_rate=1e-5)
        self._assert_matches_reference(chain, client, 1e-5)

    @pytest.mark.parametrize("seed", range(6))
    def test_refresh_matches_rebuild(self, seed):
        (client,) = random_clients(seed, n=1, max_cap=6)
        chain = CompiledClientChain(
            client, holding_cost_rate=chain_holding(client)
        )
        rng = np.random.default_rng(seed + 100)
        for _step in range(3):
            updated = client.with_arrival_rate(float(rng.uniform(0.1, 3.0)))
            holding = chain_holding(updated)
            assert chain.refresh(updated.arrival_rate, holding)
            self._assert_matches_reference(chain, updated, holding)

    def test_refresh_reports_pattern_change(self):
        client = BusClient("c", arrival_rate=1.0, service_rate=2.0, capacity=3)
        chain = CompiledClientChain(client, holding_cost_rate=1e-5)
        assert not chain.refresh(0.0, 1e-5)
        # A rejected refresh leaves the chain untouched.
        self._assert_matches_reference(chain, client, 1e-5)

    def test_invalid_inputs_rejected(self):
        client = BusClient("c", arrival_rate=1.0, service_rate=2.0, capacity=3)
        with pytest.raises(ModelError):
            CompiledClientChain(client, holding_cost_rate=-1.0)
        chain = CompiledClientChain(client)
        with pytest.raises(ModelError):
            chain.refresh(1.0, -2.0)

    def test_sizing_builds_each_chain_once(self, monkeypatch):
        """The fixed point refreshes chain blocks instead of rebuilding.

        The ROADMAP acceptance: chain-path sizing must construct each
        per-client block exactly once however many bridge-rate
        iterations run, while producing the same allocation as the
        rebuild-everything reference path.
        """
        from repro.core import sizing as sizing_mod

        built = []

        class CountingChain(CompiledClientChain):
            def __init__(self, *args, **kwargs):
                built.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(
            sizing_mod, "CompiledClientChain", CountingChain
        )
        kwargs = dict(total_budget=24, joint_state_limit=2)
        fast = BufferSizer(**kwargs).size(paper_figure1())
        num_clients = len(fast.split_system.all_client_names())
        assert fast.fixed_point_iterations >= 2
        assert sum(built) == num_clients
        ref = BufferSizer(use_compiled=False, **kwargs).size(paper_figure1())
        assert fast.allocation.sizes == ref.allocation.sizes


class TestFixedSeedRegression:
    def test_netproc_budget160_allocation_unchanged(self):
        """The seed repo's allocation for the paper's testbed at the
        paper's budget — must never drift."""
        result = BufferSizer(total_budget=160).size(network_processor())
        assert result.allocation.sizes == {
            "br0@ctrl": 5, "br0@data0": 6,
            "br1@ctrl": 5, "br1@data1": 6,
            "br2@ctrl": 4, "br2@data2": 6,
            "br3@ctrl": 4, "br3@data3": 6,
            "p1": 10, "p2": 6, "p3": 7, "p4": 6, "p5": 9, "p6": 7,
            "p7": 6, "p8": 6, "p9": 7, "p10": 7, "p11": 6, "p12": 6,
            "p13": 8, "p14": 6, "p15": 7, "p16": 10, "p17": 4,
        }
        assert result.allocation.total == 160


class TestCachedAccessors:
    def test_exit_rate_cached_and_invalidated(self):
        m = CTMDP()
        m.add_action("a", "x", [("b", 2.0), ("c", 1.5)])
        m.add_action("b", "x", [("a", 1.0)])
        m.add_action("c", "x", [("a", 1.0)])
        assert m.exit_rate("a", "x") == pytest.approx(3.5)
        assert m.max_exit_rate() == pytest.approx(3.5)
        m.add_action("a", "y", [("b", 9.0)])
        assert m.exit_rate("a", "y") == pytest.approx(9.0)
        assert m.max_exit_rate() == pytest.approx(9.0)

    def test_compiled_view_cached_and_invalidated(self):
        m = CTMDP()
        m.add_action("a", "x", [("b", 1.0)])
        m.add_action("b", "x", [("a", 1.0)])
        first = m.compiled()
        assert m.compiled() is first
        m.add_action("b", "y", [("a", 2.0)])
        second = m.compiled()
        assert second is not first
        assert second.n_pairs == 3

    def test_ro_accessors_alias_internal_state(self):
        m = CTMDP()
        m.add_action("a", "x", [("b", 1.0)])
        m.add_action("b", "x", [("a", 1.0)])
        assert m.states_ro is m.states_ro
        assert m.actions_ro("a") is m.actions_ro("a")
        assert m.transitions_ro("a", "x") is m.transitions_ro("a", "x")
        assert m.state_action_pairs_ro() is m.state_action_pairs_ro()
        # The copying API still protects callers that mutate.
        m.states.append("zzz")
        assert "zzz" not in m.states_ro

    def test_ro_accessors_reject_unknown(self):
        m = CTMDP()
        m.add_action("a", "x", [("b", 1.0)])
        with pytest.raises(ModelError):
            m.actions_ro("zzz")
        with pytest.raises(ModelError):
            m.transitions_ro("a", "zzz")


class TestSolveSparseLPFallback:
    def test_backend_smoke(self):
        # min x0 + 2 x1 s.t. x0 + x1 = 1, x >= 0.
        from scipy.sparse import csc_matrix

        a_eq = csc_matrix(np.array([[1.0, 1.0]]))
        result = solve_sparse_lp(
            np.array([1.0, 2.0]), a_eq, np.array([1.0]), None, None
        )
        assert result.status == "optimal"
        assert result.objective == pytest.approx(1.0)
        np.testing.assert_allclose(result.x, [1.0, 0.0], atol=1e-9)

    def test_infeasible_detected(self):
        from scipy.sparse import csc_matrix

        a_eq = csc_matrix(np.array([[1.0, 1.0]]))
        a_ub = csc_matrix(np.array([[1.0, 1.0]]))
        result = solve_sparse_lp(
            np.array([1.0, 2.0]),
            a_eq,
            np.array([1.0]),
            a_ub,
            np.array([0.5]),
        )
        assert result.status == "infeasible"
