"""Tests for repro.policies."""

import pytest

from repro.arch.templates import amba_like, paper_figure1, single_bus
from repro.arch.topology import Topology
from repro.errors import PolicyError
from repro.policies.analytic import AnalyticGreedySizing
from repro.policies.base import largest_remainder_rounding, sizing_clients
from repro.policies.ctmdp_policy import CTMDPSizing
from repro.policies.proportional import ProportionalSizing
from repro.policies.timeout import calibrate_timeout_threshold
from repro.policies.uniform import UniformSizing


def asym_topology():
    topo = Topology("asym")
    topo.add_bus("x")
    topo.add_processor("hot", "x", service_rate=5.0)
    topo.add_processor("cold", "x", service_rate=5.0)
    topo.add_processor("sink", "x", service_rate=5.0)
    topo.add_poisson_flow("h", "hot", "sink", 3.0)
    topo.add_poisson_flow("c", "cold", "sink", 0.3)
    return topo


class TestSizingClients:
    def test_covers_processors_and_bridges(self):
        topo = paper_figure1()
        names = {c.name for c in sizing_clients(topo)}
        assert {"p1", "p2", "p3", "p4", "p5"} <= names
        assert any("@" in n for n in names)

    def test_rates_match_topology(self):
        topo = asym_topology()
        clients = {c.name: c for c in sizing_clients(topo)}
        assert clients["hot"].arrival_rate == pytest.approx(3.0)
        assert clients["cold"].arrival_rate == pytest.approx(0.3)
        assert clients["sink"].arrival_rate == pytest.approx(0.0)

    def test_competitors_counted(self):
        topo = asym_topology()
        clients = sizing_clients(topo)
        assert all(c.competitors == 3 for c in clients)


class TestLargestRemainder:
    def test_sums_to_budget(self):
        sizes = largest_remainder_rounding(
            {"a": 1.0, "b": 2.0, "c": 3.0}, 10
        )
        assert sum(sizes.values()) == 10

    def test_respects_shares(self):
        sizes = largest_remainder_rounding({"a": 9.0, "b": 1.0}, 12)
        assert sizes["a"] > sizes["b"]

    def test_zero_shares_spread_evenly(self):
        sizes = largest_remainder_rounding({"a": 0.0, "b": 0.0}, 6)
        assert sizes == {"a": 3, "b": 3}

    def test_min_size_floor(self):
        sizes = largest_remainder_rounding({"a": 100.0, "b": 0.0}, 5)
        assert sizes["b"] >= 1

    def test_budget_too_small(self):
        with pytest.raises(PolicyError):
            largest_remainder_rounding({"a": 1.0, "b": 1.0}, 1)

    def test_empty_rejected(self):
        with pytest.raises(PolicyError):
            largest_remainder_rounding({}, 5)

    def test_deterministic_tie_break(self):
        s1 = largest_remainder_rounding({"a": 1.0, "b": 1.0, "c": 1.0}, 7)
        s2 = largest_remainder_rounding({"a": 1.0, "b": 1.0, "c": 1.0}, 7)
        assert s1 == s2


class TestUniform:
    def test_equal_sizes(self):
        topo = single_bus(num_processors=4)
        alloc = UniformSizing().allocate(topo, 12)
        assert set(alloc.sizes.values()) == {3}

    def test_budget_exact(self):
        topo = paper_figure1()
        alloc = UniformSizing().allocate(topo, 25)
        assert alloc.total == 25

    def test_too_small_budget(self):
        topo = single_bus(num_processors=4)
        with pytest.raises(PolicyError):
            UniformSizing().allocate(topo, 2)


class TestProportional:
    def test_follows_traffic(self):
        topo = asym_topology()
        alloc = ProportionalSizing().allocate(topo, 12)
        assert alloc.sizes["hot"] > alloc.sizes["cold"]
        assert alloc.total == 12

    def test_sink_gets_minimum(self):
        topo = asym_topology()
        alloc = ProportionalSizing().allocate(topo, 12)
        assert alloc.sizes["sink"] == 1


class TestAnalyticGreedy:
    def test_budget_exact(self):
        topo = paper_figure1()
        alloc = AnalyticGreedySizing().allocate(topo, 30)
        assert alloc.total == 30

    def test_prefers_loaded_clients(self):
        topo = asym_topology()
        alloc = AnalyticGreedySizing().allocate(topo, 12)
        assert alloc.sizes["hot"] > alloc.sizes["cold"]

    def test_min_size_validation(self):
        with pytest.raises(PolicyError):
            AnalyticGreedySizing(min_size=0)


class TestCTMDPPolicy:
    def test_allocates_and_caches_result(self):
        topo = amba_like()
        policy = CTMDPSizing()
        alloc = policy.allocate(topo, 14)
        assert alloc.total == 14
        assert policy.last_result is not None
        assert policy.last_result.allocation is alloc


class TestTimeoutCalibration:
    def test_positive_threshold(self):
        topo = single_bus(arrival_rate=2.0, service_rate=3.0)
        caps = {p: 3 for p in topo.processors}
        threshold = calibrate_timeout_threshold(
            topo, caps, duration=500.0, seed=1
        )
        assert threshold > 0

    def test_multiplier_scales(self):
        topo = single_bus(arrival_rate=2.0, service_rate=3.0)
        caps = {p: 3 for p in topo.processors}
        t1 = calibrate_timeout_threshold(topo, caps, duration=500.0)
        t2 = calibrate_timeout_threshold(
            topo, caps, duration=500.0, multiplier=2.0
        )
        assert t2 == pytest.approx(2.0 * t1)

    def test_validation(self):
        topo = single_bus()
        caps = {p: 3 for p in topo.processors}
        with pytest.raises(PolicyError):
            calibrate_timeout_threshold(topo, caps, duration=0.0)
        with pytest.raises(PolicyError):
            calibrate_timeout_threshold(topo, caps, multiplier=0.0)

    def test_floor_applies(self):
        # Nearly idle system: threshold should still be positive.
        topo = single_bus(arrival_rate=0.01, service_rate=100.0)
        caps = {p: 10 for p in topo.processors}
        threshold = calibrate_timeout_threshold(
            topo, caps, duration=50.0, floor=0.5
        )
        assert threshold >= 0.5
