"""Tests for repro.sim.engine, buffer, packet, monitor, arbiter."""

import numpy as np
import pytest

from repro.errors import PolicyError, SimulationError
from repro.sim.arbiter import (
    FixedPriorityArbiter,
    LongestQueueArbiter,
    RoundRobinArbiter,
    WeightedRandomArbiter,
    make_arbiter,
)
from repro.sim.buffer import FiniteBuffer
from repro.sim.engine import Simulator
from repro.sim.monitor import Monitor
from repro.sim.packet import Hop, Packet


def make_packet(pid=1, client="p", created=0.0):
    return Packet(
        packet_id=pid,
        flow="f",
        source="p",
        destination="q",
        hops=(Hop(0, client, 1.0),),
        created_at=created,
    )


class TestSimulator:
    def test_events_run_in_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run_until(10.0)
        assert order == ["a", "b", "c"]
        assert sim.now == 10.0

    def test_ties_break_by_insertion(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run_until(2.0)
        assert order == ["first", "second"]

    def test_events_beyond_horizon_not_run(self):
        sim = Simulator()
        ran = []
        sim.schedule(5.0, lambda: ran.append(1))
        sim.run_until(4.0)
        assert ran == []
        assert sim.pending_events == 1

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_past_end_time_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(SimulationError):
            sim.run_until(4.0)

    def test_cancel(self):
        sim = Simulator()
        ran = []
        eid = sim.schedule(1.0, lambda: ran.append(1))
        sim.cancel(eid)
        sim.run_until(2.0)
        assert ran == []

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(1.5, second)

        def second():
            times.append(sim.now)

        sim.schedule(1.0, first)
        sim.run_until(5.0)
        assert times == [1.0, 2.5]

    def test_step(self):
        sim = Simulator()
        ran = []
        sim.schedule(1.0, lambda: ran.append(1))
        assert sim.step() is True
        assert ran == [1]
        assert sim.step() is False


class TestFiniteBuffer:
    def test_offer_and_loss(self):
        buf = FiniteBuffer("b", 2)
        assert buf.offer(make_packet(1), 0.0)
        assert buf.offer(make_packet(2), 0.0)
        assert not buf.offer(make_packet(3), 0.0)
        assert buf.offered == 3
        assert buf.accepted == 2
        assert buf.lost == 1

    def test_zero_capacity_loses_everything(self):
        buf = FiniteBuffer("b", 0)
        assert not buf.offer(make_packet(), 0.0)
        assert buf.lost == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(SimulationError):
            FiniteBuffer("b", -1)

    def test_fifo_order(self):
        buf = FiniteBuffer("b", 3)
        for i in range(3):
            buf.offer(make_packet(i), float(i))
        assert buf.pop(3.0).packet_id == 0
        assert buf.pop(3.0).packet_id == 1

    def test_pop_empty_rejected(self):
        buf = FiniteBuffer("b", 1)
        with pytest.raises(SimulationError):
            buf.pop(0.0)

    def test_peek_does_not_remove(self):
        buf = FiniteBuffer("b", 1)
        buf.offer(make_packet(7), 0.0)
        assert buf.peek().packet_id == 7
        assert buf.occupancy == 1

    def test_mean_occupancy(self):
        buf = FiniteBuffer("b", 5)
        buf.offer(make_packet(1), 0.0)
        buf.offer(make_packet(2), 5.0)
        # occupancy: 1 on [0,5), 2 on [5,10) => area 5 + 10 = 15.
        assert buf.mean_occupancy(10.0) == pytest.approx(1.5)

    def test_enqueued_at_stamped(self):
        buf = FiniteBuffer("b", 1)
        p = make_packet()
        buf.offer(p, 3.25)
        assert p.enqueued_at == 3.25


class TestPacket:
    def test_hop_progression(self):
        p = Packet(
            packet_id=1, flow="f", source="a", destination="b",
            hops=(Hop(0, "a", 1.0), Hop(1, "br@x", 2.0)),
            created_at=0.0,
        )
        assert not p.is_last_hop
        assert p.current_hop.client == "a"
        p.advance()
        assert p.is_last_hop
        assert p.current_hop.client == "br@x"


class TestMonitor:
    def test_loss_attribution(self):
        m = Monitor()
        p = make_packet()
        m.record_offered(p)
        m.record_loss(p)
        assert m.lost["p"] == 1
        assert m.total_lost() == 1
        assert m.total_offered() == 1

    def test_timeout_counts_as_loss(self):
        m = Monitor()
        p = make_packet()
        m.record_timeout(p)
        assert m.timed_out["p"] == 1
        assert m.lost["p"] == 1

    def test_waiting_time(self):
        m = Monitor()
        p = make_packet()
        p.enqueued_at = 1.0
        m.record_service_start(p, 3.0)
        assert m.mean_waiting_time() == pytest.approx(2.0)

    def test_mean_end_to_end(self):
        m = Monitor()
        p = make_packet(created=1.0)
        m.record_delivery(p, 4.0)
        assert m.mean_end_to_end() == pytest.approx(3.0)

    def test_empty_means_zero(self):
        m = Monitor()
        assert m.mean_waiting_time() == 0.0
        assert m.mean_end_to_end() == 0.0

    def test_loss_by_processor_fills_zeros(self):
        m = Monitor()
        assert m.loss_by_processor(["a", "b"]) == {"a": 0, "b": 0}


def buffers_with_occupancy(*counts):
    buffers = []
    for i, count in enumerate(counts):
        buf = FiniteBuffer(f"c{i}", 10)
        for j in range(count):
            buf.offer(make_packet(j, client=f"c{i}"), 0.0)
        buffers.append(buf)
    return buffers


class TestArbiters:
    def test_fixed_priority(self):
        rng = np.random.default_rng(0)
        arb = FixedPriorityArbiter()
        buffers = buffers_with_occupancy(0, 2, 1)
        assert arb.grant(buffers, 0.0, rng) == 1

    def test_fixed_priority_all_empty(self):
        rng = np.random.default_rng(0)
        assert FixedPriorityArbiter().grant(
            buffers_with_occupancy(0, 0), 0.0, rng
        ) is None

    def test_round_robin_cycles(self):
        rng = np.random.default_rng(0)
        arb = RoundRobinArbiter()
        buffers = buffers_with_occupancy(1, 1, 1)
        grants = [arb.grant(buffers, 0.0, rng) for _ in range(4)]
        assert grants == [0, 1, 2, 0]

    def test_round_robin_skips_empty(self):
        rng = np.random.default_rng(0)
        arb = RoundRobinArbiter()
        buffers = buffers_with_occupancy(1, 0, 1)
        grants = [arb.grant(buffers, 0.0, rng) for _ in range(3)]
        assert grants == [0, 2, 0]

    def test_longest_queue(self):
        rng = np.random.default_rng(0)
        buffers = buffers_with_occupancy(1, 3, 2)
        assert LongestQueueArbiter().grant(buffers, 0.0, rng) == 1

    def test_longest_queue_empty(self):
        rng = np.random.default_rng(0)
        assert LongestQueueArbiter().grant(
            buffers_with_occupancy(0, 0), 0.0, rng
        ) is None

    def test_weighted_random_respects_weights(self):
        rng = np.random.default_rng(42)
        arb = WeightedRandomArbiter({"c0": 0.0, "c1": 1.0})
        buffers = buffers_with_occupancy(5, 5)
        grants = {arb.grant(buffers, 0.0, rng) for _ in range(50)}
        assert grants == {1}

    def test_weighted_random_zero_weights_fall_back(self):
        rng = np.random.default_rng(42)
        arb = WeightedRandomArbiter({"c0": 0.0, "c1": 0.0})
        buffers = buffers_with_occupancy(1, 1)
        assert arb.grant(buffers, 0.0, rng) in (0, 1)

    def test_weighted_random_negative_rejected(self):
        with pytest.raises(PolicyError):
            WeightedRandomArbiter({"x": -1.0})

    def test_make_arbiter(self):
        assert isinstance(make_arbiter("round_robin"), RoundRobinArbiter)
        assert isinstance(
            make_arbiter("weighted_random", weights={"a": 1.0}),
            WeightedRandomArbiter,
        )
        with pytest.raises(PolicyError, match="unknown arbiter"):
            make_arbiter("zzz")
