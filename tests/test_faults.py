"""Tests for repro.faults — deterministic fault injection and chaos.

Covers the plan language (kinds, sites, occurrence windows, JSON
round-trip), the injector's hook semantics (counting, deterministic
byte damage, env-var propagation), and the chaos harness's single
invariant: every fault plan leaves the matrix outcome bitwise-identical
to the fault-free serial reference.
"""

import os

import pytest

from repro.errors import ReproError
from repro.faults.injector import (
    ENV_VAR,
    FaultInjector,
    active,
    fire,
    install,
    install_from_env,
    transform,
)
from repro.faults.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    standard_plans,
)


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    """Every test starts and ends with fault hooks disabled."""
    install(None)
    yield
    install(None)


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown fault kind"):
            FaultEvent("meteor_strike", "connect")

    def test_unknown_site_rejected(self):
        with pytest.raises(ReproError, match="unknown fault site"):
            FaultEvent("worker_crash", "nowhere")

    def test_window_validation(self):
        with pytest.raises(ReproError):
            FaultEvent("worker_crash", "connect", after=-1)
        with pytest.raises(ReproError):
            FaultEvent("worker_crash", "connect", count=0)

    def test_fires_on_window(self):
        event = FaultEvent("worker_slow", "worker.execute", after=2, count=2)
        assert [event.fires_on(i) for i in range(6)] == [
            False, False, True, True, False, False,
        ]

    def test_count_forever(self):
        event = FaultEvent(
            "cache_corrupt", "cachetier.blob", after=1, count=-1
        )
        assert not event.fires_on(0)
        assert all(event.fires_on(i) for i in range(1, 50))

    def test_json_round_trip(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    "worker_stall",
                    "worker.execute",
                    after=1,
                    args={"seconds": 9.0},
                ),
            ),
            seed=3,
            name="trip",
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_malformed_json_is_a_clean_error(self):
        with pytest.raises(ReproError, match="malformed fault plan"):
            FaultPlan.from_json("{not json")
        with pytest.raises(ReproError):
            FaultPlan.from_json('{"events": [{"kind": "worker_crash"}]}')

    def test_standard_plans_cover_every_kind(self):
        plans = standard_plans()
        covered = {
            event.kind
            for plan in plans.values()
            for event in plan.events
        }
        assert covered == set(FAULT_KINDS)

    def test_for_site_filters(self):
        plan = standard_plans()["cache-corrupt"]
        assert plan.for_site("cachetier.blob")
        assert not plan.for_site("connect")


class TestFaultInjector:
    def test_hooks_are_noops_without_injector(self):
        assert active() is None
        fire("worker.execute")  # must not raise
        assert transform("cache.entry", b"abc") == b"abc"

    def test_occurrence_counting_is_per_site(self):
        plan = FaultPlan(
            events=(
                FaultEvent("connection_drop", "connect", after=1),
            ),
            name="count",
        )
        injector = FaultInjector(plan)
        injector.fire("worker.execute")  # other site: separate counter
        injector.fire("connect")         # connect occurrence 0: no fire
        with pytest.raises(ConnectionResetError):
            injector.fire("connect")     # occurrence 1: fires
        injector.fire("connect")         # occurrence 2: window passed
        assert len(injector.records) == 1

    def test_connect_refuse_raises_refused(self):
        plan = FaultPlan(
            events=(FaultEvent("connect_refuse", "connect"),),
            name="refuse",
        )
        with pytest.raises(ConnectionRefusedError, match="injected"):
            FaultInjector(plan).fire("connect")

    def test_corruption_is_deterministic(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    "cache_corrupt", "cachetier.blob", count=-1
                ),
            ),
            seed=11,
            name="corrupt",
        )
        blob = bytes(range(256))
        first = FaultInjector(plan).transform("cachetier.blob", blob)
        second = FaultInjector(plan).transform("cachetier.blob", blob)
        assert first == second
        assert first != blob

    def test_truncation_shortens(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    "cache_truncate", "cachetier.blob", count=-1
                ),
            ),
            name="trunc",
        )
        blob = b"x" * 300
        damaged = FaultInjector(plan).transform("cachetier.blob", blob)
        assert damaged == blob[: len(blob) // 3]

    def test_records_written_to_log_file(self, tmp_path):
        log = tmp_path / "faults.log"
        plan = FaultPlan(
            events=(
                FaultEvent("worker_slow", "worker.execute",
                           count=-1, args={"seconds": 0.0}),
            ),
            name="logged",
        )
        injector = FaultInjector(plan, log_path=str(log))
        injector.fire("worker.execute")
        injector.fire("worker.execute")
        lines = log.read_text().splitlines()
        assert len(lines) == 2
        assert "kind=worker_slow" in lines[0]
        assert "site=worker.execute" in lines[0]

    def test_install_from_env(self, monkeypatch, tmp_path):
        plan = standard_plans()["worker-slow"]
        monkeypatch.setenv(ENV_VAR, plan.to_json())
        monkeypatch.setenv(
            "REPRO_FAULT_LOG", str(tmp_path / "w.log")
        )
        injector = install_from_env()
        assert injector is not None
        assert active() is injector
        assert injector.plan == plan
        assert injector.log_path == str(tmp_path / "w.log")

    def test_install_from_env_without_var_is_noop(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert install_from_env() is None
        assert active() is None

    def test_install_returns_previous(self):
        first = FaultInjector(FaultPlan(name="a"))
        second = FaultInjector(FaultPlan(name="b"))
        assert install(first) is None
        assert install(second) is first
        assert install(None) is second


class TestChaosMatrix:
    """The end-to-end invariant on a tiny matrix.

    Local modes (serial/jobs) run the full standard-plan set — most
    transport faults are structurally impossible there and must be
    exact no-ops.  The dist lane (real broker + forked workers) is
    exercised for the two most adversarial plans; the full dist matrix
    runs in the CI ``chaos-smoke`` job and via ``repro dist chaos``.
    """

    _MATRIX = dict(
        scenario_names=["single-bus-4"],
        budgets=[8, 12],
        replications=2,
        duration=20.0,
    )

    def test_local_modes_are_noops_with_identical_outcomes(self):
        from repro.faults.chaos import run_chaos_matrix

        report = run_chaos_matrix(
            modes=("serial", "jobs"), jobs=2, **self._MATRIX
        )
        assert report.all_match, report.render()
        assert len(report.cases) == 2 * len(standard_plans())

    def test_dist_worker_crash_heals_bitwise_identical(self, tmp_path):
        from repro.faults.chaos import run_chaos_matrix

        plans = {"worker-crash": standard_plans()["worker-crash"]}
        report = run_chaos_matrix(
            plans=plans,
            modes=("dist",),
            workers=2,
            log_dir=tmp_path,
            **self._MATRIX,
        )
        case = report.cases[0]
        assert case.matched, report.render()
        assert case.injected >= 1  # the crash really happened
        assert "worker_crash" in case.detail

    def test_dist_broker_loss_falls_back_identical(self, tmp_path):
        from repro.faults.chaos import run_chaos_matrix

        plans = {"broker-loss": standard_plans()["broker-loss"]}
        report = run_chaos_matrix(
            plans=plans,
            modes=("dist",),
            workers=2,
            log_dir=tmp_path,
            **self._MATRIX,
        )
        case = report.cases[0]
        assert case.matched, report.render()
        assert case.fallbacks == 1  # degraded to the local pool
        assert case.injected >= 1

    def test_unknown_mode_rejected(self):
        from repro.faults.chaos import run_chaos_matrix

        with pytest.raises(ReproError, match="unknown chaos mode"):
            run_chaos_matrix(
                ["single-bus-4"], modes=("serial", "warp"),
            )

    def test_report_renders_verdict(self):
        from repro.faults.chaos import ChaosCase, ChaosReport

        report = ChaosReport(reference=[])
        report.cases.append(
            ChaosCase(
                plan="p", mode="serial", matched=True, injected=0
            )
        )
        assert "bitwise-identical" in report.render()
        report.cases.append(
            ChaosCase(
                plan="p", mode="dist", matched=False, injected=3
            )
        )
        assert not report.all_match
        assert "MISMATCH" in report.render()
