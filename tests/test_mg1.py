"""Tests for repro.queueing.mg1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.queueing.mg1 import (
    MG1Queue,
    buffer_for_loss_target,
    gim1_tail_decay,
    mg1k_loss_approximation,
)
from repro.queueing.mm1k import MM1KQueue


class TestMG1:
    def test_validation(self):
        with pytest.raises(ModelError):
            MG1Queue(0.0, 1.0, 1.0)
        with pytest.raises(ModelError):
            MG1Queue(1.0, 0.0, 1.0)
        with pytest.raises(ModelError):
            MG1Queue(1.0, 1.0, -0.5)

    def test_mm1_special_case(self):
        # scv = 1 reduces PK to the M/M/1 value rho/(mu - lambda) ... in
        # waiting-time form W = rho / (mu (1 - rho)).
        lam, mu = 2.0, 3.0
        q = MG1Queue(lam, 1.0 / mu, 1.0)
        expected = (lam / mu) / (mu * (1.0 - lam / mu))
        assert q.mean_waiting_time() == pytest.approx(expected)

    def test_deterministic_halves_waiting(self):
        lam, mu = 2.0, 3.0
        exp_wait = MG1Queue(lam, 1.0 / mu, 1.0).mean_waiting_time()
        det_wait = MG1Queue(lam, 1.0 / mu, 0.0).mean_waiting_time()
        assert det_wait == pytest.approx(0.5 * exp_wait)

    def test_unstable_rejected(self):
        with pytest.raises(ModelError):
            MG1Queue(2.0, 1.0, 1.0).mean_waiting_time()

    def test_littles_law(self):
        q = MG1Queue(1.0, 0.25, 2.0)
        assert q.mean_number_in_system() == pytest.approx(
            1.0 * (q.mean_waiting_time() + 0.25)
        )


class TestMG1KApproximation:
    def test_exact_at_scv_one(self):
        lam, mu, k = 2.0, 3.0, 4
        approx = mg1k_loss_approximation(lam, 1.0 / mu, 1.0, k)
        exact = MM1KQueue(lam, mu, k).blocking_probability()
        assert approx == pytest.approx(exact, rel=1e-9)

    def test_smoother_service_blocks_less(self):
        b_det = mg1k_loss_approximation(2.0, 0.4, 0.0, 4)
        b_exp = mg1k_loss_approximation(2.0, 0.4, 1.0, 4)
        b_bursty = mg1k_loss_approximation(2.0, 0.4, 4.0, 4)
        assert b_det < b_exp < b_bursty

    def test_validation(self):
        with pytest.raises(ModelError):
            mg1k_loss_approximation(1.0, 1.0, 1.0, 0)
        with pytest.raises(ModelError):
            mg1k_loss_approximation(-1.0, 1.0, 1.0, 2)
        with pytest.raises(ModelError):
            mg1k_loss_approximation(1.0, 1.0, -1.0, 2)


class TestTailDecay:
    def test_poisson_matches_rho(self):
        assert gim1_tail_decay(1.0, 0.7) == pytest.approx(0.7)

    def test_burstier_slower_decay(self):
        assert gim1_tail_decay(4.0, 0.7) > gim1_tail_decay(1.0, 0.7)

    def test_smoother_faster_decay(self):
        assert gim1_tail_decay(0.25, 0.7) < gim1_tail_decay(1.0, 0.7)

    def test_validation(self):
        with pytest.raises(ModelError):
            gim1_tail_decay(1.0, 1.0)
        with pytest.raises(ModelError):
            gim1_tail_decay(-1.0, 0.5)

    @given(
        scv=st.floats(min_value=0.1, max_value=20.0),
        rho=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_decay_in_unit_interval(self, scv, rho):
        sigma = gim1_tail_decay(scv, rho)
        assert 0.0 < sigma < 1.0


class TestBufferForLossTarget:
    def test_meets_target(self):
        k = buffer_for_loss_target(1.0, 2.0, 1.0, 0.01)
        sigma = gim1_tail_decay(1.0, 0.5)
        blocking = (1 - sigma) * sigma**k / (1 - sigma ** (k + 1))
        assert blocking <= 0.01

    def test_burstier_needs_more_buffer(self):
        smooth = buffer_for_loss_target(1.0, 2.0, 1.0, 0.001)
        bursty = buffer_for_loss_target(1.0, 2.0, 6.0, 0.001)
        assert bursty > smooth

    def test_validation(self):
        with pytest.raises(ModelError):
            buffer_for_loss_target(1.0, 2.0, 1.0, 0.0)
        with pytest.raises(ModelError):
            buffer_for_loss_target(3.0, 2.0, 1.0, 0.1)  # rho >= 1
        with pytest.raises(ModelError):
            buffer_for_loss_target(1.0, 0.0, 1.0, 0.1)

    def test_unreachable_target(self):
        with pytest.raises(ModelError):
            buffer_for_loss_target(
                0.99, 1.0, 1.0, 1e-300, max_buffer=5
            )
