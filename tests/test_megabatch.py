"""Tests for the mega-batch replication kernel (``backend="megabatch"``).

The lane's whole value rests on one claim: stacking ``R`` replications
into one array program changes *nothing* about the numbers.  So the
suite is mostly equality matrices — megabatch vs batched vs heap across
scenarios, arbiters, timeout and warmup; every available engine against
the interpreted oracle; serial vs ``jobs=N`` vs distributed merges —
plus the supporting contracts: block-pool stream identity, fallback
gating, progress-event ordering, obs instrumentation, and the
allocation-free hot path.
"""

import multiprocessing
import os
import tracemalloc

import numpy as np
import pytest

from repro import obs, scenarios
from repro.errors import SimulationError
from repro.exec.pool import parallel_map, partition_blocks
from repro.policies.uniform import UniformSizing
from repro.sim.arbiter import KERNEL_ARBITERS
from repro.sim.fastpath import ExponentialBlockPool, ExponentialPool
from repro.sim.megabatch import (
    ENGINES,
    MegaBatchLane,
    available_engines,
    megabatch_supported,
    resolve_engine,
)
from repro.sim.runner import (
    SIM_BACKENDS,
    replicate,
    simulate,
    simulate_block,
)

#: Scenario axis of the equivalence matrix: the three fixed scenarios
#: plus one generated random-mesh family member.
SCENARIOS = ("netproc", "fig1", "amba", "random-mesh-2-7")

AVAILABLE_ENGINES = tuple(
    name for name, ok in available_engines().items() if ok
)


def _cell(name):
    spec = scenarios.get(name)
    topology = spec.topology()
    capacities = (
        UniformSizing().allocate(topology, spec.default_budget)
        .as_capacities()
    )
    return topology, capacities


@pytest.fixture(scope="module", params=SCENARIOS)
def cell(request):
    return request.param, *_cell(request.param)


# -- satellite: the 2-D block-draw API ----------------------------------


class TestExponentialBlockPool:
    def test_each_row_bitwise_matches_an_independent_pool(self):
        seeds = [3, 1003, 77, 2**40 + 5]
        pool = ExponentialBlockPool(
            [np.random.default_rng(s) for s in seeds]
        )
        block = pool.take_block(700)  # spans multiple refill chunks
        assert block.shape == (len(seeds), 700)
        for row, seed in enumerate(seeds):
            solo = ExponentialPool(np.random.default_rng(seed))
            expected = solo.take(700)
            assert block[row].tolist() == expected.tolist()

    def test_take_row_continues_the_row_stream(self):
        seeds = [11, 12]
        pool = ExponentialBlockPool(
            [np.random.default_rng(s) for s in seeds]
        )
        first = pool.take_block(100)
        more = pool.take_row(1, 50)
        solo = ExponentialPool(np.random.default_rng(12))
        assert first[1].tolist() == solo.take(100).tolist()
        assert more.tolist() == solo.take(50).tolist()

    def test_rows_property_and_empty_rejected(self):
        pool = ExponentialBlockPool([np.random.default_rng(0)])
        assert pool.rows == 1
        with pytest.raises(ValueError):
            ExponentialBlockPool([])


# -- the bitwise equivalence matrix -------------------------------------


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("arbiter", KERNEL_ARBITERS)
    @pytest.mark.parametrize(
        "timeout,warmup", [(None, 0.0), (4.0, 50.0)]
    )
    def test_megabatch_matches_batched(self, cell, arbiter, timeout, warmup):
        name, topology, capacities = cell
        seeds = [3, 1003, 77]
        block = simulate_block(
            topology,
            capacities,
            duration=120.0,
            seeds=seeds,
            arbiter_kind=arbiter,
            timeout_threshold=timeout,
            warmup=warmup,
        )
        for seed, got in zip(seeds, block):
            ref = simulate(
                topology,
                capacities,
                duration=120.0,
                seed=seed,
                arbiter_kind=arbiter,
                timeout_threshold=timeout,
                warmup=warmup,
                backend="batched",
            )
            assert got == ref, (name, arbiter, timeout, warmup, seed)

    def test_megabatch_matches_heap(self, cell):
        name, topology, capacities = cell
        got = simulate(
            topology, capacities, duration=100.0, seed=3,
            backend="megabatch",
        )
        ref = simulate(
            topology, capacities, duration=100.0, seed=3, backend="heap"
        )
        assert got == ref, name


# -- engine cross-equality ----------------------------------------------


class TestEngines:
    @pytest.mark.parametrize("engine", AVAILABLE_ENGINES)
    def test_engine_bitwise_matches_batched(self, engine):
        topology, capacities = _cell("netproc")
        seeds = [3, 1003]
        block = simulate_block(
            topology,
            capacities,
            duration=150.0,
            seeds=seeds,
            timeout_threshold=3.0,
            engine=engine,
        )
        for seed, got in zip(seeds, block):
            ref = simulate(
                topology, capacities, duration=150.0, seed=seed,
                timeout_threshold=3.0, backend="batched",
            )
            assert got == ref, engine

    @pytest.mark.skipif(
        not available_engines()["numba"], reason="numba not installed"
    )
    def test_numba_jit_engine_matches(self):
        topology, capacities = _cell("fig1")
        block = simulate_block(
            topology, capacities, duration=150.0, seeds=[3],
            engine="numba",
        )
        ref = simulate(
            topology, capacities, duration=150.0, seed=3,
            backend="batched",
        )
        assert block[0] == ref

    def test_forced_unavailable_engine_is_an_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CC", "0")
        from repro.sim import _mbcc

        monkeypatch.setattr(_mbcc, "_tried", False)
        monkeypatch.setattr(_mbcc, "_cached", None)
        with pytest.raises(SimulationError, match="cc"):
            resolve_engine("cc")

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError, match="unknown"):
            resolve_engine("fortran")

    def test_env_var_forces_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "python")
        assert resolve_engine() == "python"
        monkeypatch.delenv("REPRO_SIM_ENGINE")
        assert resolve_engine() in ENGINES


# -- kernel-path gating and fallback ------------------------------------


class TestSupportGate:
    def test_deterministic_arbiters_supported(self):
        topology, _ = _cell("fig1")
        for arbiter in KERNEL_ARBITERS:
            assert megabatch_supported(topology, arbiter)

    def test_weighted_random_not_supported(self):
        topology, _ = _cell("fig1")
        assert not megabatch_supported(topology, "weighted_random")

    def test_stateful_traffic_not_supported(self):
        from repro.arch.traffic import TrafficDescriptor
        from repro.sim.workloads import TraceTraffic

        assert TrafficDescriptor.stateless_sampling is True
        assert TraceTraffic.stateless_sampling is False

    def test_unsupported_backend_falls_back_bitwise(self):
        topology, capacities = _cell("fig1")
        got = simulate(
            topology, capacities, duration=100.0, seed=3,
            arbiter_kind="weighted_random", backend="megabatch",
        )
        ref = simulate(
            topology, capacities, duration=100.0, seed=3,
            arbiter_kind="weighted_random", backend="batched",
        )
        assert got == ref

    def test_lane_rejects_randomised_arbiter(self):
        topology, capacities = _cell("fig1")
        with pytest.raises(SimulationError, match="deterministic"):
            MegaBatchLane(
                topology, capacities, [3],
                arbiter_kind="weighted_random",
            )

    def test_lane_rejects_empty_seed_list(self):
        topology, capacities = _cell("fig1")
        with pytest.raises(SimulationError, match="seed"):
            MegaBatchLane(topology, capacities, [])

    def test_lane_window_protocol_errors(self):
        topology, capacities = _cell("fig1")
        lane = MegaBatchLane(topology, capacities, [3])
        with pytest.raises(SimulationError, match="start"):
            lane.run_until(10.0)
        lane.start()
        with pytest.raises(SimulationError, match="started"):
            lane.start()
        lane.run_until(10.0)
        with pytest.raises(SimulationError, match="before now"):
            lane.run_until(5.0)


# -- block dispatch: replicate / jobs=N / dist --------------------------


class TestBlockDispatch:
    def test_partition_blocks_cover_in_order(self):
        assert partition_blocks(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert partition_blocks(3, 8) == [(0, 1), (1, 2), (2, 3)]
        assert partition_blocks(5, 1) == [(0, 5)]
        with pytest.raises(SimulationError):
            partition_blocks(0, 2)

    def test_replicate_matches_batched_serial_and_pooled(self):
        topology, capacities = _cell("amba")
        kwargs = dict(replications=5, duration=150.0)
        ref = replicate(topology, capacities, backend="batched", **kwargs)
        serial = replicate(
            topology, capacities, backend="megabatch", **kwargs
        )
        pooled = replicate(
            topology, capacities, backend="megabatch", jobs=2, **kwargs
        )
        assert serial.results == ref.results
        assert pooled.results == ref.results

    def test_on_result_streams_per_replication_in_index_order(self):
        # Parity with the per-replication streaming contract: a block
        # completes as one unit but still reports every replication.
        topology, capacities = _cell("amba")
        for jobs in (1, 2):
            events = []
            summary = replicate(
                topology,
                capacities,
                replications=5,
                duration=100.0,
                backend="megabatch",
                jobs=jobs,
                on_result=lambda i, r: events.append((i, r)),
            )
            assert [i for i, _ in events] == list(range(5))
            assert [r for _, r in events] == summary.results


class TestDistMerge:
    @pytest.fixture()
    def server(self):
        from repro.dist import BrokerServer

        broker_server = BrokerServer(
            port=0, lease_timeout=5.0
        ).start_in_thread()
        yield broker_server
        broker_server.stop()

    def test_dist_merge_bitwise_identical(self, server):
        from repro.dist import DistExecutor, worker_loop

        fork = multiprocessing.get_context("fork")
        worker = fork.Process(
            target=worker_loop,
            args=(server.address,),
            kwargs={"poll_interval": 0.02},
            daemon=True,
        )
        worker.start()
        try:
            executor = DistExecutor(
                server.address, poll_interval=0.02, timeout=120
            )
            topology, capacities = _cell("amba")
            kwargs = dict(replications=5, duration=120.0)
            distributed = replicate(
                topology,
                capacities,
                backend="megabatch",
                executor=executor,
                **kwargs,
            )
            serial = replicate(
                topology, capacities, backend="batched", **kwargs
            )
            assert distributed.results == serial.results
        finally:
            worker.terminate()


class TestChaosSmoke:
    def test_chaos_matrix_green_under_megabatch(self):
        from repro.faults.chaos import run_chaos_matrix
        from repro.faults.plan import standard_plans

        plans = dict(list(standard_plans().items())[:2])
        report = run_chaos_matrix(
            ["single-bus-4"],
            budgets=[8],
            replications=2,
            duration=20.0,
            sim_backend="megabatch",
            plans=plans,
            modes=("serial", "jobs"),
            jobs=2,
        )
        assert report.all_match, report.render()


# -- cache keys ---------------------------------------------------------


class TestCacheKey:
    def test_backend_in_replicate_cache_key(self):
        from repro.dist.jobs import ProcessMemo
        from repro.exec import ExecutionContext

        topology, capacities = _cell("fig1")
        memo = ProcessMemo()
        kwargs = dict(replications=2, duration=80.0)
        batched = ExecutionContext(
            jobs=1, cache=memo, sim_backend="batched"
        ).replicate(topology, capacities, **kwargs)
        mega = ExecutionContext(
            jobs=1, cache=memo, sim_backend="megabatch"
        ).replicate(topology, capacities, **kwargs)
        # Same numbers (deterministic arbiters), but distinct entries:
        # the backend is part of the key, the engine never is.
        assert mega.results == batched.results
        assert memo.hits == 0
        assert memo.misses == 2

    def test_cache_hit_still_streams_per_replication(self):
        from repro.dist.jobs import ProcessMemo
        from repro.exec import ExecutionContext

        topology, capacities = _cell("fig1")
        memo = ProcessMemo()
        context = ExecutionContext(
            jobs=1, cache=memo, sim_backend="megabatch"
        )
        kwargs = dict(replications=3, duration=80.0)
        context.replicate(topology, capacities, **kwargs)
        events = []
        hit = context.replicate(
            topology,
            capacities,
            on_result=lambda i, r: events.append(i),
            **kwargs,
        )
        assert memo.hits == 1
        assert events == list(range(3))
        assert len(hit.results) == 3


# -- observability ------------------------------------------------------


class TestObservability:
    def test_kernel_spans_and_metrics_fire(self):
        topology, capacities = _cell("fig1")
        obs.enable_metrics()
        obs.enable_tracing()
        try:
            simulate_block(
                topology, capacities, duration=100.0, seeds=[3, 1003]
            )
            counters = obs.registry().counters_snapshot()
            assert counters["sim.megabatch.invocations"] >= 1
            histograms = obs.registry().snapshot()["histograms"]
            hist = histograms["sim.megabatch.replications_per_invocation"]
            assert hist["count"] >= 1
            assert hist["max"] == 2.0
            names = [name for name, *_ in obs.recorder().spans()]
            assert "sim.megabatch.kernel" in names
            assert "sim.window" in names
        finally:
            obs.reset()

    def test_kernel_allocates_nothing_in_obs_when_disabled(self):
        topology, capacities = _cell("fig1")
        run = lambda: simulate_block(
            topology, capacities, duration=200.0, seeds=[3],
            warmup=50.0,
        )
        run()  # warm lazy imports, the compiled kernel, and caches
        obs_dir = os.path.dirname(obs.__file__)
        filters = [
            tracemalloc.Filter(True, os.path.join(obs_dir, "*")),
            tracemalloc.Filter(True, obs.__file__),
        ]
        tracemalloc.start()
        try:
            run()
            snapshot = tracemalloc.take_snapshot().filter_traces(filters)
        finally:
            tracemalloc.stop()
        stats = snapshot.statistics("lineno")
        assert not stats, [str(s) for s in stats]


# -- registry -----------------------------------------------------------


class TestRegistry:
    def test_backend_registered(self):
        assert "megabatch" in SIM_BACKENDS

    def test_parallel_map_unaffected(self):
        # Block dispatch reuses parallel_map; the plain path stays put.
        assert parallel_map(len, [[1], [1, 2]]) == [1, 2]
