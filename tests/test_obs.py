"""Tests for repro.obs — metrics, tracing, logging, and fleet telemetry.

Pins the three load-bearing contracts of the observability layer:

* **Disabled is free** — every accessor returns a shared no-op
  singleton, and the batched sim drain loop allocates *nothing* inside
  ``repro/obs`` with observability off (asserted with tracemalloc).
* **Never load-bearing** — replication results are bitwise-identical
  with tracing + metrics enabled vs. a cold obs-off reference.
* **Fleet aggregation survives worker death** — a reaped worker's
  shipped counter totals stay in the broker's fleet view (marked
  ``alive: False``), so fleet sums never shrink when a worker dies.
"""

import io
import json
import os
import tracemalloc

import pytest

from repro import obs
from repro.cli import main
from repro.dist.jobs import echo
from repro.dist.queue import Broker, JobPayload
from repro.dist.worker import _MetricsShipper
from repro.obs import log
from repro.obs.console import render_top
from repro.obs.metrics import (
    MetricsRegistry,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
)
from repro.obs.trace import FlightRecorder, NOOP_SPAN
from repro.scenarios import get as get_scenario
from repro.sim.runner import replicate, simulate


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with observability fully disabled."""
    obs.reset()
    yield
    obs.reset()


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# -- metrics ------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        registry.gauge("g").set(2.5)
        assert registry.gauge("g").value == 2.5
        hist = registry.histogram("h")
        for v in (3.0, 1.0, 2.0):
            hist.observe(v)
        assert (hist.count, hist.sum, hist.min, hist.max) == (3, 6.0, 1.0, 3.0)
        assert hist.mean() == 2.0

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry(enabled=True)
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x") is not registry.counter("y")

    def test_disabled_registry_hands_out_shared_noops(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("a") is NOOP_COUNTER
        assert registry.gauge("a") is NOOP_GAUGE
        assert registry.histogram("a") is NOOP_HISTOGRAM
        # The stubs swallow updates and the registry records nothing.
        registry.counter("a").inc()
        registry.histogram("a").observe(1.0)
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_snapshot_shapes(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(7.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.0}
        assert snap["histograms"]["h"] == {
            "count": 1, "sum": 7.0, "min": 7.0, "max": 7.0,
            "p50": 7.0, "p95": 7.0, "p99": 7.0,
        }
        assert registry.counters_snapshot() == {"c": 2}
        assert registry.gauges_snapshot() == {"g": 1.0}

    def test_histogram_quantiles_log_buckets(self):
        hist = MetricsRegistry(enabled=True).histogram("h")
        for value in range(1, 1001):  # 1..1000, uniform
            hist.observe(float(value))
        # Log buckets are ~19% wide, so estimates land within ~10%.
        assert hist.quantile(0.5) == pytest.approx(500.0, rel=0.11)
        assert hist.quantile(0.95) == pytest.approx(950.0, rel=0.11)
        assert hist.quantile(0.99) == pytest.approx(990.0, rel=0.11)
        # Extremes are clamped to the exact observed range.
        assert hist.quantile(0.0) >= hist.min
        assert hist.quantile(1.0) <= hist.max

    def test_histogram_quantiles_edge_cases(self):
        registry = MetricsRegistry(enabled=True)
        empty = registry.histogram("empty")
        assert empty.quantile(0.5) == 0.0
        zeros = registry.histogram("zeros")
        for value in (0.0, 0.0, 5.0):
            zeros.observe(value)
        # Two thirds of the mass sits at <= 0: p50 reports it honestly.
        assert zeros.quantile(0.5) == 0.0
        assert zeros.quantile(0.99) == 5.0
        wide = registry.histogram("wide")
        for value in (1e-9, 1.0, 1e6):
            wide.observe(value)
        assert wide.quantile(0.01) == pytest.approx(1e-9, rel=0.2)
        assert wide.quantile(0.99) == pytest.approx(1e6, rel=0.2)

    def test_module_level_enable_disable(self):
        assert not obs.metrics_enabled()
        assert obs.counter("m") is NOOP_COUNTER
        obs.enable_metrics()
        assert obs.metrics_enabled()
        obs.counter("m").inc(3)
        assert obs.registry().counters_snapshot() == {"m": 3}
        # Idempotent: re-enabling keeps the live registry.
        registry = obs.registry()
        obs.enable_metrics()
        assert obs.registry() is registry
        obs.disable_metrics()
        assert obs.counter("m") is NOOP_COUNTER


# -- tracing ------------------------------------------------------------


class TestTracing:
    def test_disabled_span_is_the_shared_singleton(self):
        assert obs.span("anything") is NOOP_SPAN
        with obs.span("anything") as span:
            span.set("k", "v")  # accepted, does nothing

    def test_spans_record_name_duration_and_args(self):
        obs.enable_tracing()
        with obs.span("solver.lp_solve", scenario="amba") as span:
            span.set("iteration", 2)
        (name, start_ns, dur_ns, args), = obs.recorder().spans()
        assert name == "solver.lp_solve"
        assert dur_ns >= 0 and start_ns > 0
        assert args == {"scenario": "amba", "iteration": 2}

    def test_recorder_is_bounded_and_counts_drops(self):
        recorder = FlightRecorder(capacity=10)
        for i in range(25):
            recorder.record("s", i, 1, None)
        assert len(recorder) == 10
        assert recorder.recorded == 25
        assert recorder.dropped() == 15
        # The ring keeps the most recent spans.
        assert recorder.spans()[0][1] == 15

    def test_chrome_export_schema(self, tmp_path):
        obs.enable_tracing()
        with obs.span("cache.lookup") as span:
            span.set("hit", False)
        with obs.span("sim.window"):
            pass
        path = tmp_path / "trace.json"
        assert obs.export_trace(str(path)) == 2
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {"recorded": 2, "dropped": 0}
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["cache.lookup", "sim.window"]
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == event["name"].split(".", 1)[0]
            assert isinstance(event["ts"], float) and event["ts"] >= 0
            assert isinstance(event["dur"], float) and event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        assert events[0]["args"] == {"hit": False}

    def test_export_without_tracing_is_an_error(self, tmp_path):
        with pytest.raises(RuntimeError):
            obs.export_trace(str(tmp_path / "t.json"))

    def test_install_from_env(self):
        obs.install_from_env({"REPRO_OBS_METRICS": "1"})
        assert obs.metrics_enabled() and not obs.tracing_enabled()
        obs.reset()
        obs.install_from_env({"REPRO_OBS_TRACE": "5000"})
        assert obs.tracing_enabled()
        assert obs.recorder().capacity == 5000
        obs.reset()
        obs.install_from_env({"REPRO_OBS_METRICS": "0", "REPRO_OBS_TRACE": ""})
        assert not obs.enabled()

    def test_snapshot_includes_tracing_state(self):
        snap = obs.snapshot()
        assert snap["tracing"] == {
            "enabled": False, "recorded": 0, "dropped": 0
        }
        obs.enable_tracing()
        with obs.span("x"):
            pass
        assert obs.snapshot()["tracing"]["recorded"] == 1


# -- logging ------------------------------------------------------------


class TestLog:
    def test_levels_gate_output(self):
        stream = io.StringIO()
        log.set_stream(stream)
        log.set_level(log.INFO)
        log.info("visible")
        log.detail("hidden")
        log.set_level(log.QUIET)
        log.info("also hidden")
        log.set_level(log.DETAIL)
        log.detail("now visible")
        assert stream.getvalue() == "visible\nnow visible\n"

    def test_warn_always_prints_with_prefix(self):
        stream = io.StringIO()
        log.set_stream(stream)
        log.set_level(log.QUIET)
        log.warn("broken")
        assert stream.getvalue() == "warning: broken\n"

    def test_default_stream_is_live_stderr(self, capsys):
        log.info("to stderr")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "to stderr" in captured.err


# -- the zero-cost contract ---------------------------------------------


class TestDisabledIsFree:
    def test_sim_drain_loop_allocates_nothing_in_obs(self):
        """With obs off the batched drain loop never enters obs code.

        tracemalloc attributes every allocation to the file that made
        it; filtering to ``src/repro/obs/*`` must find zero bytes for a
        whole simulation window (warmup + measure), or an instrument
        crept inside the per-event loop.
        """
        spec = get_scenario("single-bus-4")
        topology = spec.topology()
        capacities = {p: 8 for p in topology.processors}
        run = lambda: simulate(
            topology, capacities, duration=300.0, seed=3,
            warmup=50.0, backend="batched",
        )
        run()  # warm lazy imports and caches outside the measurement
        obs_dir = os.path.dirname(obs.__file__)
        filters = [
            tracemalloc.Filter(True, os.path.join(obs_dir, "*")),
            tracemalloc.Filter(True, obs.__file__),
        ]
        tracemalloc.start()
        try:
            run()
            snapshot = tracemalloc.take_snapshot().filter_traces(filters)
        finally:
            tracemalloc.stop()
        stats = snapshot.statistics("lineno")
        assert not stats, [str(s) for s in stats]


# -- observation is never load-bearing ----------------------------------


class TestNeverLoadBearing:
    def test_replication_identical_with_tracing_and_metrics_on(self):
        spec = get_scenario("single-bus-4")
        topology = spec.topology()
        capacities = {p: 8 for p in topology.processors}
        kwargs = dict(replications=2, duration=200.0, backend="batched")
        reference = replicate(topology, capacities, **kwargs)
        obs.enable_metrics()
        obs.enable_tracing()
        traced = replicate(topology, capacities, **kwargs)
        for ref, got in zip(reference.results, traced.results):
            assert got.lost == ref.lost
            assert got.offered == ref.offered
            assert got.mean_waiting_time == ref.mean_waiting_time
        # And the instrumentation did fire.
        assert obs.registry().counters_snapshot()["sim.windows"] == 2
        assert obs.recorder().recorded > 0


# -- fleet aggregation --------------------------------------------------


def _envelope(counters, gauges=None):
    return {"counters": counters, "gauges": gauges or {}}


class TestBrokerAggregation:
    def test_stats_keys_unchanged(self):
        broker = Broker(lease_timeout=10.0)
        assert set(broker.stats()) == {
            "workers", "pending", "leased", "batches", "completed",
            "steals", "reaped_jobs", "dropped_batches", "schedule",
            "lease_grants", "lease_jobs", "lease_resizes",
            "pinned_leases", "batched_uploads", "batched_jobs",
        }
        assert set(broker.cache_stats()) == {
            "entries", "bytes", "gets", "hits", "puts", "evictions",
        }

    def test_heartbeat_and_complete_merge_deltas(self):
        broker = Broker(lease_timeout=10.0)
        broker.submit("b", [JobPayload(echo, 0)])
        (job_id, payload), = broker.pull("w1", max_jobs=1)
        broker.heartbeat(
            "w1", _envelope({"worker.jobs": 1}, {"rss_mb": 10.0})
        )
        broker.start("w1", job_id)
        broker.complete(
            "w1", job_id, payload.fn(payload.item),
            _envelope({"worker.jobs": 2, "sim.windows": 5}, {"rss_mb": 12.0}),
        )
        snap = broker.obs_snapshot()
        record = snap["workers"]["w1"]
        assert record["alive"] is True
        # Counters accumulate across ships; gauges take the last value.
        assert record["counters"] == {"worker.jobs": 3, "sim.windows": 5}
        assert record["gauges"] == {"rss_mb": 12.0}
        assert snap["fleet"]["counters"] == {
            "worker.jobs": 3, "sim.windows": 5
        }

    def test_reaped_worker_totals_survive_in_fleet_view(self):
        clock = _FakeClock()
        broker = Broker(lease_timeout=1.0, clock=clock)
        broker.submit("b", [JobPayload(echo, i) for i in range(2)])
        broker.pull("w1", max_jobs=1)
        broker.heartbeat("w1", _envelope({"worker.jobs": 3}))
        clock.advance(1.5)  # w1 presumed dead
        broker.pull("w2", max_jobs=1)  # triggers the reap
        broker.heartbeat("w2", _envelope({"worker.jobs": 2}))
        snap = broker.obs_snapshot()
        assert snap["workers"]["w1"]["alive"] is False
        assert snap["workers"]["w1"]["counters"] == {"worker.jobs": 3}
        assert snap["workers"]["w2"]["alive"] is True
        # Fleet totals keep the dead worker's contribution.
        assert snap["fleet"]["counters"] == {"worker.jobs": 5}
        assert snap["queue"]["reaped_jobs"] == 1

    def test_heartbeat_resurrects_alive_flag(self):
        clock = _FakeClock()
        broker = Broker(lease_timeout=1.0, clock=clock)
        broker.submit("b", [JobPayload(echo, 0)])
        broker.pull("w1", max_jobs=1)
        broker.heartbeat("w1", _envelope({"worker.jobs": 1}))
        clock.advance(1.5)
        broker.pull("w2", max_jobs=1)  # reaps w1
        assert broker.obs_snapshot()["workers"]["w1"]["alive"] is False
        # The slow-but-alive worker beats again: marked up, totals kept.
        broker.heartbeat("w1", _envelope({"worker.jobs": 1}))
        record = broker.obs_snapshot()["workers"]["w1"]
        assert record["alive"] is True
        assert record["counters"] == {"worker.jobs": 2}

    def test_obs_snapshot_sections(self):
        broker = Broker(lease_timeout=10.0)
        snap = broker.obs_snapshot()
        assert set(snap) == {
            "queue", "cache", "workers", "fleet", "broker", "scheduler",
            "time",
        }
        assert snap["queue"] == broker.stats()
        assert snap["cache"] == broker.cache_stats()
        assert set(snap["time"]) == {"monotonic", "wall"}

    def test_obs_sample_records_into_history_ring(self):
        broker = Broker(lease_timeout=10.0)
        first = broker.obs_sample()
        second = broker.obs_sample()
        assert (first["seq"], second["seq"]) == (1, 2)
        assert [s["seq"] for s in broker.obs_history()] == [1, 2]
        assert [s["seq"] for s in broker.obs_history(since=1)] == [2]
        assert broker.obs_history(since=2) == []

    def test_completion_runtime_feeds_latency_histogram(self):
        clock = _FakeClock()
        broker = Broker(lease_timeout=10.0, clock=clock)
        broker.submit("b", [JobPayload(echo, 0)])
        (job_id, payload), = broker.pull("w1", max_jobs=1)
        broker.start("w1", job_id)
        broker.complete("w1", job_id, 0, runtime=0.25)
        hist = broker.obs_snapshot()["broker"]["histograms"][
            "broker.job_runtime_seconds"
        ]
        assert hist["count"] == 1
        assert hist["p50"] == pytest.approx(0.25, rel=0.1)


class TestMetricsShipper:
    def test_ships_deltas_exactly_once(self):
        obs.enable_metrics()
        shipper = _MetricsShipper()
        sent = []
        obs.counter("worker.jobs").inc(2)
        shipper.ship(sent.append)
        obs.counter("worker.jobs").inc(1)
        shipper.ship(sent.append)
        shipper.ship(sent.append)  # nothing new
        assert [e and e["counters"] for e in sent] == [
            {"worker.jobs": 2}, {"worker.jobs": 1}, None
        ]

    def test_failed_send_reships_the_same_delta(self):
        obs.enable_metrics()
        shipper = _MetricsShipper()
        obs.counter("worker.jobs").inc(4)

        def broken(envelope):
            raise ConnectionResetError("torn")

        with pytest.raises(ConnectionResetError):
            shipper.ship(broken)
        sent = []
        shipper.ship(sent.append)
        assert sent[0]["counters"] == {"worker.jobs": 4}

    def test_disabled_metrics_ship_nothing(self):
        shipper = _MetricsShipper()
        sent = []
        shipper.ship(sent.append)
        assert sent == [None]


# -- console + CLI ------------------------------------------------------


class TestConsole:
    SNAPSHOT = {
        "queue": {
            "workers": 2, "pending": 1, "leased": 2, "batches": 1,
            "completed": 7, "steals": 1, "reaped_jobs": 0,
            "dropped_batches": 0,
        },
        "cache": {
            "entries": 3, "bytes": 2048, "gets": 10, "hits": 4,
            "puts": 3, "evictions": 0,
        },
        "workers": {
            "w1": {
                "alive": True,
                "counters": {
                    "worker.jobs": 5, "worker.jobs_failed": 1,
                    "cachetier.hits": 3, "cachetier.misses": 1,
                },
                "gauges": {},
            },
            "w2": {
                "alive": False,
                "counters": {"worker.jobs": 2},
                "gauges": {},
            },
        },
        "fleet": {"counters": {"worker.jobs": 7, "faults.injected": 2}},
    }

    STAMPED = dict(
        SNAPSHOT,
        time={"monotonic": 100.0, "wall": 1000.0},
        workers={
            "w1": dict(SNAPSHOT["workers"]["w1"], last_beat=99.5),
            "w2": dict(SNAPSHOT["workers"]["w2"], last_beat=58.0),
        },
        broker={
            "histograms": {
                "broker.job_runtime_seconds": {
                    "count": 12, "sum": 3.0, "min": 0.1, "max": 0.9,
                    "p50": 0.2, "p95": 0.7, "p99": 0.85,
                }
            }
        },
    )

    def test_render_top_is_a_pure_text_frame(self):
        frame = render_top(self.SNAPSHOT)
        assert "workers 2  pending 1  leased 2" in frame
        assert "injected 2" in frame
        assert "2.0KiB" in frame
        assert "hit 40% (4/10)" in frame
        lines = [
            l for l in frame.splitlines()
            if l.startswith("w1") or l.startswith("w2")
        ]
        assert "up" in lines[0] and "gone" in lines[1]
        assert frame.endswith("q: quit   refresh: 0.0s\n")

    def test_render_top_rates_from_previous_frame(self):
        previous = {
            "workers": {
                "w1": {"alive": True, "counters": {"worker.jobs": 1}}
            }
        }
        frame = render_top(self.SNAPSHOT, previous=previous, interval=2.0)
        w1_line = next(
            l for l in frame.splitlines() if l.startswith("w1")
        )
        assert "2.00" in w1_line  # (5 - 1) / 2.0 jobs/s

    def test_render_top_empty_fleet(self):
        frame = render_top({})
        assert "no workers have reported metrics" in frame

    def test_render_top_shows_snapshot_age(self):
        frame = render_top(self.STAMPED, now_wall=1003.5)
        assert "age 3.5s" in frame
        # An unstamped snapshot (older broker) has no age to show.
        assert "age" not in render_top(self.SNAPSHOT).splitlines()[0]

    def test_render_top_marks_dead_workers_stale(self):
        previous = {
            "workers": {
                worker: {"alive": True, "counters": {"worker.jobs": 1}}
                for worker in ("w1", "w2")
            }
        }
        frame = render_top(
            self.STAMPED, previous=previous, interval=2.0, now_wall=1000.0
        )
        w1_line = next(
            l for l in frame.splitlines() if l.startswith("w1")
        )
        w2_line = next(
            l for l in frame.splitlines() if l.startswith("w2")
        )
        # Live worker: rate computed; dead worker: marked gone with its
        # last-beat age (broker clock) and never a live-looking rate.
        assert "2.00" in w1_line
        assert "gone 42.0s" in w2_line
        assert "0.50" not in w2_line  # (2 - 1) / 2.0 must NOT render

    def test_render_top_latency_row_from_histogram(self):
        frame = render_top(self.STAMPED, now_wall=1000.0)
        assert (
            "latency: job runtime p50 200ms  p95 700ms  p99 850ms  "
            "(n=12)" in frame
        )
        assert "latency:" not in render_top(self.SNAPSHOT)


class TestCli:
    def test_obs_dump_prints_local_snapshot_json(self, capsys):
        assert main(["obs", "dump"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tracing"]["enabled"] is False
        assert doc["counters"] == {}

    def test_trace_flag_exports_spans(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main([
            "simulate", "--scenario", "single-bus-4", "--budget", "8",
            "--duration", "100", "--reps", "1", "--trace", str(path),
        ]) == 0
        err = capsys.readouterr().err
        assert "# trace: wrote" in err
        doc = json.loads(path.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "sim.window" in names

    def test_quiet_silences_info_lines(self, tmp_path, capsys):
        out_json = tmp_path / "fleet.json"
        assert main([
            "dist", "run", "--scenario", "single-bus-4", "--budgets", "8",
            "--reps", "1", "--duration", "100", "--json", str(out_json),
            "--quiet",
        ]) == 0
        captured = capsys.readouterr()
        assert "# wrote" not in captured.err
        assert "single-bus-4" in captured.out  # the table still prints
