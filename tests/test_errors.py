"""Tests for the shared error hierarchy."""

import pytest

from repro.errors import (
    InfeasibleError,
    ModelError,
    PolicyError,
    ReproError,
    SimulationError,
    SolverError,
    TopologyError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "cls",
        [
            ModelError,
            TopologyError,
            SolverError,
            InfeasibleError,
            SimulationError,
            PolicyError,
        ],
    )
    def test_all_derive_from_repro_error(self, cls):
        assert issubclass(cls, ReproError)

    def test_infeasible_is_solver_error(self):
        assert issubclass(InfeasibleError, SolverError)

    def test_solver_error_status(self):
        err = SolverError("failed", status="4")
        assert err.status == "4"
        assert "failed" in str(err)

    def test_solver_error_default_status(self):
        assert SolverError("x").status == ""

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise InfeasibleError("nope")
