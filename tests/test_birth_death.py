"""Tests for repro.queueing.birth_death."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.queueing.birth_death import BirthDeathChain


class TestConstruction:
    def test_capacity_and_states(self):
        chain = BirthDeathChain([1.0, 1.0, 1.0], [2.0, 2.0, 2.0])
        assert chain.capacity == 3
        assert chain.num_states == 4

    def test_mismatched_lengths(self):
        with pytest.raises(ModelError, match="birth rates vs"):
            BirthDeathChain([1.0], [1.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ModelError, match="at least two states"):
            BirthDeathChain([], [])

    def test_negative_birth_rejected(self):
        with pytest.raises(ModelError, match="non-negative"):
            BirthDeathChain([-1.0], [1.0])

    def test_zero_death_rejected(self):
        with pytest.raises(ModelError, match="strictly positive"):
            BirthDeathChain([1.0], [0.0])

    def test_two_dimensional_rejected(self):
        with pytest.raises(ModelError, match="one-dimensional"):
            BirthDeathChain([[1.0]], [[1.0]])


class TestStationary:
    def test_symmetric_rates_uniform(self):
        chain = BirthDeathChain([1.0] * 4, [1.0] * 4)
        assert np.allclose(chain.stationary_distribution(), 0.2)

    def test_mm1k_geometric_form(self):
        lam, mu, k = 1.0, 2.0, 5
        chain = BirthDeathChain([lam] * k, [mu] * k)
        pi = chain.stationary_distribution()
        rho = lam / mu
        expected = rho ** np.arange(k + 1)
        expected /= expected.sum()
        assert np.allclose(pi, expected)

    def test_matches_full_ctmc_solve(self):
        rng = np.random.default_rng(7)
        births = rng.uniform(0.5, 3.0, size=6)
        deaths = rng.uniform(0.5, 3.0, size=6)
        chain = BirthDeathChain(births, deaths)
        pi_product = chain.stationary_distribution()
        pi_ctmc = chain.to_ctmc().stationary_distribution()
        assert np.allclose(pi_product, pi_ctmc, atol=1e-9)

    def test_zero_birth_rate_truncates(self):
        chain = BirthDeathChain([1.0, 0.0, 1.0], [1.0, 1.0, 1.0])
        pi = chain.stationary_distribution()
        assert pi[2] == 0.0
        assert pi[3] == 0.0

    def test_extreme_rates_stable(self):
        chain = BirthDeathChain([1e6] * 10, [1e-3] * 10)
        pi = chain.stationary_distribution()
        assert np.isfinite(pi).all()
        assert pi.sum() == pytest.approx(1.0)
        assert pi[-1] == pytest.approx(1.0, abs=1e-6)

    @given(
        k=st.integers(min_value=1, max_value=12),
        lam=st.floats(min_value=0.05, max_value=20.0),
        mu=st.floats(min_value=0.05, max_value=20.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_detailed_balance(self, k, lam, mu):
        chain = BirthDeathChain([lam] * k, [mu] * k)
        pi = chain.stationary_distribution()
        for i in range(k):
            assert pi[i] * lam == pytest.approx(pi[i + 1] * mu, rel=1e-6)


class TestMetrics:
    def test_blocking_probability_is_top_state(self):
        chain = BirthDeathChain([2.0] * 3, [1.0] * 3)
        pi = chain.stationary_distribution()
        assert chain.blocking_probability() == pytest.approx(pi[-1])

    def test_mean_level_bounds(self):
        chain = BirthDeathChain([1.0] * 5, [1.0] * 5)
        assert 0.0 <= chain.mean_level() <= 5.0
        assert chain.mean_level() == pytest.approx(2.5)

    def test_level_variance_nonnegative(self):
        chain = BirthDeathChain([3.0] * 4, [1.5] * 4)
        assert chain.level_variance() >= 0.0

    def test_tail_probability_monotone(self):
        chain = BirthDeathChain([1.0] * 6, [1.2] * 6)
        tails = [chain.tail_probability(l) for l in range(8)]
        assert tails[0] == 1.0
        assert tails[-1] == 0.0
        assert all(a >= b for a, b in zip(tails, tails[1:]))

    def test_quantile_extremes(self):
        chain = BirthDeathChain([1.0] * 4, [4.0] * 4)
        assert chain.quantile(1e-9) == 0
        assert chain.quantile(1.0) <= 4

    def test_quantile_validation(self):
        chain = BirthDeathChain([1.0], [1.0])
        with pytest.raises(ModelError):
            chain.quantile(0.0)
        with pytest.raises(ModelError):
            chain.quantile(1.5)

    def test_throughput_equals_death_flow(self):
        # In steady state, accepted birth flow equals death flow.
        chain = BirthDeathChain([2.0, 1.0, 0.5], [1.0, 1.5, 2.0])
        pi = chain.stationary_distribution()
        death_flow = sum(pi[i + 1] * chain.death_rates[i] for i in range(3))
        assert chain.throughput() == pytest.approx(death_flow)

    def test_loss_plus_throughput_equals_offered_for_constant_rates(self):
        lam = 2.0
        chain = BirthDeathChain([lam] * 5, [1.0] * 5)
        assert chain.throughput() + chain.loss_rate() == pytest.approx(lam)

    @given(
        k=st.integers(min_value=1, max_value=10),
        lam=st.floats(min_value=0.1, max_value=10.0),
        mu=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_flow_conservation(self, k, lam, mu):
        chain = BirthDeathChain([lam] * k, [mu] * k)
        assert chain.throughput() + chain.loss_rate() == pytest.approx(
            lam, rel=1e-9
        )
