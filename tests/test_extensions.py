"""Tests for repro.experiments.extensions (fast configurations)."""

import pytest

from repro.errors import ReproError
from repro.experiments.extensions import (
    _burstify,
    run_burstiness,
    run_weighted_loss,
)
from repro.arch.netproc import network_processor
from repro.arch.traffic import OnOffTraffic

FAST_SIZER = {"joint_state_limit": 300}


class TestBurstify:
    def test_preserves_mean_rates(self):
        topo = network_processor()
        bursty = _burstify(topo, scv_target=3.0)
        for name, flow in topo.flows.items():
            assert bursty.flows[name].rate == pytest.approx(
                flow.rate, rel=1e-9
            )

    def test_traffic_becomes_onoff(self):
        topo = network_processor()
        bursty = _burstify(topo, scv_target=2.0)
        assert all(
            isinstance(f.traffic, OnOffTraffic)
            for f in bursty.flows.values()
        )

    def test_structure_preserved(self):
        topo = network_processor()
        bursty = _burstify(topo, scv_target=2.0)
        assert set(bursty.buses) == set(topo.buses)
        assert set(bursty.bridges) == set(topo.bridges)

    def test_validation(self):
        with pytest.raises(ReproError):
            _burstify(network_processor(), scv_target=1.0)


class TestBurstinessExperiment:
    def test_runs_and_degrades(self):
        result = run_burstiness(
            scv_levels=(3.0,), budget=80, replications=1,
            duration=300.0, sizer_kwargs=FAST_SIZER,
        )
        assert len(result.losses) == 1
        # Bursty traffic with the same mean must lose at least as much.
        assert result.losses[0] >= result.poisson_loss * 0.8
        assert result.predicted_buffer_inflation[0] > 1.0
        assert "SCV" in result.render()

    def test_needs_levels(self):
        with pytest.raises(ReproError):
            run_burstiness(scv_levels=())


class TestWeightedLossExperiment:
    def test_protection_with_priority_arbitration(self):
        result = run_weighted_loss(
            critical=("p16",), weight=10.0, budget=80,
            replications=2, duration=400.0, sizer_kwargs=FAST_SIZER,
        )
        # With service priority deployed, the critical processor's loss
        # must not exceed the neutral configuration's by more than noise.
        assert result.critical_loss_weighted <= (
            result.critical_loss_unweighted + 2.0
        )
        assert "p16" in result.render()
        assert "price of protection" in result.render()

    def test_allocations_cover_same_clients(self):
        result = run_weighted_loss(
            critical=("p1",), weight=5.0, budget=80,
            replications=1, duration=200.0, sizer_kwargs=FAST_SIZER,
        )
        assert set(result.weighted_alloc_sizes) == set(
            result.unweighted_alloc_sizes
        )

    def test_weight_validation(self):
        with pytest.raises(ReproError):
            run_weighted_loss(weight=1.0)
