"""Tests for the scenario registry and the scenario-generic layers."""

import pytest

from repro import scenarios
from repro.errors import ReproError
from repro.exec import ExecutionContext
from repro.experiments.common import (
    POST,
    PRE,
    TIMEOUT,
    NetprocExperiment,
    ScenarioExperiment,
)
from repro.scenarios import ScenarioSpec, scaled_topology
from repro.scenarios.spec import template_builder

FAST_SIZER = {"joint_state_limit": 300}


class TestRegistry:
    def test_builtin_names(self):
        assert {"netproc", "fig1", "amba", "coreconnect"} <= set(
            scenarios.names()
        )

    def test_get_returns_spec(self):
        spec = scenarios.get("netproc")
        assert isinstance(spec, ScenarioSpec)
        assert spec.default_budget == 160
        assert spec.budgets == (160, 320, 640)
        assert spec.timeout_multiplier == 6.0

    def test_unknown_scenario_lists_options(self):
        with pytest.raises(ReproError, match="random-mesh"):
            scenarios.get("nope")

    def test_resolve_default_and_passthrough(self):
        assert scenarios.resolve(None).name == "netproc"
        spec = scenarios.get("amba")
        assert scenarios.resolve(spec) is spec
        assert scenarios.resolve("amba").name == "amba"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ReproError, match="already registered"):
            scenarios.register(scenarios.get("amba"))
        # replace=True is the explicit override.
        scenarios.register(scenarios.get("amba"), replace=True)

    def test_topologies_build_and_validate(self):
        for name in scenarios.names():
            topology = scenarios.get(name).topology()
            assert topology.processors

    def test_families_listed(self):
        patterns = [f.pattern for f in scenarios.families()]
        assert "random-mesh-<clusters>-<seed>" in patterns
        assert "single-bus-<n>" in patterns


class TestParametricFamilies:
    def test_random_mesh_resolves(self):
        spec = scenarios.get("random-mesh-3-11")
        topology = spec.topology()
        assert len(topology.buses) == 3
        assert len(topology.processors) == 9
        assert spec.params["seed"] == 11

    def test_random_mesh_members_are_distinct(self):
        a = scenarios.get("random-mesh-3-11").topology()
        b = scenarios.get("random-mesh-3-12").topology()
        assert a.name != b.name

    def test_random_mesh_deterministic(self):
        rates_a = [
            f.traffic.mean_rate
            for f in scenarios.get("random-mesh-2-5").topology().flows.values()
        ]
        rates_b = [
            f.traffic.mean_rate
            for f in scenarios.get("random-mesh-2-5").topology().flows.values()
        ]
        assert rates_a == rates_b

    def test_family_names_canonicalized(self):
        # Zero-padded aliases resolve to the canonical spelling, so
        # both share one cache scope.
        alias = scenarios.get("random-mesh-04-7")
        canonical = scenarios.get("random-mesh-4-7")
        assert alias.name == canonical.name == "random-mesh-4-7"
        assert alias.cache_scope() == canonical.cache_scope()
        assert scenarios.get("single-bus-04").name == "single-bus-4"

    def test_single_bus_resolves(self):
        topology = scenarios.get("single-bus-6").topology()
        assert len(topology.processors) == 6
        assert len(topology.bridges) == 0

    def test_family_validation(self):
        with pytest.raises(ReproError):
            scenarios.get("single-bus-1")


class TestScenarioSpec:
    def test_load_scale_scales_mean_rates(self):
        spec = scenarios.get("amba")
        base = spec.topology()
        scaled = spec.topology(load_scale=1.5)
        for name, flow in base.flows.items():
            assert scaled.flows[name].traffic.mean_rate == pytest.approx(
                1.5 * flow.traffic.mean_rate
            )

    def test_scaled_topology_identity_at_unit(self):
        topology = scenarios.get("fig1").topology()
        assert scaled_topology(topology, 1.0) is topology

    def test_scaled_topology_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            scaled_topology(scenarios.get("fig1").topology(), 0.0)

    def test_cache_scope_distinct_per_member(self):
        a = scenarios.get("random-mesh-3-11").cache_scope()
        b = scenarios.get("random-mesh-3-12").cache_scope()
        assert a != b

    def test_spec_validation(self):
        with pytest.raises(ReproError):
            ScenarioSpec(
                name="",
                description="x",
                builder=template_builder(lambda: None),
            )
        with pytest.raises(ReproError):
            ScenarioSpec(
                name="x",
                description="x",
                builder=template_builder(lambda: None),
                budgets=(),
            )


class TestScenarioExperiment:
    @pytest.fixture(scope="class")
    def amba_experiment(self):
        return ScenarioExperiment.build(
            scenario="amba", calibration_duration=200.0
        )

    def test_three_configurations(self, amba_experiment):
        assert set(amba_experiment.allocations) == {PRE, POST, TIMEOUT}
        assert amba_experiment.scenario.name == "amba"

    def test_budget_defaults_to_spec(self, amba_experiment):
        assert amba_experiment.allocations[PRE].total == 18
        assert amba_experiment.allocations[POST].total == 18

    def test_threshold_positive(self, amba_experiment):
        assert amba_experiment.timeout_threshold > 0

    def test_netproc_alias_equivalent(self):
        """The netproc alias and the generic builder agree exactly."""
        legacy = NetprocExperiment.build(
            budget=80, calibration_duration=200.0, sizer_kwargs=FAST_SIZER
        )
        generic = ScenarioExperiment.build(
            scenario="netproc",
            budget=80,
            calibration_duration=200.0,
            sizer_kwargs=FAST_SIZER,
        )
        assert legacy.allocations[POST].sizes == generic.allocations[POST].sizes
        assert legacy.timeout_threshold == generic.timeout_threshold
        assert legacy.processors == generic.processors

    def test_timeout_multiplier_from_spec(self):
        """The multiplier knob lives on the spec, not a class constant."""
        assert not hasattr(NetprocExperiment, "TIMEOUT_MULTIPLIER")
        spec = scenarios.get("amba")
        base = ScenarioExperiment.build(
            scenario="amba", calibration_duration=200.0
        )
        doubled = ScenarioExperiment.build(
            scenario="amba",
            calibration_duration=200.0,
            timeout_multiplier=2 * spec.timeout_multiplier,
        )
        assert doubled.timeout_threshold == pytest.approx(
            2 * base.timeout_threshold
        )


class TestScenarioCacheScoping:
    def test_sizing_keys_distinct_per_scenario(self, tmp_path):
        """Same topology, different scenario scope -> different entries."""
        topology = scenarios.get("amba").topology()
        ctx_a = ExecutionContext.create(cache_dir=tmp_path).scoped(
            scenarios.get("amba")
        )
        ctx_b = ExecutionContext.create(cache_dir=tmp_path).scoped(
            scenarios.get("coreconnect")
        )
        ctx_a.size(topology, 12)
        assert ctx_a.cache.misses == 1
        ctx_b.size(topology, 12)
        # A hit would mean scenario scope is not part of the key.
        assert ctx_b.cache.misses == 1
        assert ctx_b.cache.hits == 0
        # Same scope re-uses the entry.
        again = ExecutionContext.create(cache_dir=tmp_path).scoped(
            scenarios.get("amba")
        )
        again.size(topology, 12)
        assert again.cache.hits == 1

    def test_replication_keys_distinct_per_scenario(self, tmp_path):
        topology = scenarios.get("amba").topology()
        caps = {name: 3 for name in topology.processors}
        for bridge in topology.bridges.values():
            caps[f"{bridge.name}@{bridge.bus_a}"] = 3
            caps[f"{bridge.name}@{bridge.bus_b}"] = 3
        ctx_a = ExecutionContext.create(cache_dir=tmp_path).scoped(
            scenarios.get("amba")
        )
        ctx_b = ExecutionContext.create(cache_dir=tmp_path).scoped(
            scenarios.get("coreconnect")
        )
        ctx_a.replicate(topology, caps, replications=1, duration=80.0)
        ctx_b.replicate(topology, caps, replications=1, duration=80.0)
        assert ctx_b.cache.hits == 0
        assert ctx_b.cache.misses == 1

    def test_unscoped_keys_unchanged(self, tmp_path):
        """A scope of None leaves payloads (hence keys) unscoped."""
        topology = scenarios.get("amba").topology()
        plain = ExecutionContext.create(cache_dir=tmp_path)
        assert plain.scenario is None
        plain.size(topology, 12)
        second = ExecutionContext.create(cache_dir=tmp_path)
        second.size(topology, 12)
        assert second.cache.hits == 1

    def test_spec_accepted_anywhere_a_scope_is(self, tmp_path):
        # Constructor, create() and scoped() all normalise a raw
        # ScenarioSpec to its cache_scope() — the spec itself carries
        # callables the cache hasher cannot canonicalise.
        spec = scenarios.get("amba")
        for context in (
            ExecutionContext(scenario=spec),
            ExecutionContext.create(cache_dir=tmp_path, scenario=spec),
            ExecutionContext.create(cache_dir=tmp_path).scoped(spec),
        ):
            assert context.scenario == spec.cache_scope()
        cached = ExecutionContext.create(cache_dir=tmp_path, scenario=spec)
        cached.size(spec.topology(), 12)
        assert cached.cache.misses == 1

    def test_scoped_is_idempotent_and_shares_cache(self, tmp_path):
        context = ExecutionContext.create(cache_dir=tmp_path)
        spec = scenarios.get("amba")
        scoped = context.scoped(spec)
        assert scoped.scoped(spec) is scoped
        assert scoped.cache is context.cache
        assert context.scenario is None  # parent untouched

    def test_sweep_keys_scenario_scoped(self, tmp_path):
        topology = scenarios.get("amba").topology()
        ctx_a = ExecutionContext.create(cache_dir=tmp_path).scoped(
            scenarios.get("amba")
        )
        ctx_a.sweep(topology, [12, 14])
        misses_before = ctx_a.cache.misses
        ctx_b = ExecutionContext.create(cache_dir=tmp_path).scoped(
            scenarios.get("coreconnect")
        )
        ctx_b.sweep(topology, [12, 14])
        assert ctx_b.cache.hits == 0
        # Re-sweeping under the original scope hits both budgets.
        ctx_c = ExecutionContext.create(cache_dir=tmp_path).scoped(
            scenarios.get("amba")
        )
        ctx_c.sweep(topology, [12, 14])
        assert ctx_c.cache.hits == 2
        assert misses_before == 2


class TestScenarioDrivers:
    def test_figure3_alternative_scenario(self):
        from repro.experiments import run_figure3

        result = run_figure3(
            scenario="amba", duration=120.0, replications=1
        )
        assert result.experiment.scenario.name == "amba"
        assert result.budget == 18
        data = result.per_processor()
        assert set(data) == {PRE, POST, TIMEOUT}
        assert set(data[PRE]) == {"cpu", "dma", "timer", "uart"}
        assert "[amba]" in result.render(width=16)

    def test_table1_alternative_scenario(self):
        from repro.experiments import run_table1

        result = run_table1(
            scenario="coreconnect",
            budgets=(14, 20),
            duration=120.0,
            replications=1,
        )
        assert result.budgets == [14, 20]
        assert result.cell(14, "eth", PRE) >= 0
        assert "Buf 14 pre" in result.render(("eth", "ppc"))
        # Default rows adapt to the scenario: none of the paper's
        # p1/p4/p15/p16 exist here, so every processor is shown.
        default_render = result.render()
        for proc in ("accel", "eth", "gpio", "ppc"):
            assert proc in default_render
        assert "p15" not in default_render

    def test_table1_budgets_default_to_spec(self):
        from repro.experiments import run_table1

        result = run_table1(
            scenario="single-bus-4", duration=100.0, replications=1
        )
        assert result.budgets == [8, 16, 32]
        # Colliding p<i> names must not truncate to the paper's netproc
        # row subset: every processor of the scenario is shown.
        default_render = result.render()
        for proc in ("p1", "p2", "p3", "p4"):
            assert proc in default_render

    def test_extensions_alternative_scenario(self):
        from repro.experiments import run_burstiness, run_weighted_loss

        burst = run_burstiness(
            scv_levels=(2.0,),
            scenario="amba",
            replications=1,
            duration=100.0,
        )
        assert len(burst.losses) == 1
        weighted = run_weighted_loss(
            weight=4.0, scenario="amba", replications=1, duration=100.0
        )
        # No declared critical set: first/last processor in report order.
        assert weighted.critical == ["cpu", "uart"]

    def test_policy_sweep_alternative_scenario(self):
        from repro.experiments import run_policy_sweep

        result = run_policy_sweep(
            load_scales=(1.0,),
            budget=16,
            replications=1,
            duration=100.0,
            scenario="amba",
        )
        assert set(result.totals()) == {
            "uniform", "proportional", "analytic", "ctmdp",
        }


class TestScenarioCLI:
    def test_scenarios_list(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("netproc", "fig1", "amba", "coreconnect"):
            assert name in out
        assert "random-mesh-<clusters>-<seed>" in out
        # >= 5 selectable scenarios: 4 fixed + parametric families.
        assert len(scenarios.names()) + len(scenarios.families()) >= 5

    def test_size_scenario_flag(self, capsys):
        from repro.cli import main

        assert main(["size", "--scenario", "amba"]) == 0
        out = capsys.readouterr().out
        assert "# allocation (budget 18)" in out

    def test_size_scenario_and_file_conflict(self, tmp_path, capsys):
        from repro.arch.dsl import serialize_topology
        from repro.cli import main

        path = tmp_path / "a.soc"
        path.write_text(
            serialize_topology(scenarios.get("amba").topology())
        )
        assert main(
            ["size", str(path), "--scenario", "amba", "--budget", "12"]
        ) == 2
        assert "not both" in capsys.readouterr().err

    def test_size_requires_some_architecture(self, capsys):
        from repro.cli import main

        assert main(["size", "--budget", "12"]) == 2
        assert "--scenario" in capsys.readouterr().err

    def test_simulate_scenario_flag(self, capsys):
        from repro.cli import main

        assert main([
            "simulate", "--scenario", "single-bus-4",
            "--duration", "100", "--reps", "1",
        ]) == 0
        assert "mean total loss" in capsys.readouterr().out

    def test_figure3_scenario_flag_end_to_end(self, capsys):
        from repro.cli import main

        assert main([
            "figure3", "--scenario", "amba",
            "--duration", "100", "--reps", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "[amba]" in out
        assert "post vs pre improvement" in out

    def test_table1_scenario_flag(self, capsys):
        from repro.cli import main

        assert main([
            "table1", "--scenario", "single-bus-4",
            "--duration", "100", "--reps", "1",
        ]) == 0
        assert "Buf 8 pre" in capsys.readouterr().out

    def test_unknown_scenario_is_an_error(self, capsys):
        from repro.cli import main

        assert main(["size", "--scenario", "not-a-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestFamilyDocumentation:
    def test_every_family_declares_grammar_and_example(self):
        for family in scenarios.families():
            assert family.grammar, f"{family.pattern} lacks a grammar"
            assert family.example, f"{family.pattern} lacks an example"

    def test_family_examples_resolve_to_canonical_members(self):
        for family in scenarios.families():
            spec = scenarios.get(family.example)
            # The example is spelled canonically, so the listing, the
            # cache scope and --scenario all agree on one name.
            assert spec.name == family.example
            assert spec.topology().processors
