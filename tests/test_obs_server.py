"""Tests for the fleet observatory — HTTP service, exposition, history.

Three layers, matching the module split:

* ``repro.obs.history`` — the broker-side snapshot ring and the SSE
  delta computation (pure data structures, no sockets).
* ``repro.obs.promexport`` — the Prometheus text exposition and its
  strict conformance parser; the round-trip tests assert the scraped
  counter totals equal ``obs_snapshot()``'s for the same instant.
* ``repro.obs.server`` — the real asyncio HTTP service, exercised over
  actual sockets in both modes: in-process (``LocalBrokerSource``)
  against a populated broker, and standalone (``RemoteBrokerSource``)
  against a broker that is then stopped, asserting the service
  degrades to stale data instead of dying.  The SSE test runs a real
  two-worker fleet, SIGKILLs a worker mid-stream, and asserts the
  fleet counter totals reported by the event stream never shrink.
"""

import http.client
import json
import multiprocessing
import os
import signal
import socket
import threading
import time

import pytest

from repro.dist import Broker, BrokerServer, DistExecutor, worker_loop
from repro.errors import ReproError
from repro.obs.history import SnapshotHistory, counter_deltas
from repro.obs.promexport import (
    PromFormatError,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.server import LocalBrokerSource, ObsServer, RemoteBrokerSource
from repro.retry import RetryPolicy

#: Short lease so the reap after a SIGKILL happens in seconds (workers
#: beat every lease/4, so a loaded CI box never reaps a live worker).
LEASE_TIMEOUT = 2.0

_FORK = multiprocessing.get_context("fork")

_FAST_RETRY = RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.02)


def _slow_double(x):
    time.sleep(0.05)
    return 2 * x


def _start_worker(address, **kwargs):
    kwargs.setdefault("poll_interval", 0.02)
    process = _FORK.Process(
        target=worker_loop, args=(address,), kwargs=kwargs, daemon=True
    )
    process.start()
    return process


def _populate(broker):
    """Drive a broker through enough protocol to light every section."""
    broker.submit("batch-1", ["p0", "p1", "p2"])
    granted = broker.pull("w1", max_jobs=2)
    for job_id, payload in granted:
        broker.start("w1", job_id)
        broker.complete("w1", job_id, payload.upper(), runtime=0.2)
    broker.heartbeat(
        "w1",
        metrics={
            "counters": {
                "worker.jobs": 2,
                "cachetier.hits": 1,
                "cachetier.misses": 1,
                "scenario.replications.erlang": 8,
                "scenario.blocks.erlang": 2,
            },
            "gauges": {"worker.outbox": 0},
        },
    )
    broker.heartbeat(
        "w2",
        metrics={
            "counters": {"worker.jobs": 3, "scenario.replications.erlang": 4},
            "gauges": {},
        },
    )
    broker.cache_put("key-a", b"blob")
    broker.cache_get("key-a")
    broker.cache_get("missing")
    return broker


def _get(address, path, method="GET"):
    """One HTTP request; returns ``(status, headers, body_bytes)``."""
    connection = http.client.HTTPConnection(address[0], address[1], timeout=10)
    try:
        connection.request(method, path)
        response = connection.getresponse()
        return (
            response.status,
            {k.lower(): v for k, v in response.getheaders()},
            response.read(),
        )
    finally:
        connection.close()


def _read_sse_events(sock_file, count, deadline, stop=None):
    """Parse up to ``count`` SSE events (id/event/data) from a stream.

    ``stop(event)`` may end the read early once a condition is met —
    the kill test reads until it has *seen* the reap, not a fixed N.
    """
    events = []
    current = {"id": None, "event": "message", "data": ""}
    while len(events) < count and time.monotonic() < deadline:
        line = sock_file.readline()
        if not line:
            break
        line = line.decode("utf-8").rstrip("\n")
        if line.startswith(":"):
            continue  # keepalive comment
        if not line:
            if current["data"]:
                current["data"] = json.loads(current["data"])
                events.append(current)
                if stop is not None and stop(current):
                    break
            current = {"id": None, "event": "message", "data": ""}
            continue
        key, _, value = line.partition(":")
        value = value.lstrip(" ")
        if key == "id":
            current["id"] = int(value)
        elif key == "event":
            current["event"] = value
        elif key == "data":
            current["data"] += value
    return events


def _open_sse(address, path):
    """Open ``/events`` raw (http.client buffers SSE unhelpfully)."""
    sock = socket.create_connection(address, timeout=10)
    request = (
        "GET %s HTTP/1.1\r\nHost: %s:%d\r\nAccept: text/event-stream\r\n"
        "\r\n" % (path, address[0], address[1])
    )
    sock.sendall(request.encode("latin-1"))
    sock_file = sock.makefile("rb")
    status_line = sock_file.readline().decode("latin-1")
    assert " 200 " in status_line, status_line
    while sock_file.readline() not in (b"\r\n", b"\n", b""):
        pass  # drain response headers
    return sock, sock_file


# ----------------------------------------------------------------------
# The snapshot ring and delta computation.


class TestSnapshotHistory:
    def test_record_stamps_monotonic_seq(self):
        ring = SnapshotHistory(capacity=8)
        assert ring.record({"a": 1}) == 1
        assert ring.record({"a": 2}) == 2
        assert ring.latest()["seq"] == 2
        assert ring.recorded == 2

    def test_since_returns_strictly_newer_entries(self):
        ring = SnapshotHistory(capacity=8)
        for i in range(5):
            ring.record({"i": i})
        assert [s["i"] for s in ring.since(3)] == [3, 4]
        assert ring.since(5) == []
        assert [s["i"] for s in ring.since(0, limit=2)] == [3, 4]

    def test_capacity_bounds_the_ring_but_not_the_seq(self):
        ring = SnapshotHistory(capacity=3)
        for i in range(10):
            ring.record({"i": i})
        entries = ring.since(0)
        assert [s["seq"] for s in entries] == [8, 9, 10]
        assert ring.recorded == 10

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SnapshotHistory(capacity=0)


class TestCounterDeltas:
    def test_positive_movement_across_sections(self):
        previous = {
            "queue": {"completed": 5, "pending": 9},
            "cache": {"gets": 1},
            "fleet": {"counters": {"worker.jobs": 10}},
        }
        current = {
            "queue": {"completed": 8, "pending": 2},
            "cache": {"gets": 4},
            "fleet": {"counters": {"worker.jobs": 12, "new.counter": 1}},
        }
        deltas = counter_deltas(previous, current)
        assert deltas["queue.completed"] == 3
        assert deltas["cache.gets"] == 3
        assert deltas["fleet.counters.worker.jobs"] == 2
        assert deltas["fleet.counters.new.counter"] == 1
        # pending shrank: a level going down is not a delta.
        assert "queue.pending" not in deltas

    def test_none_previous_counts_everything_positive(self):
        deltas = counter_deltas(None, {"queue": {"completed": 7, "idle": 0}})
        assert deltas == {"queue.completed": 7}

    def test_non_numeric_and_bool_leaves_are_skipped(self):
        deltas = counter_deltas(
            {"queue": {}},
            {"queue": {"completed": 2, "schedule": "cost", "alive": True}},
        )
        assert deltas == {"queue.completed": 2}


# ----------------------------------------------------------------------
# Prometheus exposition: render → strict parse → totals round-trip.


class TestPromRoundTrip:
    def test_counter_totals_equal_obs_snapshot(self):
        broker = _populate(Broker(lease_timeout=LEASE_TIMEOUT))
        snapshot = broker.obs_sample()
        families = parse_prometheus(render_prometheus(snapshot))

        def only(family, **labels):
            matches = [
                value
                for _, sample_labels, value in families[family]["samples"]
                if all(sample_labels.get(k) == v for k, v in labels.items())
            ]
            assert len(matches) == 1, (family, labels, matches)
            return matches[0]

        assert families["repro_queue_completed_total"]["type"] == "counter"
        assert (
            only("repro_queue_completed_total")
            == snapshot["queue"]["completed"]
        )
        assert only("repro_queue_pending") == snapshot["queue"]["pending"]
        for key in ("gets", "hits", "puts", "evictions"):
            assert (
                only("repro_cache_%s_total" % key) == snapshot["cache"][key]
            )
        # Per-worker totals carry the counter name in a label.
        assert only(
            "repro_worker_counter_total", worker="w1", counter="worker.jobs"
        ) == 2
        assert only("repro_worker_alive", worker="w1") == 1
        # Fleet sums: w1's 2 + w2's 3.
        assert only("repro_fleet_counter_total", counter="worker.jobs") == 5
        for name, value in snapshot["fleet"]["counters"].items():
            if name.startswith("scenario."):
                continue
            assert only("repro_fleet_counter_total", counter=name) == value

    def test_scenario_counters_split_with_scenario_label(self):
        broker = _populate(Broker(lease_timeout=LEASE_TIMEOUT))
        families = parse_prometheus(render_prometheus(broker.obs_sample()))
        replications = families["repro_fleet_scenario_replications_total"]
        assert replications["type"] == "counter"
        assert replications["samples"] == [
            ("repro_fleet_scenario_replications_total", {"scenario": "erlang"}, 12.0)
        ]
        blocks = families["repro_fleet_scenario_blocks_total"]
        assert blocks["samples"][0][1] == {"scenario": "erlang"}
        # The raw prefixed names must not leak into the plain family.
        plain = families["repro_fleet_counter_total"]["samples"]
        assert not any(
            labels["counter"].startswith("scenario.") for _, labels, _ in plain
        )

    def test_runtime_histogram_exposed_as_summary(self):
        broker = _populate(Broker(lease_timeout=LEASE_TIMEOUT))
        snapshot = broker.obs_sample()
        families = parse_prometheus(render_prometheus(snapshot))
        summary = families["repro_broker_job_runtime_seconds"]
        assert summary["type"] == "summary"
        by_name = {}
        for sample_name, labels, value in summary["samples"]:
            by_name.setdefault(sample_name, []).append((labels, value))
        quantiles = dict(
            (labels["quantile"], value)
            for labels, value in by_name["repro_broker_job_runtime_seconds"]
        )
        assert set(quantiles) == {"0.50", "0.95", "0.99"}
        assert quantiles["0.50"] == pytest.approx(0.2, rel=0.1)
        assert by_name["repro_broker_job_runtime_seconds_count"][0][1] == 2
        assert by_name["repro_broker_job_runtime_seconds_sum"][0][1] == (
            pytest.approx(0.4)
        )

    def test_stale_flags(self):
        broker = _populate(Broker(lease_timeout=LEASE_TIMEOUT))
        snapshot = broker.obs_sample()
        fresh = parse_prometheus(render_prometheus(snapshot, stale=False))
        assert fresh["repro_scrape_stale"]["samples"][0][2] == 0
        assert "repro_scrape_age_seconds" not in fresh
        stale = parse_prometheus(
            render_prometheus(snapshot, stale=True, age_seconds=12.5)
        )
        assert stale["repro_scrape_stale"]["samples"][0][2] == 1
        assert stale["repro_scrape_age_seconds"]["samples"][0][2] == 12.5

    def test_label_escaping_round_trips(self):
        broker = Broker(lease_timeout=LEASE_TIMEOUT)
        weird = 'wo"rk\\er\nid'
        broker.heartbeat(weird, metrics={"counters": {"worker.jobs": 1}})
        families = parse_prometheus(render_prometheus(broker.obs_sample()))
        alive = families["repro_worker_alive"]["samples"]
        assert [labels["worker"] for _, labels, _ in alive] == [weird]


class TestPromParserStrictness:
    @pytest.mark.parametrize(
        "text",
        [
            "# TYPE bad-name counter\n",
            "# TYPE x bogus\n",
            "# TYPE x\n",
            "x 1\n# TYPE x counter\n",
            "# TYPE x counter\n# TYPE x counter\n",
            "# HELP x a\n# HELP x b\n",
            'x{l="1"} 1\nx{l="1"} 2\n',
            'x{9bad="v"} 1\n',
            'x{l="\\q"} 1\n',
            'x{l="unterminated\n',
            'x{l="v" 1\n',
            "x notanumber\n",
            "x 1 notatimestamp\n",
            "x 1 2 3\n",
            "{} 1\n",
        ],
    )
    def test_rejects_malformed_bodies(self, text):
        with pytest.raises(PromFormatError):
            parse_prometheus(text)

    def test_accepts_the_corners_of_the_format(self):
        families = parse_prometheus(
            "# a plain comment\n"
            "# HELP up Is it up.\n"
            "# TYPE up gauge\n"
            "up 1 1700000000000\n"
            "untyped_sample 3.5\n"
            'edge{l="a\\\\b\\"c\\nd"} +Inf\n'
            "nan_sample NaN\n"
        )
        assert families["up"]["type"] == "gauge"
        assert families["untyped_sample"]["type"] == "untyped"
        (_, labels, value) = families["edge"]["samples"][0]
        assert labels == {"l": 'a\\b"c\nd'}
        assert value == float("inf")

    def test_summary_children_fold_into_their_family(self):
        families = parse_prometheus(
            "# TYPE lat summary\n"
            'lat{quantile="0.5"} 1\n'
            "lat_sum 2\n"
            "lat_count 3\n"
        )
        assert set(families) == {"lat"}
        assert len(families["lat"]["samples"]) == 3


# ----------------------------------------------------------------------
# The HTTP service, in-process mode, over real sockets.


@pytest.fixture()
def obs_http():
    broker = _populate(Broker(lease_timeout=LEASE_TIMEOUT))
    server = ObsServer(
        LocalBrokerSource(broker), port=0, interval=0.1
    ).start_in_thread()
    yield broker, server
    server.stop()


class TestObsServerEndpoints:
    def test_healthz_reports_ok(self, obs_http):
        _broker, server = obs_http
        # The first probe can race the very first sampler tick.
        deadline = time.monotonic() + 10
        while True:
            status, _headers, body = _get(server.address, "/healthz")
            if status == 200 or time.monotonic() > deadline:
                break
            time.sleep(0.05)
        assert status == 200, body
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["broker"] == "ok"
        assert health["source"] == "in-process broker"
        assert health["samples"] >= 1

    def test_snapshot_serves_the_full_fleet_json(self, obs_http):
        broker, server = obs_http
        status, headers, body = _get(server.address, "/snapshot")
        assert status == 200
        assert headers["content-type"] == "application/json"
        snapshot = json.loads(body)
        assert snapshot["stale"] is False
        assert snapshot["seq"] >= 1
        assert snapshot["queue"]["completed"] == 2
        assert set(snapshot["workers"]) == {"w1", "w2"}
        assert snapshot["age_seconds"] < 5.0

    def test_metrics_scrape_matches_obs_snapshot_exactly(self, obs_http):
        broker, server = obs_http
        status, headers, body = _get(server.address, "/metrics")
        assert status == 200
        assert headers["content-type"].startswith(
            "text/plain; version=0.0.4"
        )
        families = parse_prometheus(body.decode("utf-8"))
        # The scrape samples the broker at request time, and the broker
        # is idle here — so the scraped totals must equal the
        # snapshot's, not approximate them.
        snapshot = broker.obs_snapshot()
        completed = families["repro_queue_completed_total"]["samples"][0][2]
        assert completed == snapshot["queue"]["completed"]
        stale = families["repro_scrape_stale"]["samples"][0][2]
        assert stale == 0

    def test_dashboard_smoke(self, obs_http):
        _broker, server = obs_http
        status, headers, body = _get(server.address, "/")
        assert status == 200
        assert headers["content-type"] == "text/html; charset=utf-8"
        page = body.decode("utf-8")
        assert "<!doctype html>" in page.lower()
        assert "repro fleet" in page
        assert "EventSource" in page
        assert "<canvas" in page or "canvas" in page

    def test_unknown_path_is_404_and_post_is_405(self, obs_http):
        _broker, server = obs_http
        status, _headers, _body = _get(server.address, "/nope")
        assert status == 404
        status, _headers, _body = _get(server.address, "/snapshot", "POST")
        assert status == 405

    def test_events_backfills_the_ring_then_streams_live(self, obs_http):
        broker, server = obs_http
        # Pre-record history so ?since=0 has a tail to replay.
        first = broker.obs_sample()["seq"]
        second = broker.obs_sample()["seq"]
        sock, sock_file = _open_sse(server.address, "/events?since=0")
        try:
            sock.settimeout(10)
            events = _read_sse_events(
                sock_file, count=4, deadline=time.monotonic() + 10
            )
        finally:
            sock.close()
        assert len(events) >= 3
        assert all(e["event"] == "snapshot" for e in events)
        seqs = [e["id"] for e in events]
        assert seqs[0] == first or seqs[0] == 1
        assert second in seqs
        # Strictly increasing: the live tail never re-delivers what the
        # backfill already sent.
        assert seqs == sorted(set(seqs))
        assert all("queue" in e["data"] for e in events)

    def test_rejects_a_second_server_on_the_same_port(self, obs_http):
        _broker, server = obs_http
        clash = ObsServer(
            LocalBrokerSource(Broker(lease_timeout=LEASE_TIMEOUT)),
            port=server.address[1],
        )
        with pytest.raises(ReproError, match="failed to start"):
            clash.start_in_thread()

    def test_interval_must_be_positive(self):
        with pytest.raises(ReproError):
            ObsServer(LocalBrokerSource(None), interval=0.0)


# ----------------------------------------------------------------------
# Standalone mode: the service outlives the broker it watches.


class TestStandaloneDegradation:
    def test_broker_loss_degrades_to_stale_not_dead(self):
        broker_server = BrokerServer(
            port=0, lease_timeout=LEASE_TIMEOUT
        ).start_in_thread()
        _populate(broker_server.broker)
        source = RemoteBrokerSource(
            broker_server.address, retry=_FAST_RETRY
        )
        server = ObsServer(
            source, port=0, interval=0.05, stale_after=600.0
        ).start_in_thread()
        try:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                status, _headers, body = _get(server.address, "/healthz")
                if status == 200:
                    break
                time.sleep(0.05)
            assert status == 200, body
            health = json.loads(body)
            assert health["broker"] == "ok"
            assert "broker at" in health["source"]

            broker_server.stop()

            # The sampler keeps failing until /healthz concedes; the
            # stale_after ceiling is irrelevant — broker_ok drives it.
            while time.monotonic() < deadline:
                status, _headers, body = _get(server.address, "/healthz")
                if status == 503:
                    break
                time.sleep(0.05)
            assert status == 503, body
            health = json.loads(body)
            assert health["status"] == "stale"
            assert health["broker"] == "unreachable"
            assert health["failures"] >= 1

            # Scrapes still answer 200 from the cached snapshot, marked.
            status, _headers, body = _get(server.address, "/metrics")
            assert status == 200
            families = parse_prometheus(body.decode("utf-8"))
            assert families["repro_scrape_stale"]["samples"][0][2] == 1
            completed = families["repro_queue_completed_total"]["samples"]
            assert completed[0][2] == 2  # the last truth it saw

            status, _headers, body = _get(server.address, "/snapshot")
            assert status == 200
            assert json.loads(body)["stale"] is True
        finally:
            server.stop()

    def test_no_snapshot_yet_is_503_everywhere(self):
        # A broker that never answers: nothing sampled, nothing cached.
        dead = socket.socket()
        dead.bind(("127.0.0.1", 0))
        try:
            source = RemoteBrokerSource(
                dead.getsockname(), retry=_FAST_RETRY
            )
            server = ObsServer(source, port=0, interval=0.05)
            server.start_in_thread()
            try:
                status, _headers, _body = _get(server.address, "/healthz")
                assert status == 503
                status, _headers, _body = _get(server.address, "/snapshot")
                assert status == 503
                status, _headers, _body = _get(server.address, "/metrics")
                assert status == 503
            finally:
                server.stop()
        finally:
            dead.close()


# ----------------------------------------------------------------------
# SSE under fire: kill a worker mid-stream, totals must never shrink.


class TestSSEUnderWorkerDeath:
    def test_fleet_counter_totals_never_shrink_across_a_kill(self):
        broker_server = BrokerServer(
            port=0, lease_timeout=LEASE_TIMEOUT
        ).start_in_thread()
        server = ObsServer(
            LocalBrokerSource(broker_server.broker), port=0, interval=0.1
        ).start_in_thread()
        workers = [_start_worker(broker_server.address) for _ in range(2)]
        executor = DistExecutor(broker_server.address, timeout=60)
        sock = None
        map_result = {}

        def _run_map():
            map_result["results"] = executor.map(
                _slow_double, list(range(40))
            )

        mapper = threading.Thread(target=_run_map, daemon=True)
        try:
            sock, sock_file = _open_sse(server.address, "/events?since=0")
            sock.settimeout(30)
            mapper.start()

            # Let the fleet make visible progress, then kill one worker
            # mid-job — its leased jobs are reaped and re-run, but its
            # shipped counters must survive as a dead worker's totals.
            deadline = time.monotonic() + 60
            warmup = _read_sse_events(
                sock_file,
                count=1000,
                deadline=deadline,
                stop=lambda e: (
                    e["data"].get("fleet", {})
                    .get("counters", {})
                    .get("worker.jobs", 0)
                    > 0
                ),
            )
            assert warmup, "fleet never reported progress over SSE"
            os.kill(workers[0].pid, signal.SIGKILL)

            # Keep reading until a snapshot shows the dead worker
            # reaped (alive: False) — the moment totals could shrink
            # if the broker dropped its metrics with its lease.
            def _saw_reap(event):
                info = event["data"].get("workers", {})
                return any(not w.get("alive", True) for w in info.values())

            tail = _read_sse_events(
                sock_file, count=1000, deadline=deadline, stop=_saw_reap
            )
            assert tail and _saw_reap(tail[-1]), "reap never surfaced"

            events = warmup + tail
            seqs = [e["id"] for e in events]
            assert seqs == sorted(set(seqs))
            totals = [
                e["data"]["fleet"]["counters"].get("worker.jobs", 0)
                for e in events
            ]
            assert totals == sorted(totals), (
                "fleet worker.jobs went backwards: %r" % (totals,)
            )
            # And the per-event deltas agree: summing them can never
            # exceed the final total (deltas report only increases).
            delta_sum = sum(
                e["data"].get("delta", {}).get(
                    "fleet.counters.worker.jobs", 0
                )
                for e in events
            )
            assert delta_sum <= totals[-1]

            mapper.join(timeout=60)
            assert not mapper.is_alive(), "fleet map did not finish"
            assert map_result["results"] == [2 * x for x in range(40)]
        finally:
            if sock is not None:
                sock.close()
            server.stop()
            for process in workers:
                process.terminate()
            for process in workers:
                process.join(timeout=10)
            broker_server.stop()
