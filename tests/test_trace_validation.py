"""Tests for repro.sim.trace and repro.analysis.validation."""

import pytest

from repro.analysis.validation import (
    ValidationPoint,
    full_validation_suite,
    validate_carried_rate,
    validate_mm1k_blocking,
    validate_mm1k_occupancy,
)
from repro.arch.templates import paper_figure1, single_bus
from repro.errors import ReproError, SimulationError
from repro.sim.system import CommunicationSystem, required_clients
from repro.sim.trace import TraceRecorder


def traced_system(topology, capacities, seed=0):
    system = CommunicationSystem(topology, capacities, seed=seed)
    recorder = TraceRecorder()
    # Swap the shared monitor: all components reference system.monitor's
    # object via their constructor, so rebuild with the recorder.
    system.monitor = recorder
    for bus in system.buses:
        bus.monitor = recorder
    return system, recorder


class TestTraceRecorder:
    def test_records_offered_and_outcomes(self):
        topo = single_bus(num_processors=3, arrival_rate=2.0, service_rate=3.0)
        caps = {p: 2 for p in topo.processors}
        system, recorder = traced_system(topo, caps)
        system.run(200.0)
        offered = recorder.events_of_kind("offered")
        assert offered
        total = recorder.total_offered()
        assert len(offered) == total
        kinds = {e.kind for e in recorder.events}
        assert "service" in kinds
        assert "delivery" in kinds

    def test_loss_sites_bounded_by_losses(self):
        topo = single_bus(num_processors=3, arrival_rate=3.0, service_rate=2.0)
        caps = {p: 1 for p in topo.processors}
        system, recorder = traced_system(topo, caps)
        system.run(300.0)
        sites = recorder.loss_sites()
        assert sum(sites.values()) == recorder.total_lost()

    def test_packet_history_ordered(self):
        topo = paper_figure1()
        caps = {name: 6 for name in required_clients(topo)}
        system, recorder = traced_system(topo, caps)
        system.run(100.0)
        delivered = recorder.events_of_kind("delivery")
        assert delivered
        history = recorder.packet_history(delivered[0].packet_id)
        assert history[0].kind == "offered"
        assert history[-1].kind == "delivery"
        times = [e.time for e in history]
        assert times == sorted(times)

    def test_bounded_log(self):
        recorder = TraceRecorder(max_events=10)
        assert recorder.events.maxlen == 10
        with pytest.raises(SimulationError):
            TraceRecorder(max_events=0)


class TestValidationHarness:
    def test_blocking_point(self):
        point = validate_mm1k_blocking(duration=20_000.0)
        assert point.relative_error < 0.15

    def test_occupancy_point(self):
        point = validate_mm1k_occupancy(duration=20_000.0)
        assert point.relative_error < 0.1

    def test_carried_rate_point(self):
        point = validate_carried_rate(duration=20_000.0)
        assert point.relative_error < 0.05

    def test_full_suite(self):
        points = full_validation_suite(duration=15_000.0)
        assert len(points) == 4
        assert all(p.relative_error < 0.2 for p in points)

    def test_validation_point_relative_error(self):
        p = ValidationPoint("x", analytic=2.0, simulated=2.2)
        assert p.relative_error == pytest.approx(0.1)

    def test_capacity_validation(self):
        with pytest.raises(ReproError):
            validate_mm1k_blocking(capacity=0)
