"""Tests for repro.core.splitting."""

import pytest

from repro.arch.templates import amba_like, paper_figure1, single_bus
from repro.arch.netproc import network_processor
from repro.core.splitting import (
    bridge_arrival_rates,
    quadratic_coupling_count,
    split,
)
from repro.errors import TopologyError
from repro.sim.bridge import client_name_for_bridge


class TestSplit:
    def test_single_bus_one_subsystem(self):
        system = split(single_bus(), capacity_cap=4)
        assert system.num_subsystems == 1
        sub = system.subsystems[0]
        assert sub.bridge_client_names == []
        assert len(sub.processor_names) == 4

    def test_paper_figure1_four_subsystems(self):
        system = split(paper_figure1(), capacity_cap=3)
        assert system.num_subsystems == 4

    def test_paper_figure1_bridge_buffers_where_flows_cross(self):
        system = split(paper_figure1(), capacity_cap=3)
        all_bridge_clients = [
            name
            for sub in system.subsystems
            for name in sub.bridge_client_names
        ]
        # Flows cross b->f/g->d and back: buffers appear on the entered
        # sides.  p2->p5 uses b1@f then b3@d (or b2@g/b4@d); return flows
        # enter the big cluster via b1@b or b2@b.
        assert any(name.endswith("@d") for name in all_bridge_clients)
        assert any(name.endswith("@b") for name in all_bridge_clients)

    def test_unused_bridge_direction_gets_no_buffer(self):
        # amba_like has flows in both directions across its only bridge,
        # so both directions exist; verify against a one-way topology.
        from repro.arch.topology import Topology

        topo = Topology("one-way")
        topo.add_bus("x")
        topo.add_bus("y")
        topo.add_processor("a", "x", 2.0)
        topo.add_processor("b", "y", 2.0)
        topo.add_bridge("br", "x", "y", 3.0)
        topo.add_poisson_flow("ab", "a", "b", 0.5)
        system = split(topo, capacity_cap=3)
        names = [
            n for sub in system.subsystems for n in sub.bridge_client_names
        ]
        assert names == [client_name_for_bridge("br", "y")]

    def test_processor_rates_sum_of_sourced_flows(self):
        system = split(paper_figure1(), capacity_cap=3)
        sub = system.subsystem_of_client("p2")
        assert sub.client("p2").arrival_rate == pytest.approx(0.7 + 0.6)

    def test_bridge_rates_initially_offered(self):
        system = split(paper_figure1(), capacity_cap=3)
        # p5's return flows f_52 (0.6) and f_53 (0.4) enter the big
        # cluster through bridge entries; total ingress at the cluster's
        # bridge buffers equals 1.0 un-thinned.
        big = system.subsystem_of_client("p1")
        ingress = sum(
            big.client(n).arrival_rate for n in big.bridge_client_names
        )
        assert ingress == pytest.approx(1.0)

    def test_capacity_cap_applied(self):
        system = split(paper_figure1(), capacity_cap=7)
        for sub in system.subsystems:
            for client in sub.clients:
                assert client.capacity == 7

    def test_bad_capacity_cap(self):
        with pytest.raises(TopologyError):
            split(paper_figure1(), capacity_cap=0)

    def test_flow_hops_start_at_source(self):
        system = split(paper_figure1(), capacity_cap=3)
        hops = system.flow_hops["f_25"]
        assert hops[0].client == "p2"
        assert len(hops) == 3  # source + two bridge entries

    def test_all_client_names_unique(self):
        system = split(network_processor(), capacity_cap=4)
        names = system.all_client_names()
        assert len(names) == len(set(names))

    def test_subsystem_of_client_unknown(self):
        system = split(single_bus(), capacity_cap=3)
        with pytest.raises(TopologyError):
            system.subsystem_of_client("ghost")

    def test_with_rates_roundtrip(self):
        system = split(amba_like(), capacity_cap=3)
        sub = system.subsystems[0]
        bridge_names = sub.bridge_client_names
        if bridge_names:
            updated = sub.with_rates({bridge_names[0]: 0.123})
            assert updated.client(bridge_names[0]).arrival_rate == 0.123
            # Original untouched.
            assert sub.client(bridge_names[0]).arrival_rate != 0.123


class TestBridgeArrivalRates:
    def test_no_blocking_gives_offered(self):
        system = split(paper_figure1(), capacity_cap=3)
        rates = bridge_arrival_rates(system, blocking={})
        big = system.subsystem_of_client("p1")
        total = sum(rates[n] for n in big.bridge_client_names)
        assert total == pytest.approx(1.0)

    def test_source_blocking_thins(self):
        system = split(paper_figure1(), capacity_cap=3)
        # Block half of everything leaving p5.
        rates_full = bridge_arrival_rates(system, blocking={})
        rates_thin = bridge_arrival_rates(system, blocking={"p5": 0.5})
        big = system.subsystem_of_client("p1")
        full = sum(rates_full[n] for n in big.bridge_client_names)
        thin = sum(rates_thin[n] for n in big.bridge_client_names)
        assert thin == pytest.approx(0.5 * full)

    def test_intermediate_blocking_compounds(self):
        system = split(paper_figure1(), capacity_cap=3)
        hops = system.flow_hops["f_25"]
        first_bridge = hops[1].client
        second_bridge = hops[2].client
        rates = bridge_arrival_rates(
            system, blocking={"p2": 0.5, first_bridge: 0.5}
        )
        # f_25 contributes 0.6 * 0.5 at the first bridge and
        # 0.6 * 0.25 at the second.
        assert rates[first_bridge] >= 0.6 * 0.5 - 1e-9
        contribution = 0.6 * 0.25
        assert rates[second_bridge] >= contribution - 1e-9

    def test_blocking_clamped(self):
        system = split(paper_figure1(), capacity_cap=3)
        rates = bridge_arrival_rates(system, blocking={"p2": 2.0})
        assert all(r >= 0 for r in rates.values())


class TestCouplingCount:
    def test_single_bus_zero(self):
        assert quadratic_coupling_count(single_bus()) == 0

    def test_paper_figure1_positive(self):
        count = quadratic_coupling_count(paper_figure1())
        assert count >= 4  # at least four used bridge directions

    def test_netproc_positive(self):
        assert quadratic_coupling_count(network_processor()) >= 4
