"""Tests for repro.arch.topology and templates."""

import pytest

from repro.arch.templates import (
    amba_like,
    coreconnect_like,
    paper_figure1,
    single_bus,
)
from repro.arch.netproc import network_processor, processor_names
from repro.arch.topology import Bridge, Topology
from repro.arch.traffic import PoissonTraffic
from repro.arch.validate import assert_not_overloaded, cluster_loads
from repro.errors import TopologyError


def tiny_bridged():
    topo = Topology("tiny")
    topo.add_bus("x")
    topo.add_bus("y")
    topo.add_processor("a", "x", service_rate=2.0)
    topo.add_processor("b", "y", service_rate=2.0)
    topo.add_bridge("br", "x", "y", service_rate=3.0)
    topo.add_poisson_flow("ab", "a", "b", 0.5)
    return topo


class TestConstruction:
    def test_duplicate_bus(self):
        topo = Topology()
        topo.add_bus("x")
        with pytest.raises(TopologyError, match="duplicate bus"):
            topo.add_bus("x")

    def test_processor_unknown_bus(self):
        topo = Topology()
        with pytest.raises(TopologyError, match="unknown bus"):
            topo.add_processor("p", "nope", service_rate=1.0)

    def test_duplicate_processor(self):
        topo = Topology()
        topo.add_bus("x")
        topo.add_processor("p", "x", 1.0)
        with pytest.raises(TopologyError, match="duplicate processor"):
            topo.add_processor("p", "x", 1.0)

    def test_bridge_same_bus_rejected(self):
        with pytest.raises(TopologyError, match="distinct buses"):
            Bridge("b", "x", "x", 1.0)

    def test_bridge_unknown_bus(self):
        topo = Topology()
        topo.add_bus("x")
        with pytest.raises(TopologyError, match="unknown bus"):
            topo.add_bridge("b", "x", "nope", 1.0)

    def test_duplicate_bridge(self):
        topo = tiny_bridged()
        with pytest.raises(TopologyError, match="duplicate bridge"):
            topo.add_bridge("br", "x", "y", 1.0)

    def test_flow_unknown_processor(self):
        topo = tiny_bridged()
        with pytest.raises(TopologyError, match="unknown processor"):
            topo.add_poisson_flow("zz", "a", "ghost", 1.0)

    def test_flow_self_loop_rejected(self):
        topo = tiny_bridged()
        with pytest.raises(TopologyError, match="source equals destination"):
            topo.add_poisson_flow("self", "a", "a", 1.0)

    def test_duplicate_flow(self):
        topo = tiny_bridged()
        with pytest.raises(TopologyError, match="duplicate flow"):
            topo.add_poisson_flow("ab", "a", "b", 1.0)

    def test_bridge_other_end(self):
        br = Bridge("b", "x", "y", 1.0)
        assert br.other_end("x") == "y"
        assert br.other_end("y") == "x"
        with pytest.raises(TopologyError):
            br.other_end("z")


class TestClusters:
    def test_bridge_cuts_clusters(self):
        topo = tiny_bridged()
        clusters = topo.bus_clusters()
        assert clusters == [frozenset({"x"}), frozenset({"y"})]

    def test_links_merge_clusters(self):
        topo = Topology()
        for bus in ("x", "y", "z"):
            topo.add_bus(bus)
        topo.add_link("x", "y")
        topo.add_bridge("br", "y", "z", 1.0)
        clusters = topo.bus_clusters()
        assert frozenset({"x", "y"}) in clusters
        assert frozenset({"z"}) in clusters

    def test_cluster_of_bus(self):
        topo = tiny_bridged()
        assert topo.cluster_of_bus("x") == frozenset({"x"})
        with pytest.raises(TopologyError):
            topo.cluster_of_bus("nope")

    def test_cluster_processors_sorted(self):
        topo = paper_figure1()
        cluster = topo.cluster_of_bus("b")
        names = [p.name for p in topo.cluster_processors(cluster)]
        assert names == ["p1", "p2", "p3", "p4"]

    def test_cluster_bridges(self):
        topo = paper_figure1()
        cluster = topo.cluster_of_bus("b")
        names = [b.name for b in topo.cluster_bridges(cluster)]
        assert names == ["b1", "b2"]


class TestRouting:
    def test_local_route(self):
        topo = paper_figure1()
        route = topo.route("f_12")
        assert not route.crosses_bridge
        assert len(route.clusters) == 1

    def test_bridged_route(self):
        topo = paper_figure1()
        route = topo.route("f_25")
        assert route.crosses_bridge
        # p2 (cluster a,b,c,e) -> p5 (bus d): two bridges.
        assert len(route.bridges) == 2
        assert route.bridges[0] in ("b1", "b2")
        assert route.bridges[1] in ("b3", "b4")

    def test_route_deterministic(self):
        topo = paper_figure1()
        r1 = topo.route("f_25")
        r2 = topo.route("f_25")
        assert r1 == r2

    def test_unknown_flow(self):
        topo = paper_figure1()
        with pytest.raises(TopologyError, match="unknown flow"):
            topo.route("ghost")

    def test_unroutable_flow(self):
        topo = Topology()
        topo.add_bus("x")
        topo.add_bus("y")
        topo.add_processor("a", "x", 1.0)
        topo.add_processor("b", "y", 1.0)
        topo.add_poisson_flow("ab", "a", "b", 1.0)
        with pytest.raises(TopologyError, match="no bridge path"):
            topo.route("ab")


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(TopologyError, match="no buses"):
            Topology().validate()

    def test_no_processors_rejected(self):
        topo = Topology()
        topo.add_bus("x")
        with pytest.raises(TopologyError, match="no processors"):
            topo.validate()

    def test_orphan_bus_rejected(self):
        topo = tiny_bridged()
        topo.add_bus("orphan")
        with pytest.raises(TopologyError, match="orphan"):
            topo.validate()

    def test_valid_passes(self):
        tiny_bridged().validate()


class TestAggregates:
    def test_processor_offered_rate(self):
        topo = paper_figure1()
        # p2 sources f_23 (0.7) and f_25 (0.6).
        assert topo.processor_offered_rate("p2") == pytest.approx(1.3)

    def test_total_offered_rate(self):
        topo = tiny_bridged()
        assert topo.total_offered_rate() == pytest.approx(0.5)

    def test_unknown_processor(self):
        topo = tiny_bridged()
        with pytest.raises(TopologyError):
            topo.processor_offered_rate("ghost")


class TestTemplates:
    def test_single_bus(self):
        topo = single_bus(num_processors=5)
        assert len(topo.processors) == 5
        assert len(topo.bus_clusters()) == 1

    def test_single_bus_too_small(self):
        with pytest.raises(TopologyError):
            single_bus(num_processors=1)

    def test_paper_figure1_four_subsystems(self):
        topo = paper_figure1()
        assert len(topo.bus_clusters()) == 4
        assert len(topo.bridges) == 4
        assert len(topo.processors) == 5

    def test_amba_like(self):
        topo = amba_like()
        assert len(topo.bus_clusters()) == 2
        assert "ahb2apb" in topo.bridges

    def test_coreconnect_like(self):
        topo = coreconnect_like()
        assert frozenset({"plb", "plb2"}) in topo.bus_clusters()
        # Two parallel bridges: routes still resolve deterministically.
        route = topo.route("ppc_eth")
        assert route.crosses_bridge


class TestNetworkProcessor:
    def test_seventeen_processors(self):
        topo = network_processor()
        assert len(topo.processors) == 17

    def test_five_clusters(self):
        topo = network_processor()
        assert len(topo.bus_clusters()) == 5
        assert len(topo.bridges) == 4

    def test_deterministic(self):
        t1 = network_processor(seed=11)
        t2 = network_processor(seed=11)
        assert t1.processor_offered_rate("p3") == t2.processor_offered_rate(
            "p3"
        )

    def test_seed_changes_rates(self):
        t1 = network_processor(seed=1)
        t2 = network_processor(seed=2)
        rates1 = [t1.processor_offered_rate(p) for p in t1.processors]
        rates2 = [t2.processor_offered_rate(p) for p in t2.processors]
        assert rates1 != rates2

    def test_load_scale(self):
        base = network_processor(seed=3, load_scale=1.0)
        heavy = network_processor(seed=3, load_scale=2.0)
        assert heavy.total_offered_rate() == pytest.approx(
            2.0 * base.total_offered_rate()
        )

    def test_load_scale_validation(self):
        with pytest.raises(TopologyError):
            network_processor(load_scale=0.0)

    def test_processor_names_order(self):
        topo = network_processor()
        names = processor_names(topo)
        assert names[0] == "p1"
        assert names[-1] == "p17"


class TestClusterLoads:
    def test_loads_positive(self):
        topo = network_processor()
        loads = cluster_loads(topo)
        assert len(loads) == 5
        assert all(l.offered_rate > 0 for l in loads)

    def test_bridge_ingress_counted(self):
        topo = tiny_bridged()
        loads = {tuple(sorted(l.cluster)): l for l in cluster_loads(topo)}
        # Cluster y receives flow ab through the bridge.
        assert loads[("y",)].offered_rate == pytest.approx(0.5)

    def test_not_overloaded_default(self):
        topo = network_processor()
        assert_not_overloaded(topo, limit=1.5)

    def test_overload_detected(self):
        topo = Topology()
        topo.add_bus("x")
        topo.add_processor("a", "x", service_rate=1.0)
        topo.add_processor("b", "x", service_rate=1.0)
        topo.add_poisson_flow("ab", "a", "b", 10.0)
        with pytest.raises(TopologyError, match="utilisation"):
            assert_not_overloaded(topo)
