"""Tests for repro.sim.workloads."""

import numpy as np
import pytest

from repro.arch.templates import amba_like, single_bus
from repro.errors import ModelError
from repro.sim.runner import simulate
from repro.sim.workloads import (
    RequestTrace,
    TraceTraffic,
    record_trace,
    replay_topology,
)


class TestRequestTrace:
    def test_basic_properties(self):
        trace = RequestTrace(((0.5, "a"), (1.0, "b"), (2.0, "a")))
        assert trace.num_events == 3
        assert trace.horizon == 2.0
        assert trace.flows() == ["a", "b"]

    def test_unsorted_rejected(self):
        with pytest.raises(ModelError, match="sorted"):
            RequestTrace(((1.0, "a"), (0.5, "b")))

    def test_negative_time_rejected(self):
        with pytest.raises(ModelError):
            RequestTrace(((-1.0, "a"),))

    def test_interarrivals(self):
        trace = RequestTrace(((1.0, "a"), (1.5, "b"), (3.0, "a")))
        gaps = trace.interarrivals("a")
        assert np.allclose(gaps, [1.0, 2.0])

    def test_interarrivals_unknown_flow(self):
        trace = RequestTrace(((1.0, "a"),))
        with pytest.raises(ModelError, match="no events"):
            trace.interarrivals("zzz")

    def test_mean_rate(self):
        trace = RequestTrace(((1.0, "a"), (2.0, "a"), (4.0, "a")))
        assert trace.mean_rate("a") == pytest.approx(3.0 / 4.0)

    def test_roundtrip(self):
        trace = RequestTrace(((0.25, "x"), (1.5, "y"), (2.0, "x")))
        text = trace.dumps()
        back = RequestTrace.loads(text)
        assert back == trace

    def test_loads_comments_and_errors(self):
        assert RequestTrace.loads("# c\n\n1.0 a\n").num_events == 1
        with pytest.raises(ModelError, match="expected"):
            RequestTrace.loads("1.0\n")
        with pytest.raises(ModelError, match="bad time"):
            RequestTrace.loads("xx a\n")


class TestTraceTraffic:
    def test_mean_rate(self):
        t = TraceTraffic([0.5, 0.5, 1.0])
        assert t.mean_rate == pytest.approx(3.0 / 2.0)

    def test_replay_cycles(self):
        t = TraceTraffic([0.1, 0.2])
        rng = np.random.default_rng(0)
        gaps = t.sample_interarrivals(rng, 5)
        assert np.allclose(gaps, [0.1, 0.2, 0.1, 0.2, 0.1])

    def test_validation(self):
        with pytest.raises(ModelError):
            TraceTraffic([])
        with pytest.raises(ModelError):
            TraceTraffic([-0.1])
        with pytest.raises(ModelError):
            TraceTraffic([0.0, 0.0])

    def test_scaled(self):
        t = TraceTraffic([1.0, 1.0])
        assert t.scaled(2.0).mean_rate == pytest.approx(2.0)
        with pytest.raises(ModelError):
            t.scaled(0.0)


class TestRecordReplay:
    def test_record_produces_sorted_trace(self):
        topo = single_bus(num_processors=3, arrival_rate=1.0)
        trace = record_trace(topo, duration=100.0, seed=1)
        assert trace.num_events > 0
        assert trace.horizon <= 100.0

    def test_record_rates_match_models(self):
        topo = single_bus(num_processors=3, arrival_rate=2.0)
        trace = record_trace(topo, duration=2_000.0, seed=2)
        for flow_name, flow in topo.flows.items():
            assert trace.mean_rate(flow_name) == pytest.approx(
                flow.rate, rel=0.15
            )

    def test_record_validation(self):
        with pytest.raises(ModelError):
            record_trace(single_bus(), duration=0.0)

    def test_replay_runs_in_simulator(self):
        topo = amba_like()
        trace = record_trace(topo, duration=500.0, seed=3)
        replayed = replay_topology(topo, trace)
        from repro.sim.system import required_clients

        caps = {name: 4 for name in required_clients(replayed)}
        result = simulate(replayed, caps, duration=500.0, seed=0)
        # The replayed run must offer roughly the recorded request count
        # (replay cycles, so at least the recorded window's worth).
        assert result.total_offered >= trace.num_events * 0.8

    def test_replay_deterministic_offered_counts(self):
        topo = amba_like()
        trace = record_trace(topo, duration=300.0, seed=4)
        replayed = replay_topology(topo, trace)
        from repro.sim.system import required_clients

        caps = {name: 4 for name in required_clients(replayed)}
        r1 = simulate(replayed, caps, duration=300.0, seed=11)
        # Re-build (replay cursors are stateful) and run with another
        # service seed: offered counts are trace-driven hence identical.
        replayed2 = replay_topology(topo, trace)
        r2 = simulate(replayed2, caps, duration=300.0, seed=99)
        assert r1.offered == r2.offered
