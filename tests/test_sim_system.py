"""Integration tests for the discrete-event simulator.

The single most important test validates the simulator against the exact
M/M/1/K loss formula; the rest exercise multi-hop routing, conservation
laws, timeouts, warmup and replication.
"""

import numpy as np
import pytest

from repro.arch.templates import paper_figure1, single_bus
from repro.arch.topology import Topology
from repro.errors import SimulationError
from repro.queueing.mm1k import MM1KQueue
from repro.sim.bridge import client_name_for_bridge
from repro.sim.runner import ReplicationSummary, replicate, simulate
from repro.sim.system import CommunicationSystem, required_clients


def one_queue_topology(lam=2.0, mu=3.0):
    topo = Topology("one-queue")
    topo.add_bus("x")
    topo.add_processor("src", "x", service_rate=mu)
    topo.add_processor("dst", "x", service_rate=mu)
    topo.add_poisson_flow("f", "src", "dst", lam)
    return topo


class TestMM1KValidation:
    @pytest.mark.parametrize(
        "lam,mu,k",
        [(2.0, 3.0, 3), (1.0, 1.5, 5), (3.0, 2.0, 4)],
    )
    def test_blocking_matches_analytic(self, lam, mu, k):
        """A single source on an otherwise idle bus is exactly M/M/1/K
        (the buffer slot of the in-service packet included)."""
        topo = one_queue_topology(lam, mu)
        result = simulate(
            topo,
            {"src": k, "dst": 1},
            duration=60_000.0,
            seed=7,
            warmup=500.0,
        )
        simulated_blocking = result.lost["src"] / result.offered["src"]
        expected = MM1KQueue(lam, mu, k).blocking_probability()
        assert simulated_blocking == pytest.approx(expected, rel=0.08)

    def test_loss_rate_matches_analytic(self):
        lam, mu, k = 2.5, 3.0, 4
        topo = one_queue_topology(lam, mu)
        result = simulate(
            topo, {"src": k, "dst": 1}, duration=60_000.0, seed=11,
            warmup=500.0,
        )
        expected = MM1KQueue(lam, mu, k).loss_rate()
        assert result.loss_rate("src") == pytest.approx(expected, rel=0.1)


class TestConservation:
    def test_offered_equals_lost_plus_delivered_plus_inflight(self):
        topo = single_bus(num_processors=4, arrival_rate=1.5, service_rate=3.0)
        caps = {p: 3 for p in topo.processors}
        result = simulate(topo, caps, duration=5_000.0, seed=3)
        total = result.total_offered
        accounted = result.total_lost + sum(result.delivered.values())
        # In-flight packets at the horizon: bounded by total buffer space.
        assert 0 <= total - accounted <= sum(caps.values())

    def test_zero_capacity_loses_all(self):
        topo = one_queue_topology()
        result = simulate(topo, {"src": 0, "dst": 1}, duration=1_000.0, seed=1)
        assert result.lost["src"] == result.offered["src"]
        assert result.delivered["src"] == 0

    def test_huge_buffers_lossless(self):
        topo = single_bus(num_processors=3, arrival_rate=0.3, service_rate=9.0)
        caps = {p: 500 for p in topo.processors}
        result = simulate(topo, caps, duration=5_000.0, seed=5)
        assert result.total_lost == 0


class TestBridgedRouting:
    def test_paper_topology_delivers_across_bridges(self):
        topo = paper_figure1()
        caps = {name: 8 for name in required_clients(topo)}
        result = simulate(topo, caps, duration=5_000.0, seed=2)
        # p2 -> p5 crosses two bridges; deliveries must happen.
        assert result.delivered["p2"] > 0
        assert result.delivered["p5"] > 0

    def test_missing_bridge_buffer_loses_crossing_traffic(self):
        topo = paper_figure1()
        caps = {name: 8 for name in required_clients(topo)}
        # Remove all bridge buffers: cross-cluster flows die at the first
        # bridge, attributed to their source processors.
        for name in list(caps):
            if "@" in name:
                caps[name] = 0
        result = simulate(topo, caps, duration=3_000.0, seed=2)
        assert result.lost["p5"] > 0  # p5 sources two bridged flows
        # Local cluster flow p1 -> p2 is unaffected by bridges; with large
        # local buffers it should lose nothing.
        assert result.delivered["p1"] > 0

    def test_bigger_bridge_buffers_reduce_loss(self):
        topo = paper_figure1()
        small = {name: 2 for name in required_clients(topo)}
        big = dict(small)
        for name in big:
            if "@" in name:
                big[name] = 10
        r_small = simulate(topo, small, duration=8_000.0, seed=4)
        r_big = simulate(topo, big, duration=8_000.0, seed=4)
        assert r_big.total_lost < r_small.total_lost


class TestTimeoutPolicy:
    def test_timeout_creates_extra_loss(self):
        topo = single_bus(num_processors=4, arrival_rate=2.0, service_rate=3.0)
        caps = {p: 6 for p in topo.processors}
        plain = simulate(topo, caps, duration=8_000.0, seed=6)
        strict = simulate(
            topo, caps, duration=8_000.0, seed=6, timeout_threshold=0.05
        )
        assert sum(strict.timed_out.values()) > 0
        assert strict.total_lost > plain.total_lost

    def test_generous_timeout_harmless(self):
        topo = single_bus(num_processors=3, arrival_rate=0.4, service_rate=8.0)
        caps = {p: 10 for p in topo.processors}
        result = simulate(
            topo, caps, duration=3_000.0, seed=6, timeout_threshold=1e6
        )
        assert sum(result.timed_out.values()) == 0

    def test_invalid_threshold_rejected(self):
        topo = one_queue_topology()
        with pytest.raises(SimulationError):
            simulate(topo, {"src": 1, "dst": 1}, timeout_threshold=0.0)


class TestRunnerMechanics:
    def test_missing_processor_capacity_rejected(self):
        topo = one_queue_topology()
        with pytest.raises(SimulationError, match="missing processor"):
            simulate(topo, {"src": 2}, duration=100.0)

    def test_determinism(self):
        topo = single_bus()
        caps = {p: 3 for p in topo.processors}
        r1 = simulate(topo, caps, duration=2_000.0, seed=9)
        r2 = simulate(topo, caps, duration=2_000.0, seed=9)
        assert r1.lost == r2.lost
        assert r1.offered == r2.offered

    def test_seed_matters(self):
        topo = single_bus(arrival_rate=2.0, service_rate=3.0)
        caps = {p: 2 for p in topo.processors}
        r1 = simulate(topo, caps, duration=2_000.0, seed=1)
        r2 = simulate(topo, caps, duration=2_000.0, seed=2)
        assert r1.offered != r2.offered

    def test_warmup_removes_transient_counts(self):
        topo = one_queue_topology()
        full = simulate(topo, {"src": 3, "dst": 1}, duration=1_000.0, seed=3)
        warm = simulate(
            topo, {"src": 3, "dst": 1}, duration=1_000.0, seed=3,
            warmup=500.0,
        )
        assert warm.offered["src"] < full.offered["src"] + 1

    def test_negative_warmup_rejected(self):
        topo = one_queue_topology()
        with pytest.raises(SimulationError):
            simulate(topo, {"src": 1, "dst": 1}, warmup=-1.0)

    def test_bad_duration_rejected(self):
        topo = one_queue_topology()
        system = CommunicationSystem(topo, {"src": 1, "dst": 1})
        with pytest.raises(SimulationError):
            system.run(0.0)

    def test_buffer_accessor(self):
        topo = paper_figure1()
        caps = {name: 2 for name in required_clients(topo)}
        system = CommunicationSystem(topo, caps)
        assert system.buffer("p1").capacity == 2
        bridge_buf = client_name_for_bridge("b1", "f")
        assert system.buffer(bridge_buf).capacity == 2
        with pytest.raises(SimulationError):
            system.buffer("ghost")

    def test_loss_fraction_bounds(self):
        topo = single_bus(arrival_rate=3.0, service_rate=2.0)
        caps = {p: 1 for p in topo.processors}
        result = simulate(topo, caps, duration=2_000.0, seed=8)
        assert 0.0 < result.loss_fraction() < 1.0


class TestReplication:
    def test_replicate_count(self):
        topo = single_bus()
        caps = {p: 2 for p in topo.processors}
        summary = replicate(
            topo, caps, replications=4, duration=500.0, base_seed=0
        )
        assert summary.num_replications == 4

    def test_replications_independent(self):
        topo = single_bus(arrival_rate=2.0, service_rate=3.0)
        caps = {p: 2 for p in topo.processors}
        summary = replicate(
            topo, caps, replications=3, duration=1_000.0
        )
        losses = [r.total_lost for r in summary.results]
        assert len(set(losses)) > 1

    def test_mean_loss(self):
        topo = single_bus(arrival_rate=2.5, service_rate=2.0)
        caps = {p: 1 for p in topo.processors}
        summary = replicate(topo, caps, replications=3, duration=1_000.0)
        manual = np.mean([r.lost["p1"] for r in summary.results])
        assert summary.mean_loss("p1") == pytest.approx(manual)
        assert summary.mean_total_loss() > 0

    def test_std_total_loss(self):
        topo = single_bus(arrival_rate=2.0, service_rate=2.0)
        caps = {p: 1 for p in topo.processors}
        summary = replicate(topo, caps, replications=5, duration=500.0)
        assert summary.std_total_loss() >= 0.0

    def test_zero_replications_rejected(self):
        topo = single_bus()
        with pytest.raises(SimulationError):
            replicate(topo, {p: 1 for p in topo.processors}, replications=0)

    def test_empty_summary_rejected(self):
        with pytest.raises(SimulationError):
            ReplicationSummary([])
