"""Tests for repro.analysis.batch_means."""

import numpy as np
import pytest

from repro.analysis.batch_means import (
    BatchMeansEstimate,
    batch_means,
    loss_rate_batch_means,
)
from repro.arch.templates import single_bus
from repro.errors import ReproError
from repro.queueing.mm1k import MM1KQueue
from repro.arch.topology import Topology


class TestBatchMeans:
    def test_iid_normal_coverage(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 1.0, size=40)
        mean, half, rho1 = batch_means(data)
        assert abs(mean - 5.0) < 1.0
        assert half > 0
        assert abs(rho1) < 0.5

    def test_constant_batches(self):
        mean, half, rho1 = batch_means(np.full(10, 3.0))
        assert mean == 3.0
        assert half == 0.0
        assert rho1 == 0.0

    def test_validation(self):
        with pytest.raises(ReproError):
            batch_means(np.array([1.0]))
        with pytest.raises(ReproError):
            batch_means(np.array([1.0, 2.0]), confidence=1.5)


class TestLossRateBatchMeans:
    def make_queue(self, lam=2.5, mu=2.0):
        topo = Topology("q")
        topo.add_bus("x")
        topo.add_processor("src", "x", service_rate=mu)
        topo.add_processor("dst", "x", service_rate=mu)
        topo.add_poisson_flow("f", "src", "dst", lam)
        return topo

    def test_interval_contains_analytic_loss(self):
        lam, mu, k = 2.5, 2.0, 3
        topo = self.make_queue(lam, mu)
        estimate = loss_rate_batch_means(
            topo, {"src": k, "dst": 1},
            total_duration=30_000.0, num_batches=15, seed=5,
        )
        analytic = MM1KQueue(lam, mu, k).loss_rate()
        lo, hi = estimate.interval
        # Allow a whisker outside the CI (finite batches).
        span = max(hi - lo, 0.05 * analytic)
        assert lo - span <= analytic <= hi + span

    def test_estimate_structure(self):
        topo = self.make_queue()
        estimate = loss_rate_batch_means(
            topo, {"src": 2, "dst": 1},
            total_duration=5_000.0, num_batches=10,
        )
        assert isinstance(estimate, BatchMeansEstimate)
        assert estimate.num_batches == 10
        assert estimate.batch_length > 0
        assert estimate.mean >= 0
        assert -1.0 <= estimate.lag1_autocorrelation <= 1.0

    def test_validation(self):
        topo = self.make_queue()
        caps = {"src": 2, "dst": 1}
        with pytest.raises(ReproError):
            loss_rate_batch_means(topo, caps, num_batches=1)
        with pytest.raises(ReproError):
            loss_rate_batch_means(topo, caps, total_duration=0.0)
        with pytest.raises(ReproError):
            loss_rate_batch_means(topo, caps, warmup_fraction=1.0)
