"""Tests for repro.core.ctmdp."""

import numpy as np
import pytest

from repro.core.ctmdp import CTMDP
from repro.errors import ModelError


def make_two_state_mdp():
    """States 'lo'/'hi'; in 'lo' choose slow/fast ramp-up."""
    m = CTMDP()
    m.add_action("lo", "slow", [("hi", 1.0)], cost_rate=0.0)
    m.add_action("lo", "fast", [("hi", 5.0)], cost_rate=2.0)
    m.add_action("hi", "drain", [("lo", 3.0)], cost_rate=1.0)
    return m


class TestConstruction:
    def test_states_registered_in_order(self):
        m = make_two_state_mdp()
        assert m.states == ["lo", "hi"]
        assert m.num_states == 2

    def test_state_action_count(self):
        m = make_two_state_mdp()
        assert m.num_state_actions == 3

    def test_duplicate_action_rejected(self):
        m = make_two_state_mdp()
        with pytest.raises(ModelError, match="duplicate action"):
            m.add_action("lo", "slow", [("hi", 1.0)])

    def test_negative_rate_rejected(self):
        m = CTMDP()
        with pytest.raises(ModelError, match="negative rate"):
            m.add_action("a", "x", [("b", -1.0)])

    def test_self_loops_dropped(self):
        m = CTMDP()
        m.add_action("a", "x", [("a", 5.0), ("b", 1.0)])
        m.add_action("b", "x", [("a", 1.0)])
        assert [t.target for t in m.transitions("a", "x")] == ["b"]

    def test_zero_rate_transitions_dropped(self):
        m = CTMDP()
        m.add_action("a", "x", [("b", 0.0), ("c", 1.0)])
        m.add_action("b", "x", [])
        m.add_action("c", "x", [("a", 1.0)])
        assert [t.target for t in m.transitions("a", "x")] == ["c"]

    def test_targets_autoregistered(self):
        m = CTMDP()
        m.add_action("a", "x", [("b", 1.0)])
        assert "b" in m.states

    def test_unknown_lookups(self):
        m = make_two_state_mdp()
        with pytest.raises(ModelError):
            m.state_index("zzz")
        with pytest.raises(ModelError):
            m.actions("zzz")
        with pytest.raises(ModelError):
            m.transitions("lo", "zzz")
        with pytest.raises(ModelError):
            m.cost_rate("lo", "zzz")

    def test_constraint_rates(self):
        m = CTMDP()
        m.add_action("a", "x", [("b", 1.0)], constraint_rates={"space": 2.0})
        m.add_action("b", "x", [("a", 1.0)])
        assert m.constraint_rate("space", "a", "x") == 2.0
        assert m.constraint_rate("space", "b", "x") == 0.0
        assert m.constraint_names == ["space"]


class TestValidation:
    def test_empty_model_rejected(self):
        with pytest.raises(ModelError, match="no states"):
            CTMDP().validate()

    def test_state_without_action_rejected(self):
        m = CTMDP()
        m.add_action("a", "x", [("b", 1.0)])  # b has no actions
        with pytest.raises(ModelError, match="no actions"):
            m.validate()

    def test_valid_model_passes(self):
        make_two_state_mdp().validate()


class TestUniformization:
    def test_rows_stochastic(self):
        m = make_two_state_mdp()
        p, c, pairs, rate = m.uniformized()
        assert np.allclose(p.sum(axis=1), 1.0)
        assert (p >= 0).all()
        assert len(pairs) == 3

    def test_rate_covers_max_exit(self):
        m = make_two_state_mdp()
        _p, _c, _pairs, rate = m.uniformized()
        assert rate >= 5.0

    def test_costs_scaled(self):
        m = make_two_state_mdp()
        _p, c, pairs, rate = m.uniformized(rate=10.0)
        k = pairs.index(("lo", "fast"))
        assert c[k] == pytest.approx(0.2)

    def test_explicit_small_rate_rejected(self):
        m = make_two_state_mdp()
        with pytest.raises(ModelError, match="below max exit"):
            m.uniformized(rate=1.0)

    def test_exit_and_max_exit(self):
        m = make_two_state_mdp()
        assert m.exit_rate("lo", "fast") == pytest.approx(5.0)
        assert m.max_exit_rate() == pytest.approx(5.0)
