"""Tests for repro.arch.dsl."""

import pytest

from repro.arch.dsl import parse_topology, serialize_topology
from repro.arch.templates import amba_like, paper_figure1
from repro.arch.traffic import OnOffTraffic, PoissonTraffic
from repro.errors import TopologyError

VALID = """
# a miniature AMBA
soc amba-mini
bus ahb
bus apb
bridge ahb2apb ahb apb service=3.0
processor cpu ahb service=10.0
processor uart apb service=2.0 weight=2.0
flow cpu_uart cpu uart rate=0.8
flow uart_cpu uart cpu onoff peak=2.0 on=1.0 off=3.0
"""


class TestParse:
    def test_valid_parses(self):
        topo = parse_topology(VALID)
        assert topo.name == "amba-mini"
        assert set(topo.buses) == {"ahb", "apb"}
        assert topo.processors["uart"].loss_weight == 2.0
        assert isinstance(topo.flows["cpu_uart"].traffic, PoissonTraffic)
        assert isinstance(topo.flows["uart_cpu"].traffic, OnOffTraffic)

    def test_comments_and_blank_lines_ignored(self):
        topo = parse_topology("# hi\n\n" + VALID)
        assert topo.name == "amba-mini"

    def test_empty_rejected(self):
        with pytest.raises(TopologyError, match="empty"):
            parse_topology("\n# only comments\n")

    def test_soc_must_be_first(self):
        with pytest.raises(TopologyError, match="first directive"):
            parse_topology("bus x\nsoc s\n")

    def test_duplicate_soc(self):
        with pytest.raises(TopologyError, match="duplicate 'soc'"):
            parse_topology("soc a\nsoc b\n")

    def test_unknown_directive(self):
        with pytest.raises(TopologyError, match="unknown directive"):
            parse_topology("soc a\nwidget x\n")

    def test_missing_rate(self):
        text = VALID.replace("rate=0.8", "")
        with pytest.raises(TopologyError, match="missing rate="):
            parse_topology(text)

    def test_bad_number(self):
        text = VALID.replace("rate=0.8", "rate=banana")
        with pytest.raises(TopologyError, match="not a number"):
            parse_topology(text)

    def test_bad_kwarg(self):
        text = VALID.replace("rate=0.8", "zzz")
        with pytest.raises(TopologyError, match="key=value"):
            parse_topology(text)

    def test_line_number_reported(self):
        with pytest.raises(TopologyError, match="line 3"):
            parse_topology("soc a\nbus x\nbogus y\n")

    def test_hyper_flow(self):
        text = VALID + "flow h cpu uart hyper r1=1.0 r2=4.0 p1=0.3\n"
        topo = parse_topology(text)
        assert topo.flows["h"].rate > 0

    def test_semantic_errors_propagate(self):
        text = "soc a\nbus x\nprocessor p nope service=1.0\n"
        with pytest.raises(TopologyError, match="unknown bus"):
            parse_topology(text)


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [amba_like, paper_figure1])
    def test_template_roundtrip(self, factory):
        original = factory()
        text = serialize_topology(original)
        rebuilt = parse_topology(text)
        assert set(rebuilt.buses) == set(original.buses)
        assert set(rebuilt.processors) == set(original.processors)
        assert set(rebuilt.bridges) == set(original.bridges)
        assert set(rebuilt.flows) == set(original.flows)
        for name, flow in original.flows.items():
            assert rebuilt.flows[name].rate == pytest.approx(flow.rate)
        # Routes (and therefore subsystems) must be preserved exactly.
        for name in original.flows:
            assert rebuilt.route(name).bridges == original.route(name).bridges

    def test_parsed_roundtrip_stable(self):
        topo = parse_topology(VALID)
        text1 = serialize_topology(topo)
        text2 = serialize_topology(parse_topology(text1))
        assert text1 == text2

    def test_custom_traffic_rejected(self):
        from repro.arch.topology import Topology
        from repro.arch.traffic import TrafficDescriptor

        class Weird(TrafficDescriptor):
            @property
            def mean_rate(self):
                return 1.0

            def sample_interarrivals(self, rng, count):
                raise NotImplementedError

        topo = Topology("t")
        topo.add_bus("x")
        topo.add_processor("a", "x", 1.0)
        topo.add_processor("b", "x", 1.0)
        topo.add_flow("f", "a", "b", Weird())
        with pytest.raises(TopologyError, match="cannot be serialised"):
            serialize_topology(topo)
