"""Tests for repro.policies.local_search."""

import pytest

from repro.arch.templates import single_bus
from repro.arch.topology import Topology
from repro.core.sizing import BufferAllocation
from repro.errors import PolicyError
from repro.policies.local_search import SimulatedAnnealingFreeLocalSearch
from repro.policies.uniform import UniformSizing
from repro.sim.runner import replicate


def skewed_topology():
    """One very hot client and two cold ones: uniform is clearly bad."""
    topo = Topology("skew")
    topo.add_bus("x")
    topo.add_processor("hot", "x", service_rate=6.0)
    topo.add_processor("cold1", "x", service_rate=6.0)
    topo.add_processor("cold2", "x", service_rate=6.0)
    topo.add_poisson_flow("h", "hot", "cold1", 4.0)
    topo.add_poisson_flow("c", "cold1", "cold2", 0.1)
    return topo


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(PolicyError):
            SimulatedAnnealingFreeLocalSearch(replications=0)
        with pytest.raises(PolicyError):
            SimulatedAnnealingFreeLocalSearch(duration=0.0)
        with pytest.raises(PolicyError):
            SimulatedAnnealingFreeLocalSearch(max_moves=-1)
        with pytest.raises(PolicyError):
            SimulatedAnnealingFreeLocalSearch(candidates_per_round=0)


class TestRefinement:
    def test_budget_preserved(self):
        topo = skewed_topology()
        start = UniformSizing().allocate(topo, 9)
        search = SimulatedAnnealingFreeLocalSearch(
            replications=1, duration=300.0, max_moves=4
        )
        refined = search.refine(topo, start)
        assert refined.total == start.total

    def test_never_below_min_size(self):
        topo = skewed_topology()
        start = UniformSizing().allocate(topo, 9)
        search = SimulatedAnnealingFreeLocalSearch(
            replications=1, duration=300.0, max_moves=6, min_size=1
        )
        refined = search.refine(topo, start)
        assert all(v >= 1 for v in refined.sizes.values())

    def test_improves_uniform_on_skewed_load(self):
        topo = skewed_topology()
        start = UniformSizing().allocate(topo, 9)
        search = SimulatedAnnealingFreeLocalSearch(
            replications=2, duration=600.0, max_moves=8
        )
        refined = search.refine(topo, start)
        before = replicate(
            topo, start.as_capacities(), replications=3, duration=800.0,
            base_seed=77,
        ).mean_total_loss()
        after = replicate(
            topo, refined.as_capacities(), replications=3, duration=800.0,
            base_seed=77,
        ).mean_total_loss()
        # The hot client must have gained slots, and loss must not rise.
        assert refined.sizes["hot"] >= start.sizes["hot"]
        assert after <= before * 1.05

    def test_trace_records_accepted_moves(self):
        topo = skewed_topology()
        start = UniformSizing().allocate(topo, 9)
        search = SimulatedAnnealingFreeLocalSearch(
            replications=1, duration=400.0, max_moves=5
        )
        search.refine(topo, start)
        for move in search.trace:
            assert move.loss_after < move.loss_before

    def test_zero_moves_is_identity(self):
        topo = skewed_topology()
        start = UniformSizing().allocate(topo, 9)
        search = SimulatedAnnealingFreeLocalSearch(
            replications=1, duration=200.0, max_moves=0
        )
        refined = search.refine(topo, start)
        assert refined.sizes == start.sizes
