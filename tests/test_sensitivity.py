"""Tests for repro.core.sensitivity."""

import pytest

from repro.arch.templates import amba_like, single_bus
from repro.core.sensitivity import (
    client_sensitivities,
    robustness_sweep,
)
from repro.core.sizing import BufferSizer
from repro.errors import ReproError


@pytest.fixture(scope="module")
def sized_amba():
    return BufferSizer(total_budget=16).size(amba_like())


class TestClientSensitivities:
    def test_covers_every_client(self, sized_amba):
        sens = client_sensitivities(sized_amba)
        names = {s.client for s in sens}
        assert names == set(sized_amba.allocation.sizes)

    def test_sorted_by_headroom(self, sized_amba):
        sens = client_sensitivities(sized_amba)
        headrooms = [s.headroom for s in sens]
        assert headrooms == sorted(headrooms)

    def test_gradients_nonnegative(self, sized_amba):
        # More traffic can only increase a loss queue's loss rate.
        for s in client_sensitivities(sized_amba):
            assert s.loss_gradient >= -1e-9

    def test_headroom_bounds(self, sized_amba):
        for s in client_sensitivities(sized_amba, max_multiplier=4.0):
            assert 0.0 <= s.headroom <= 4.0

    def test_zero_rate_client_is_safe(self):
        result = BufferSizer(total_budget=12).size(single_bus())
        # single_bus: every processor sources traffic; build a variant
        # with a silent sink instead.
        from repro.arch.topology import Topology

        topo = Topology("sink")
        topo.add_bus("x")
        topo.add_processor("talker", "x", 4.0)
        topo.add_processor("sink", "x", 4.0)
        topo.add_poisson_flow("f", "talker", "sink", 1.0)
        result = BufferSizer(total_budget=8).size(topo)
        sens = {
            s.client: s for s in client_sensitivities(result)
        }
        assert sens["sink"].base_loss_rate == 0.0
        assert sens["sink"].headroom == pytest.approx(4.0)

    def test_validation(self, sized_amba):
        with pytest.raises(ReproError):
            client_sensitivities(sized_amba, rate_step=0.0)
        with pytest.raises(ReproError):
            client_sensitivities(sized_amba, fragility_blocking=1.5)


class TestRobustnessSweep:
    def test_monotone_in_traffic(self, sized_amba):
        curve = robustness_sweep(
            sized_amba, multipliers=(0.5, 1.0, 1.5, 2.0)
        )
        values = [curve[m] for m in (0.5, 1.0, 1.5, 2.0)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_zero_multiplier_rejected(self, sized_amba):
        with pytest.raises(ReproError):
            robustness_sweep(sized_amba, multipliers=(0.0,))

    def test_empty_rejected(self, sized_amba):
        with pytest.raises(ReproError):
            robustness_sweep(sized_amba, multipliers=())

    def test_values_nonnegative(self, sized_amba):
        curve = robustness_sweep(sized_amba)
        assert all(v >= 0 for v in curve.values())
