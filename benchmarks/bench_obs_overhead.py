"""Benchmark for the observability layer's hot-path cost.

``bench_obs_overhead`` measures one instrumented operation — a span
around a trivial body plus a counter increment, the exact shape every
``repro.obs`` call site uses — in three modes: observability off (the
production default; must cost one singleton method call), metrics only,
and metrics + tracing.  ``extra_info.events_per_second`` puts all three
in ``BENCH_quick.json`` so ``diff_bench.py`` trips if the disabled path
ever stops being free or the enabled path gets dramatically slower.
"""

import pytest

from repro import obs

#: Instrumented operations per measured call.
OPS_PER_CALL = 50_000

MODES = ("off", "metrics", "metrics+trace")


def _configure(mode: str) -> None:
    obs.reset()
    if mode in ("metrics", "metrics+trace"):
        obs.enable_metrics()
    if mode == "metrics+trace":
        obs.enable_tracing()


def _instrumented_loop() -> int:
    # Call sites fetch metrics once and then inc on the hot path; the
    # span helper is called per operation (that is its real cost).
    counter = obs.counter("bench.ops")
    total = 0
    for i in range(OPS_PER_CALL):
        with obs.span("bench.op"):
            total += i
        counter.inc()
    return total


def _populated_broker():
    """A broker with every snapshot section lit, as the scraper sees it."""
    from repro.dist import Broker

    broker = Broker(lease_timeout=60.0)
    broker.submit("bench", ["p%d" % i for i in range(64)])
    for worker in ("w1", "w2", "w3", "w4"):
        for job_id, payload in broker.pull(worker, max_jobs=8):
            broker.complete(worker, job_id, payload, runtime=0.01)
        broker.heartbeat(
            worker,
            metrics={
                "counters": {
                    "worker.jobs": 8,
                    "cachetier.hits": 4,
                    "cachetier.misses": 4,
                    "scenario.replications.erlang": 32,
                    "scenario.blocks.erlang": 8,
                },
                "gauges": {"worker.outbox": 0},
            },
        )
    broker.cache_put("key", b"x" * 128)
    broker.cache_get("key")
    return broker


def test_bench_obs_scrape(benchmark):
    """Snapshots rendered to Prometheus text per second (the scrape path).

    One iteration is exactly what one ``GET /metrics`` costs the broker
    side: ``obs_sample()`` (snapshot + history record) plus
    ``render_prometheus``.  ``extra_info.snapshots_per_second`` lands in
    ``BENCH_quick.json`` so a regression in the exposition path (which
    runs on the broker's box, next to the queue) is caught like any
    other hot-path slip.
    """
    from repro.obs.promexport import render_prometheus

    broker = _populated_broker()

    def _scrape():
        return render_prometheus(broker.obs_sample())

    text = benchmark(_scrape)
    assert "repro_queue_completed_total 32" in text
    if benchmark.stats:  # absent under --benchmark-disable
        benchmark.group = "obs_scrape"
        benchmark.extra_info["snapshots_per_second"] = round(
            1.0 / benchmark.stats["mean"]
        )


@pytest.mark.parametrize("mode", MODES)
def test_bench_obs_overhead(benchmark, mode):
    """Instrumented ops per second with obs off / metrics / tracing."""
    _configure(mode)
    try:
        expected = sum(range(OPS_PER_CALL))
        result = benchmark(_instrumented_loop)
        assert result == expected  # observation never changes the result
        if benchmark.stats:  # absent under --benchmark-disable
            benchmark.group = "obs_overhead"
            benchmark.extra_info["mode"] = mode
            benchmark.extra_info["ops"] = OPS_PER_CALL
            benchmark.extra_info["events_per_second"] = round(
                OPS_PER_CALL / benchmark.stats["mean"]
            )
    finally:
        obs.reset()
