"""Benchmark for the observability layer's hot-path cost.

``bench_obs_overhead`` measures one instrumented operation — a span
around a trivial body plus a counter increment, the exact shape every
``repro.obs`` call site uses — in three modes: observability off (the
production default; must cost one singleton method call), metrics only,
and metrics + tracing.  ``extra_info.events_per_second`` puts all three
in ``BENCH_quick.json`` so ``diff_bench.py`` trips if the disabled path
ever stops being free or the enabled path gets dramatically slower.
"""

import pytest

from repro import obs

#: Instrumented operations per measured call.
OPS_PER_CALL = 50_000

MODES = ("off", "metrics", "metrics+trace")


def _configure(mode: str) -> None:
    obs.reset()
    if mode in ("metrics", "metrics+trace"):
        obs.enable_metrics()
    if mode == "metrics+trace":
        obs.enable_tracing()


def _instrumented_loop() -> int:
    # Call sites fetch metrics once and then inc on the hot path; the
    # span helper is called per operation (that is its real cost).
    counter = obs.counter("bench.ops")
    total = 0
    for i in range(OPS_PER_CALL):
        with obs.span("bench.op"):
            total += i
        counter.inc()
    return total


@pytest.mark.parametrize("mode", MODES)
def test_bench_obs_overhead(benchmark, mode):
    """Instrumented ops per second with obs off / metrics / tracing."""
    _configure(mode)
    try:
        expected = sum(range(OPS_PER_CALL))
        result = benchmark(_instrumented_loop)
        assert result == expected  # observation never changes the result
        if benchmark.stats:  # absent under --benchmark-disable
            benchmark.group = "obs_overhead"
            benchmark.extra_info["mode"] = mode
            benchmark.extra_info["ops"] = OPS_PER_CALL
            benchmark.extra_info["events_per_second"] = round(
                OPS_PER_CALL / benchmark.stats["mean"]
            )
    finally:
        obs.reset()
