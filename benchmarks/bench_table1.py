"""E2 — Table 1: pre/post loss under total buffer 160 / 320 / 640.

Regenerates the paper's Table 1 on the synthetic network processor.
Shape expectations: post-sizing losses shrink as the budget grows and
are (near) zero at 640; at 160 redistribution helps much less.
"""

import pytest

from repro.experiments import run_table1
from repro.experiments.common import POST, PRE
from repro.experiments.table1 import PAPER_BUDGETS, PAPER_PROCESSORS

_cache = {}


def _run(duration, replications):
    key = (duration, replications)
    if key not in _cache:
        _cache[key] = run_table1(
            budgets=PAPER_BUDGETS,
            duration=duration,
            replications=replications,
        )
    return _cache[key]


def test_table1_regeneration(benchmark, bench_duration, bench_replications):
    result = benchmark.pedantic(
        _run,
        args=(bench_duration, bench_replications),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render(PAPER_PROCESSORS))
    # Post-sizing totals decrease with budget (paper: down to zero at 640).
    totals = [result.total(b, POST) for b in PAPER_BUDGETS]
    assert totals[0] >= totals[1] >= totals[2], (
        f"post-sizing loss must fall with budget, got {totals}"
    )
    # At the largest budget post-sizing loss is essentially gone.
    offered_scale = result.total(PAPER_BUDGETS[0], PRE) + 1.0
    assert totals[-1] <= 0.05 * offered_scale, (
        f"loss at budget 640 should be near zero, got {totals[-1]}"
    )
