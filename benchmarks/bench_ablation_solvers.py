"""E5 — LP vs relative value iteration vs policy iteration.

The occupation-measure LP is the method the paper relies on; this
ablation certifies it against two independent dynamic-programming
solvers on random unconstrained bus instances (they must agree to
numerical precision) and times each solver on a fixed instance.
"""

import numpy as np
import pytest

from repro.core.bus_model import BusClient, build_joint_bus_ctmdp
from repro.core.dp import policy_iteration, relative_value_iteration
from repro.core.lp import AverageCostLP
from repro.experiments import run_solver_agreement


def fixed_instance():
    clients = [
        BusClient("a", 1.2, 2.5, 3, loss_weight=2.0),
        BusClient("b", 0.8, 1.9, 3, loss_weight=1.0),
        BusClient("c", 0.5, 2.2, 2, loss_weight=3.0),
    ]
    return build_joint_bus_ctmdp(clients)


def test_solver_agreement_report(benchmark):
    result = benchmark.pedantic(
        run_solver_agreement, kwargs={"instances": 8, "seed": 0},
        iterations=1, rounds=1,
    )
    print()
    print(result.render())
    assert result.max_lp_vi_gap < 1e-5
    assert result.max_lp_pi_gap < 1e-5


def test_bench_lp(benchmark):
    model = fixed_instance()
    solution = benchmark(lambda: AverageCostLP(model).solve())
    assert solution.objective >= 0


def test_bench_value_iteration(benchmark):
    model = fixed_instance()
    solution = benchmark(lambda: relative_value_iteration(model, tol=1e-9))
    assert solution.average_cost_rate >= 0


def test_bench_policy_iteration(benchmark):
    model = fixed_instance()
    solution = benchmark(lambda: policy_iteration(model))
    assert solution.average_cost_rate >= 0
