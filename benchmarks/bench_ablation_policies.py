"""E6 — allocation policies across load levels.

Sweeps the network processor's load scale and compares uniform,
proportional, analytic-greedy and CTMDP sizing.  Shape expectation: the
CTMDP allocation is competitive at every load and strongest where the
budget actually binds.
"""

import pytest

from repro.experiments import run_policy_sweep

_cache = {}


def _run():
    if "result" not in _cache:
        _cache["result"] = run_policy_sweep(
            load_scales=(0.8, 1.0, 1.2),
            budget=160,
            replications=2,
            duration=600.0,
        )
    return _cache["result"]


def test_policy_sweep(benchmark):
    result = benchmark.pedantic(_run, iterations=1, rounds=1)
    print()
    print(result.render())
    totals = result.totals()
    # CTMDP must beat the naive uniform baseline at the heaviest load.
    assert totals["ctmdp"][-1] <= totals["uniform"][-1] * 1.25, (
        "CTMDP sizing should be competitive at high load: "
        f"ctmdp={totals['ctmdp'][-1]:.1f} uniform={totals['uniform'][-1]:.1f}"
    )
