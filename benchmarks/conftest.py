"""Shared benchmark configuration.

Benchmarks regenerate the paper's tables and figures; each prints the
reproduced artefact once (rows/series as the paper reports them) and
times the regeneration via pytest-benchmark.  Horizons and replication
counts are reduced from the experiment defaults so the full bench suite
runs in minutes; the experiment drivers accept larger values for
publication-grade runs (see EXPERIMENTS.md).
"""

import pytest

#: Simulation horizon used by bench runs (experiment default: 3000).
BENCH_DURATION = 800.0
#: Replications used by bench runs (paper: 10).
BENCH_REPLICATIONS = 3


@pytest.fixture(scope="session")
def bench_duration():
    return BENCH_DURATION


@pytest.fixture(scope="session")
def bench_replications():
    return BENCH_REPLICATIONS
