"""Infrastructure bench: discrete-event simulator throughput.

Not a paper artefact — tracks the events-per-second of both simulation
backends (the heap reference engine and the array-native batched lane)
over a scenario subset (the paper's netproc testbed plus two template
scenarios from the registry) so performance regressions in the
substrate, and the batched lane's speedup over the reference, are
visible in benchmark runs across architecture shapes.  Each throughput
bench reports ``events_per_second`` in its ``extra_info`` (arrivals
plus service starts over mean wall time); ``make bench-quick`` groups
the backends per scenario so the ratio reads off directly.
"""

import pytest

from repro import scenarios
from repro.policies.uniform import UniformSizing
from repro.sim.runner import SIM_BACKENDS, simulate
from repro.sim.system import CommunicationSystem

#: Simulated horizon of the throughput benches.  Long enough that the
#: event loop dominates one-time system construction.
DURATION = 400.0

#: Scenario subset the throughput/sizing benches sweep: the paper's
#: testbed plus a bridged template at each end of the size range.
BENCH_SCENARIOS = ("netproc", "fig1", "amba")


def _setup(scenario):
    """``(topology, capacities)`` of one scenario at its default budget."""
    spec = scenarios.get(scenario)
    topology = spec.topology()
    capacities = (
        UniformSizing().allocate(topology, spec.default_budget)
        .as_capacities()
    )
    return topology, capacities


def _run(topology, capacities, backend):
    """One fixed-seed run returning the monitor (event counts)."""
    if backend == "megabatch":
        from repro.sim.megabatch import MegaBatchLane

        lane = MegaBatchLane(topology, capacities, [3])
        lane.start()
        lane.run_until(DURATION)
        return lane.monitor_for(0)
    system = CommunicationSystem(topology, capacities, seed=3)
    if backend == "batched":
        from repro.sim.batched import BatchedSystem

        lane = BatchedSystem(system)
        lane.start()
        lane.run_until(DURATION)
    else:
        for source in system.sources:
            source.start()
        system.simulator.run_until(DURATION)
    return system.monitor


@pytest.mark.parametrize("scenario", BENCH_SCENARIOS)
@pytest.mark.parametrize("backend", SIM_BACKENDS)
def test_simulator_throughput(benchmark, scenario, backend):
    benchmark.group = f"simulator_throughput[{scenario}]"
    topology, capacities = _setup(scenario)

    monitor = benchmark(_run, topology, capacities, backend)
    # Executed events = packet arrivals + service starts (the two event
    # kinds of this model); report throughput for the perf trajectory.
    events = monitor.total_offered() + monitor.waiting_time_count
    assert events > 0
    if benchmark.stats:  # absent under --benchmark-disable
        benchmark.extra_info["scenario"] = scenario
        benchmark.extra_info["events"] = events
        benchmark.extra_info["events_per_second"] = round(
            events / benchmark.stats["mean"]
        )


#: Replication counts of the mega-batch replication-throughput bench.
MEGABATCH_RS = (1, 8, 32)


def _run_replications(topology, capacities, backend, replications):
    """One fixed-seed replication batch; returns per-rep monitors."""
    seeds = [3 + 1000 * r for r in range(replications)]
    if backend == "megabatch":
        from repro.sim.megabatch import MegaBatchLane

        lane = MegaBatchLane(topology, capacities, seeds)
        lane.start()
        lane.run_until(DURATION)
        return [lane.monitor_for(r) for r in range(lane.R)]
    monitors = []
    for seed in seeds:
        from repro.sim.batched import BatchedSystem

        lane = BatchedSystem(
            CommunicationSystem(topology, capacities, seed=seed)
        )
        lane.start()
        lane.run_until(DURATION)
        monitors.append(lane.monitor)
    return monitors


@pytest.mark.parametrize("replications", MEGABATCH_RS)
@pytest.mark.parametrize("backend", ("batched", "megabatch"))
def test_replication_throughput(benchmark, backend, replications):
    """Replications/s of one netproc cell: mega-batch vs serial batched.

    The mega-batch acceptance headline — one kernel cell advancing R
    replications at once vs R serial batched runs — measured on the
    paper's testbed.  Reports both ``replications_per_second`` and
    ``events_per_second`` so the diff harness tracks whichever is
    present.
    """
    benchmark.group = f"replication_throughput[netproc,R={replications}]"
    topology, capacities = _setup("netproc")

    monitors = benchmark(
        _run_replications, topology, capacities, backend, replications
    )
    events = sum(
        m.total_offered() + m.waiting_time_count for m in monitors
    )
    assert events > 0
    if benchmark.stats:  # absent under --benchmark-disable
        mean = benchmark.stats["mean"]
        benchmark.extra_info["scenario"] = "netproc"
        benchmark.extra_info["replications"] = replications
        benchmark.extra_info["events"] = events
        benchmark.extra_info["events_per_second"] = round(events / mean)
        benchmark.extra_info["replications_per_second"] = round(
            replications / mean, 3
        )


@pytest.mark.parametrize("scenario", BENCH_SCENARIOS)
def test_backend_equivalence_smoke(scenario):
    """All three backends agree bitwise on the bench workloads.

    Guards the determinism contract right where the speedup is
    measured: identical fixed-seed metrics, so the throughput
    comparison above is apples to apples — on every bench scenario.
    """
    topology, capacities = _setup(scenario)
    heap = simulate(topology, capacities, duration=150.0, seed=3)
    batched = simulate(
        topology, capacities, duration=150.0, seed=3, backend="batched"
    )
    megabatch = simulate(
        topology, capacities, duration=150.0, seed=3, backend="megabatch"
    )
    assert heap == batched
    assert heap == megabatch


@pytest.mark.parametrize("scenario", BENCH_SCENARIOS)
def test_sizing_throughput(benchmark, scenario):
    """End-to-end CTMDP sizing latency per scenario at default budget."""
    from repro.core.sizing import BufferSizer

    benchmark.group = f"sizing_throughput[{scenario}]"
    spec = scenarios.get(scenario)
    topology = spec.topology()

    def run():
        return BufferSizer(
            total_budget=spec.default_budget, **spec.sizer_kwargs
        ).size(topology)

    result = benchmark.pedantic(run, iterations=1, rounds=2)
    assert result.allocation.total == spec.default_budget
    benchmark.extra_info["scenario"] = scenario
