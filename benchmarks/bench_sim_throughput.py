"""Infrastructure bench: discrete-event simulator throughput.

Not a paper artefact — tracks the events-per-second of both simulation
backends (the heap reference engine and the array-native batched lane)
on the network-processor testbed so performance regressions in the
substrate, and the batched lane's speedup over the reference, are
visible in benchmark runs.  Each throughput bench reports
``events_per_second`` in its ``extra_info`` (arrivals plus service
starts over mean wall time); ``make bench-quick`` groups the two
backends so the ratio reads off directly.
"""

import pytest

from repro.arch.netproc import network_processor
from repro.policies.uniform import UniformSizing
from repro.sim.runner import SIM_BACKENDS, simulate
from repro.sim.system import CommunicationSystem

#: Simulated horizon of the throughput benches.  Long enough that the
#: event loop dominates one-time system construction.
DURATION = 400.0


def _run(topology, capacities, backend):
    """One fixed-seed run returning the monitor (event counts)."""
    system = CommunicationSystem(topology, capacities, seed=3)
    if backend == "batched":
        from repro.sim.batched import BatchedSystem

        lane = BatchedSystem(system)
        lane.start()
        lane.run_until(DURATION)
    else:
        for source in system.sources:
            source.start()
        system.simulator.run_until(DURATION)
    return system.monitor


@pytest.mark.parametrize("backend", SIM_BACKENDS)
def test_simulator_throughput(benchmark, backend):
    topology = network_processor()
    capacities = UniformSizing().allocate(topology, 160).as_capacities()

    monitor = benchmark(_run, topology, capacities, backend)
    # Executed events = packet arrivals + service starts (the two event
    # kinds of this model); report throughput for the perf trajectory.
    events = monitor.total_offered() + monitor.waiting_time_count
    assert events > 0
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_second"] = round(
        events / benchmark.stats["mean"]
    )


def test_backend_equivalence_smoke():
    """The two backends agree bitwise on the bench workload.

    Guards the determinism contract right where the speedup is
    measured: identical fixed-seed metrics, so the throughput
    comparison above is apples to apples.
    """
    topology = network_processor()
    capacities = UniformSizing().allocate(topology, 160).as_capacities()
    heap = simulate(topology, capacities, duration=150.0, seed=3)
    batched = simulate(
        topology, capacities, duration=150.0, seed=3, backend="batched"
    )
    assert heap == batched


def test_sizing_throughput(benchmark):
    """End-to-end CTMDP sizing latency on the full testbed."""
    from repro.core.sizing import BufferSizer

    topology = network_processor()

    def run():
        return BufferSizer(total_budget=160).size(topology)

    result = benchmark.pedantic(run, iterations=1, rounds=2)
    assert result.allocation.total == 160
