"""Infrastructure bench: discrete-event simulator throughput.

Not a paper artefact — tracks the events-per-second of the simulator so
performance regressions in the substrate are visible in benchmark runs.
"""

import pytest

from repro.arch.netproc import network_processor
from repro.policies.uniform import UniformSizing
from repro.sim.runner import simulate


def test_simulator_throughput(benchmark):
    topology = network_processor()
    capacities = UniformSizing().allocate(topology, 160).as_capacities()

    def run():
        return simulate(topology, capacities, duration=400.0, seed=3)

    result = benchmark(run)
    assert result.total_offered > 0


def test_sizing_throughput(benchmark):
    """End-to-end CTMDP sizing latency on the full testbed."""
    from repro.core.sizing import BufferSizer

    topology = network_processor()

    def run():
        return BufferSizer(total_budget=160).size(topology)

    result = benchmark.pedantic(run, iterations=1, rounds=2)
    assert result.allocation.total == 160
