"""E8 — weighted-loss extension.

Section 3: "allowing some losses to be more important than the others".
This bench marks two processors critical, re-sizes with their losses
up-weighted, deploys the implied service-priority arbitration, and
verifies the critical processors' losses drop relative to the neutral
configuration (while total loss may rise — the price of protection).
"""

import pytest

from repro.experiments.extensions import run_weighted_loss

_cache = {}


def _run():
    if "result" not in _cache:
        _cache["result"] = run_weighted_loss(
            critical=("p1", "p16"),
            weight=8.0,
            budget=160,
            replications=3,
            duration=800.0,
        )
    return _cache["result"]


def test_weighted_loss_extension(benchmark):
    result = benchmark.pedantic(_run, iterations=1, rounds=1)
    print()
    print(result.render())
    # The weighted configuration must protect the critical processors.
    assert result.critical_loss_weighted <= (
        result.critical_loss_unweighted + 1.0
    ), (
        f"critical loss should drop: "
        f"{result.critical_loss_unweighted:.1f} -> "
        f"{result.critical_loss_weighted:.1f}"
    )
