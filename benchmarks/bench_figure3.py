"""E1 — Figure 3: per-processor loss pre / post / timeout.

Regenerates the paper's Figure 3 on the synthetic network processor and
prints the three series.  Shape expectations (checked as soft asserts):
post-sizing total below pre-sizing total, timeout total the worst.
"""

import pytest

from repro.experiments import run_figure3
from repro.experiments.common import POST, PRE, TIMEOUT

_cache = {}


def _run(duration, replications):
    key = (duration, replications)
    if key not in _cache:
        _cache[key] = run_figure3(
            budget=160, duration=duration, replications=replications
        )
    return _cache[key]


def test_figure3_regeneration(benchmark, bench_duration, bench_replications):
    result = benchmark.pedantic(
        _run,
        args=(bench_duration, bench_replications),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render(width=32))
    comparison = result.comparison
    assert comparison.mean_total_loss(POST) <= comparison.mean_total_loss(
        TIMEOUT
    ), "CTMDP sizing must beat the timeout policy in aggregate"
    # The paper's ~20% claim, with a generous band for the synthetic
    # testbed and short bench horizon.
    assert result.improvement_vs_pre() > -0.25, (
        "post-sizing should not lose badly to constant sizing"
    )
