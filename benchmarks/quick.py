"""Quick perf smoke target: ``python -m benchmarks.quick``.

Runs the simulator/sizing throughput benchmarks (both simulation
backends, grouped per function so the heap-vs-batched ratio reads off
the table directly), the compiled-kernel micro-benches, the
execution-runtime benches (serial vs pooled replications, cold vs warm
sweeps), the distributed-queue benches
(``bench_dist_overhead`` per-job vs batched wire transport, and
``bench_dist_makespan`` FIFO vs cost scheduling on a skewed matrix),
and the observability hot-path bench
(``bench_obs_overhead``: obs off vs metrics vs tracing) with
``--benchmark-min-rounds=3`` — a couple
of minutes, meant
to run on every PR so perf regressions in the hot paths are visible
immediately.  ``make bench-quick`` wraps this module; CI passes
``--benchmark-json`` through ``BENCH_ARGS`` and uploads the result so
the ``BENCH_*.json`` perf trajectory accumulates per run.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest


def main() -> int:
    bench_dir = Path(__file__).resolve().parent
    args = [
        str(bench_dir / "bench_sim_throughput.py"),
        str(bench_dir / "bench_compiled_kernels.py"),
        str(bench_dir / "bench_exec_runtime.py"),
        str(bench_dir / "bench_dist.py"),
        str(bench_dir / "bench_obs_overhead.py"),
        "--benchmark-min-rounds=3",
        # Group by (explicit group, function): the scenario-parametrized
        # simulator benches set one group per scenario, so heap vs
        # batched render side by side with the relative speedup column
        # for every scenario; ungrouped benches fall back to per-func.
        "--benchmark-group-by=group,func",
        "-q",
    ]
    args.extend(sys.argv[1:])
    return pytest.main(args)


if __name__ == "__main__":
    raise SystemExit(main())
