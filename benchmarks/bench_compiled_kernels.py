"""Micro-benchmarks for the compiled kernel layer (repro.core.compiled).

Infrastructure benches, not paper artefacts: they isolate the building
blocks the sizing pipeline's wall-clock is made of — model freeze,
sparse uniformization, vectorised DP sweeps, lattice refresh, and
warm-started LP re-solves — so a regression in any one of them is
visible without re-running the end-to-end pipeline bench.  The freeze
and lattice benches additionally run on real scenario subsystems (the
largest split cluster of each registry scenario in the bench subset),
so kernel regressions show up on the shapes the sizing pipeline
actually solves, not just on synthetic clients.
"""

import numpy as np
import pytest

from repro import scenarios
from repro.core.bus_model import BusClient, build_joint_bus_ctmdp
from repro.core.compiled import CompiledBusLattice, CompiledCTMDP
from repro.core.dp import relative_value_iteration
from repro.core.lp import BlockLP
from repro.core.splitting import split

#: Scenario subset for the scenario-derived kernel benches (kept small:
#: each adds a freeze + lattice bench pair).
BENCH_SCENARIOS = ("netproc", "amba")


def _clients(n=4, cap=4):
    rng = np.random.default_rng(12)
    return [
        BusClient(
            f"c{i}",
            arrival_rate=float(rng.uniform(0.5, 1.5)),
            service_rate=float(rng.uniform(2.0, 4.0)),
            capacity=cap,
            loss_weight=float(rng.uniform(0.5, 2.0)),
        )
        for i in range(n)
    ]


def _scenario_clients(scenario, capacity_cap=4):
    """Clients of the largest split subsystem of one scenario."""
    topology = scenarios.get(scenario).topology()
    system = split(topology, capacity_cap=capacity_cap)
    return max(
        (sub.clients for sub in system.subsystems), key=len
    )


def test_compile_ctmdp(benchmark):
    """Freezing a built CTMDP into flat arrays."""
    model = build_joint_bus_ctmdp(_clients())
    benchmark(lambda: CompiledCTMDP.from_model(model))


@pytest.mark.parametrize("scenario", BENCH_SCENARIOS)
def test_compile_ctmdp_scenario(benchmark, scenario):
    """Model freeze on a real scenario's largest split subsystem."""
    clients = _scenario_clients(scenario)
    model = build_joint_bus_ctmdp(clients)
    benchmark.extra_info["scenario"] = scenario
    benchmark.extra_info["clients"] = len(clients)
    benchmark(lambda: CompiledCTMDP.from_model(model))


def test_sparse_uniformization(benchmark):
    """CSR uniformization of a 625-state joint bus model."""
    comp = build_joint_bus_ctmdp(_clients()).compiled()
    p, _c, _rate = benchmark(comp.uniformized_sparse)
    assert p.shape[0] == comp.n_pairs


def test_dense_uniformization_reference(benchmark):
    """The dense reference path, for the speedup ratio."""
    model = build_joint_bus_ctmdp(_clients())
    model.compiled()  # exclude one-time compile from the dense timing
    p, _c, _pairs, _rate = benchmark(model.uniformized)
    assert p.shape[1] == model.num_states


def test_vectorized_value_iteration(benchmark):
    """Vectorised RVI on the compiled sparse form."""
    model = build_joint_bus_ctmdp(_clients(n=3, cap=4))
    solution = benchmark(lambda: relative_value_iteration(model, tol=1e-9))
    assert solution.average_cost_rate >= 0.0


def test_lattice_build(benchmark):
    """Building the joint occupancy lattice directly into arrays."""
    clients = _clients()
    lattice = benchmark(lambda: CompiledBusLattice(clients))
    assert lattice.n_states == 5 ** 4


@pytest.mark.parametrize("scenario", BENCH_SCENARIOS)
def test_lattice_build_scenario(benchmark, scenario):
    """Lattice build on a real scenario's largest split subsystem."""
    clients = _scenario_clients(scenario)
    benchmark.extra_info["scenario"] = scenario
    benchmark.extra_info["clients"] = len(clients)
    lattice = benchmark(lambda: CompiledBusLattice(clients))
    assert lattice.n_states > 1


def test_lattice_refresh_vs_rebuild(benchmark):
    """In-place rate refresh — the bridge fixed point's inner step."""
    clients = _clients()
    lattice = CompiledBusLattice(clients)
    rates = {c.name: c.arrival_rate * 0.9 for c in clients}

    def refresh():
        assert lattice.refresh(rates)

    benchmark(refresh)


def test_warm_started_lp_resolve(benchmark):
    """Re-solving the occupation LP from the previous optimal basis."""
    block = BlockLP()
    block.add_block(build_joint_bus_ctmdp(_clients()))
    program = block.compile()
    program.solve(warm=False)  # cold solve establishes the basis

    def resolve():
        result, _ = program.solve(warm=True)
        return result

    result = benchmark(resolve)
    assert result.status == "optimal"
