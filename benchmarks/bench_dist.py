"""Benchmark for the distributed queue (repro.dist) overhead.

``bench_dist_overhead`` measures the pure round-trip cost of the
broker/worker path — trivial ``echo`` jobs through an in-process broker
and two local worker processes — so the queue's per-job overhead is
visible in ``BENCH_quick.json`` next to the throughput numbers it must
stay small against.  The equivalence assert (ordered merge equals the
serial list) rides along like in every other bench.
"""

import multiprocessing

import pytest

from repro.dist import BrokerServer, DistExecutor, worker_loop
from repro.dist.jobs import echo

#: Trivial jobs per measured map call.
JOBS_PER_CALL = 32


@pytest.fixture(scope="module")
def fleet():
    server = BrokerServer(port=0, lease_timeout=30.0).start_in_thread()
    context = multiprocessing.get_context()
    workers = [
        context.Process(
            target=worker_loop,
            args=(server.address,),
            kwargs=dict(poll_interval=0.005),
            daemon=True,
        )
        for _ in range(2)
    ]
    for worker in workers:
        worker.start()
    executor = DistExecutor(
        server.address, poll_interval=0.005, timeout=120
    )
    executor.map(echo, [0])  # connect + let the workers spin up
    yield executor
    for worker in workers:
        worker.terminate()
    server.stop()


def test_bench_dist_overhead(benchmark, fleet):
    """Round-trips per second of the work-stealing queue (echo jobs)."""
    items = list(range(JOBS_PER_CALL))
    result = benchmark(lambda: fleet.map(echo, items))
    assert result == items  # the ordered-merge contract, measured path
    benchmark.extra_info["jobs_per_call"] = JOBS_PER_CALL
    stats = fleet.stats()
    benchmark.extra_info["steals"] = stats["steals"]
