"""Benchmarks for the distributed queue (repro.dist): overhead + makespan.

``bench_dist_overhead`` measures the pure round-trip cost of the
broker/worker path — trivial ``echo`` jobs through an in-process broker
and two local worker processes — parametrized over the wire shape:
``perjob`` is the legacy pre-batching baseline (FIFO leases, one
``start()`` + one ``complete()`` RPC per job), ``batched`` the full
fast path (``schedule="cost"``: the all-cheap batch comes back as one
pinned bulk lease with zero per-job ``start()`` RPCs, and the worker
uploads ``complete_many()`` envelopes of 8).  The acceptance bar for
the transport work is the ratio between the two rows'
``jobs_per_second``.

``bench_dist_makespan`` measures what cost scheduling is *for*: a
skewed matrix (one long cell submitted last + many short cells) on a
4-worker fleet.  Under FIFO the long job lands on one worker after the
shorts drain, so its full runtime is serialized at the tail; under
``schedule="cost"`` the warm cost model orders it first (LPT) and the
shorts pack behind it.  Both rows report ``makespan_seconds`` and
``jobs_per_second`` in ``extra_info`` so ``diff_bench.py`` tracks them
run over run.  The equivalence assert (ordered merge equals the serial
list) rides along like in every other bench.
"""

import multiprocessing

import pytest

from repro.dist import BrokerServer, DistExecutor, worker_loop
from repro.dist.jobs import echo, sleep_block

#: Trivial jobs per measured overhead map call.
JOBS_PER_CALL = 32

#: The skewed makespan matrix: many short cells plus one long cell
#: submitted last (the FIFO worst case the scheduler exists to fix).
SHORT_JOBS = 64
SHORT_SECONDS = 0.04
LONG_SECONDS = 1.0

#: Makespans per schedule, shared across the parametrized cases so the
#: ``cost`` case can assert it actually beat ``fifo`` in-process.
_makespans = {}


def _start_fleet(workers, upload_batch, poll_interval=0.005,
                 schedule="fifo"):
    server = BrokerServer(
        port=0, lease_timeout=30.0, schedule=schedule
    ).start_in_thread()
    context = multiprocessing.get_context()
    procs = [
        context.Process(
            target=worker_loop,
            args=(server.address,),
            kwargs=dict(
                poll_interval=poll_interval, upload_batch=upload_batch
            ),
            daemon=True,
        )
        for _ in range(workers)
    ]
    for proc in procs:
        proc.start()
    return server, procs


@pytest.fixture(
    scope="module",
    params=[(1, "fifo"), (8, "cost")],
    ids=["perjob", "batched"],
)
def fleet(request):
    """A 2-worker fleet in one of the two wire shapes: the legacy
    per-job RPC baseline, or the batched fast path (pinned bulk
    leases + ``complete_many`` uploads)."""
    upload_batch, schedule = request.param
    server, procs = _start_fleet(
        workers=2, upload_batch=upload_batch, poll_interval=0.002,
        schedule=schedule,
    )
    executor = DistExecutor(
        server.address, poll_interval=0.002, timeout=120
    )
    executor.map(echo, [0])  # connect + let the workers spin up
    yield upload_batch, executor
    for proc in procs:
        proc.terminate()
    server.stop()


def test_bench_dist_overhead(benchmark, fleet):
    """Round-trips per second of the work-stealing queue (echo jobs)."""
    upload_batch, executor = fleet
    items = list(range(JOBS_PER_CALL))
    result = benchmark(lambda: executor.map(echo, items))
    assert result == items  # the ordered-merge contract, measured path
    benchmark.extra_info["jobs_per_call"] = JOBS_PER_CALL
    benchmark.extra_info["upload_batch"] = upload_batch
    benchmark.extra_info["jobs_per_second"] = round(
        JOBS_PER_CALL / benchmark.stats["mean"], 1
    )
    stats = executor.stats()
    benchmark.extra_info["steals"] = stats["steals"]


@pytest.fixture(scope="module")
def makespan_fleet():
    """A 4-worker fleet with a warm cost model.

    The warm-up pass runs the skewed matrix once so the broker's EWMA
    rates know the long cell from the shorts — the bench then measures
    scheduling quality, not cold-start learning.
    """
    server, procs = _start_fleet(workers=4, upload_batch=8)
    executor = DistExecutor(
        server.address, poll_interval=0.005, timeout=120
    )
    executor.map(sleep_block, _matrix(scale=0.1))  # spin up + warm model
    executor.schedule = "cost"
    executor.map(sleep_block, _matrix(scale=1.0))
    yield executor
    for proc in procs:
        proc.terminate()
    server.stop()


def _matrix(scale=1.0):
    """The skewed job list: shorts first, the long cell dead last."""
    items = [
        {"scenario": "short", "index": i, "duration": SHORT_SECONDS * scale}
        for i in range(SHORT_JOBS)
    ]
    items.append(
        {"scenario": "long", "index": SHORT_JOBS, "duration": LONG_SECONDS * scale}
    )
    return items


@pytest.mark.parametrize("schedule", ["fifo", "cost"])
def test_bench_dist_makespan(benchmark, makespan_fleet, schedule):
    """Skewed-matrix makespan: FIFO tail-serializes the long cell,
    cost/LPT front-loads it."""
    items = _matrix()
    expected = [
        {"scenario": it["scenario"], "index": it["index"], "duration": it["duration"]}
        for it in items
    ]

    makespan_fleet.schedule = schedule

    def run():
        return makespan_fleet.map(sleep_block, items)

    result = benchmark.pedantic(run, iterations=1, rounds=2)
    assert result == expected  # scheduling cannot change the merge
    makespan = benchmark.stats["mean"]
    _makespans[schedule] = makespan
    benchmark.extra_info["schedule"] = schedule
    benchmark.extra_info["workers"] = 4
    benchmark.extra_info["makespan_seconds"] = round(makespan, 4)
    benchmark.extra_info["jobs_per_second"] = round(
        len(items) / makespan, 1
    )
    if schedule == "cost" and "fifo" in _makespans:
        # The real acceptance ratio (>= 1.4x) is asserted on the CI
        # artifact; in-process we only guard against cost scheduling
        # being flatly useless (timer noise makes a tight bound flaky).
        assert makespan < _makespans["fifo"] / 1.25
