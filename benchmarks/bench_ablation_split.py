"""E4 — naive coupled (quadratic) formulation vs bridge splitting.

The paper's Section 2 negative result: the unsplit formulation has
quadratic terms and their Matlab 6.1 attempt failed.  A modern SLSQP can
solve *tiny* instances, but its variable count is the full joint lattice
— exponential in buffer depth — so wall time explodes from depth 1 to
depth 2 already, while the split + joint-LP pipeline is polynomial and
unaffected.  This bench times both and prints the scaling table.
"""

import pytest

from repro.experiments import run_split_vs_quadratic

_cache = {}


def _run():
    if "result" not in _cache:
        _cache["result"] = run_split_vs_quadratic(
            budget=24, quadratic_capacities=(1, 2), quadratic_max_iter=50
        )
    return _cache["result"]


def test_split_vs_quadratic(benchmark):
    result = benchmark.pedantic(_run, iterations=1, rounds=1)
    print()
    print(result.render())
    # The split method must deliver a converged allocation.
    assert result.split_result.allocation.total == 24
    # The naive formulation is bilinear at the bridges.
    small = result.quadratic_by_capacity[1]
    large = result.quadratic_by_capacity[2]
    assert small.num_bilinear_terms > 0
    # Exponential blow-up: depth 2 costs at least 10x depth 1 (or fails
    # outright, the paper's experience with 2005 tooling).
    if large.success and small.success:
        assert large.wall_time_seconds > 10.0 * small.wall_time_seconds
        assert large.num_variables > 5 * small.num_variables
    # The split pipeline beats the depth-2 naive solve regardless.
    assert result.split_wall_time < max(large.wall_time_seconds, 1e-9) or (
        not large.success
    )
