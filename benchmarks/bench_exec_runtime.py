"""Benchmarks for the execution runtime (repro.exec).

Two comparisons, each asserting its equivalence contract while timing:

* **serial vs pooled replications** — the same replication batch through
  ``jobs=1`` and ``jobs=2`` (identical summaries; speedup scales with
  core count, so on single-core CI the pooled run mostly measures
  process overhead);
* **cold vs warm budget sweep** — per-budget cold solves against the
  warm-started chain (identical allocations; the chain saves most outer
  fixed-point iterations, reported via ``extra_info``).
"""

import pytest

from repro.arch.netproc import network_processor
from repro.arch.templates import paper_figure1
from repro.exec.sweeps import sweep_budgets
from repro.sim.runner import replicate

REPLICATIONS = 6
DURATION = 400.0
SWEEP_BUDGETS = (14, 16, 18, 20, 22, 24)


@pytest.fixture(scope="module")
def netproc():
    return network_processor(seed=2005)


@pytest.fixture(scope="module")
def netproc_caps(netproc):
    return {name: 4 for name in netproc.processors}


def test_replicate_serial(benchmark, netproc, netproc_caps):
    """Reference: the in-process replication loop."""
    summary = benchmark(
        lambda: replicate(
            netproc, netproc_caps,
            replications=REPLICATIONS, duration=DURATION, jobs=1,
        )
    )
    assert summary.num_replications == REPLICATIONS


def test_replicate_pooled(benchmark, netproc, netproc_caps):
    """The same batch fanned over two worker processes."""
    serial = replicate(
        netproc, netproc_caps,
        replications=REPLICATIONS, duration=DURATION, jobs=1,
    )
    pooled = benchmark(
        lambda: replicate(
            netproc, netproc_caps,
            replications=REPLICATIONS, duration=DURATION, jobs=2,
        )
    )
    # The determinism contract the speedup must never cost.
    assert pooled.results == serial.results


def test_sweep_cold(benchmark, capsys):
    """Reference: every budget solved from the offered rates."""
    topology = paper_figure1()
    outcome = benchmark(
        lambda: sweep_budgets(topology, SWEEP_BUDGETS, warm_start=False)
    )
    benchmark.extra_info["fixed_point_iterations"] = (
        outcome.total_fixed_point_iterations
    )
    with capsys.disabled():
        print(
            f"\n[cold sweep] {len(SWEEP_BUDGETS)} budgets, "
            f"{outcome.total_fixed_point_iterations} fixed-point iterations"
        )


def test_sweep_warm(benchmark, capsys):
    """The warm-started chain: same allocations, fewer iterations."""
    topology = paper_figure1()
    cold = sweep_budgets(topology, SWEEP_BUDGETS, warm_start=False)
    outcome = benchmark(
        lambda: sweep_budgets(topology, SWEEP_BUDGETS, warm_start=True)
    )
    benchmark.extra_info["fixed_point_iterations"] = (
        outcome.total_fixed_point_iterations
    )
    assert outcome.allocations() == cold.allocations()
    assert (
        outcome.total_fixed_point_iterations
        < cold.total_fixed_point_iterations
    )
    with capsys.disabled():
        print(
            f"\n[warm sweep] {len(SWEEP_BUDGETS)} budgets, "
            f"{outcome.total_fixed_point_iterations} fixed-point iterations "
            f"(cold: {cold.total_fixed_point_iterations})"
        )
