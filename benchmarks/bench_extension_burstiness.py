"""E7 — burstiness extension: Poisson-sized allocation under bursty load.

The paper's conclusion attributes its residual gap to traffic profiling;
this bench quantifies the claim by driving the Poisson-sized allocation
with on-off traffic of identical mean rate and rising interarrival SCV,
alongside the GI/M/1 two-moment prediction of the buffer inflation that
would compensate.
"""

import pytest

from repro.experiments.extensions import run_burstiness

_cache = {}


def _run():
    if "result" not in _cache:
        _cache["result"] = run_burstiness(
            scv_levels=(2.0, 4.0),
            budget=160,
            replications=2,
            duration=600.0,
        )
    return _cache["result"]


def test_burstiness_extension(benchmark):
    result = benchmark.pedantic(_run, iterations=1, rounds=1)
    print()
    print(result.render())
    # Loss grows with burstiness.
    assert result.losses[-1] >= result.poisson_loss
    # And the analytic buffer-inflation prediction grows with SCV.
    inflations = result.predicted_buffer_inflation
    assert all(b >= a for a, b in zip(inflations, inflations[1:]))
