"""E3 — the headline aggregate claims of Section 3.

"the overall loss of the system decreases by about 20% as compared to
the constant buffer sizing policy and 50% for the timeout policy."
Shape expectations: positive improvement over both baselines, with the
timeout improvement the larger of the two.
"""

import pytest

from repro.experiments import run_headline

_cache = {}


def _run(duration, replications):
    key = (duration, replications)
    if key not in _cache:
        _cache[key] = run_headline(
            budget=160, duration=duration, replications=replications
        )
    return _cache[key]


def test_headline_regeneration(benchmark, bench_duration, bench_replications):
    result = benchmark.pedantic(
        _run,
        args=(bench_duration, bench_replications),
        iterations=1,
        rounds=1,
    )
    print()
    print(result.render())
    assert result.improvement_vs_timeout > 0.2, (
        "CTMDP sizing must clearly beat the timeout policy "
        f"(got {result.improvement_vs_timeout:.1%})"
    )
    assert (
        result.improvement_vs_timeout > result.improvement_vs_constant
    ), "the timeout baseline should be the weaker of the two (paper: 50% vs 20%)"
