"""Diff two ``BENCH_quick.json`` runs and flag perf regressions.

CI runs ``make bench-quick`` with ``--benchmark-json`` on every push and
uploads the JSON artifact; the bench-diff step downloads the previous
successful run's artifact and invokes this script::

    python benchmarks/diff_bench.py PREV.json CURRENT.json --threshold 0.15

For every benchmark present in both runs the script compares a
*throughput* metric — ``extra_info.replications_per_second`` where the
bench reports one (the mega-batch replication benches), else
``extra_info.events_per_second`` (the simulator throughput benches),
else ``extra_info.jobs_per_second`` (the distributed transport and
makespan benches), else the reciprocal of the mean wall time (sizing
and kernel benches) — and emits a
GitHub warning annotation (``::warning::``) for each benchmark whose
throughput dropped by more than the threshold.  Warnings never fail the
job (``--strict`` turns them into a non-zero exit for local gating):
single-round CI timings are noisy, so the diff is a tripwire for humans,
not a gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Regression:
    """One benchmark whose throughput dropped beyond the threshold."""

    name: str
    metric: str
    previous: float
    current: float

    @property
    def drop(self) -> float:
        """Fractional throughput drop (0.2 = 20% slower)."""
        return 1.0 - self.current / self.previous

    def annotation(self) -> str:
        """The GitHub Actions warning line for this regression."""
        return (
            f"::warning title=bench regression::{self.name}: {self.metric} "
            f"{self.previous:.4g} -> {self.current:.4g} "
            f"({self.drop:.1%} drop)"
        )


def throughput_of(bench: dict) -> Optional[tuple]:
    """``(metric_name, value)`` for one benchmark entry, higher = better.

    Benches that report ``replications_per_second`` compare on it
    directly (it is the mega-batch acceptance metric), then
    ``events_per_second``, then ``jobs_per_second`` (the distributed
    overhead/makespan benches — for the makespan rows this is
    equivalent to comparing ``1 / makespan_seconds``); everything else
    falls back to ``1 / stats.mean``.  Returns ``None`` for malformed
    entries (no usable timing) so a partially written JSON never
    crashes the diff.
    """
    extra = bench.get("extra_info") or {}
    for metric in (
        "replications_per_second",
        "events_per_second",
        "jobs_per_second",
    ):
        value = extra.get(metric)
        if isinstance(value, (int, float)) and value > 0:
            return metric, float(value)
    mean = (bench.get("stats") or {}).get("mean")
    if isinstance(mean, (int, float)) and mean > 0:
        return "1/mean", 1.0 / float(mean)
    return None


def index_benchmarks(report: dict) -> Dict[str, dict]:
    """Benchmark entries of one pytest-benchmark JSON, by full name."""
    return {
        bench["fullname"]: bench
        for bench in report.get("benchmarks", [])
        if "fullname" in bench
    }


def find_regressions(
    previous: dict, current: dict, threshold: float
) -> List[Regression]:
    """Benchmarks in both runs whose throughput dropped > ``threshold``.

    Benchmarks present in only one run (added, removed or renamed) are
    skipped — a diff can only speak about common ground.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    prev_by_name = index_benchmarks(previous)
    regressions: List[Regression] = []
    for name, bench in sorted(index_benchmarks(current).items()):
        prev = prev_by_name.get(name)
        if prev is None:
            continue
        now = throughput_of(bench)
        before = throughput_of(prev)
        if now is None or before is None or now[0] != before[0]:
            continue
        if now[1] < before[1] * (1.0 - threshold):
            regressions.append(
                Regression(
                    name=name,
                    metric=now[0],
                    previous=before[1],
                    current=now[1],
                )
            )
    return regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two BENCH_quick.json files for perf regressions"
    )
    parser.add_argument("previous", help="baseline BENCH_quick.json")
    parser.add_argument("current", help="current BENCH_quick.json")
    def threshold_arg(text: str) -> float:
        value = float(text)
        if not 0.0 < value < 1.0:
            raise argparse.ArgumentTypeError(
                f"threshold must be in (0, 1), got {value}"
            )
        return value

    parser.add_argument(
        "--threshold",
        type=threshold_arg,
        default=0.15,
        help="fractional throughput drop that triggers a warning, "
        "in (0, 1) (default 0.15 = 15%%)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when regressions are found (local gating; "
        "CI stays warning-only)",
    )
    args = parser.parse_args(argv)
    reports = []
    for path in (args.previous, args.current):
        # A truncated or corrupt artifact (interrupted upload, expired
        # retention mid-download) skips the diff instead of crashing it.
        try:
            with open(path) as fh:
                reports.append(json.load(fh))
        except (OSError, ValueError) as exc:
            print(f"bench-diff: cannot read {path} ({exc}); skipping diff")
            return 0
    previous, current = reports
    regressions = find_regressions(previous, current, args.threshold)
    compared = len(
        set(index_benchmarks(previous)) & set(index_benchmarks(current))
    )
    for regression in regressions:
        print(regression.annotation())
    print(
        f"bench-diff: compared {compared} benchmark(s), "
        f"{len(regressions)} regression(s) beyond "
        f"{args.threshold:.0%} threshold"
    )
    return 1 if (args.strict and regressions) else 0


if __name__ == "__main__":
    sys.exit(main())
