#!/usr/bin/env python
"""Bridge buffer insertion on an AMBA-like AHB/APB system.

Demonstrates the paper's central idea on the bus architecture it cites
("a typical example in the AMBA and CoreConnect systems"): the AHB-APB
bridge couples the two buses, the naive coupled formulation is quadratic,
and splitting with an inserted bridge buffer makes everything linear.

The example shows (1) the nonlinearity diagnostics of the naive
formulation, (2) the split subsystems and where buffers are inserted,
(3) the sizing result and how much buffer the bridge itself deserves.

Run:  python examples/bridged_amba.py
"""

from repro.arch import amba_like
from repro.core import BufferSizer, QuadraticCoupledSizer, split
from repro.sim import simulate

BUDGET = 18
DURATION = 10_000.0


def main() -> None:
    topology = amba_like()
    print(f"architecture: {topology!r}")

    # 1. The naive coupled formulation (what the paper could not solve).
    diag = QuadraticCoupledSizer(capacity=2, max_iter=100).solve(topology)
    print("\nnaive coupled formulation:")
    print(f"  variables:          {diag.num_variables}")
    print(f"  bilinear terms:     {diag.num_bilinear_terms}")
    print(f"  solver success:     {diag.success}")
    print(f"  solver message:     {diag.message}")
    print(f"  max residual:       {diag.max_residual:.3g}")

    # 2. The split: subsystems separated by inserted bridge buffers.
    system = split(topology, capacity_cap=6)
    print("\nsplit subsystems:")
    for sub in system.subsystems:
        names = [c.name for c in sub.clients]
        print(f"  cluster {sorted(sub.cluster)}: clients {names}")

    # 3. Size and resimulate.
    result = BufferSizer(total_budget=BUDGET).size(topology)
    print(f"\nCTMDP allocation (budget {BUDGET}):")
    for name, size in sorted(result.allocation.sizes.items()):
        print(f"  {name:14s}: {size}")
    sim = simulate(
        topology, result.allocation.as_capacities(),
        duration=DURATION, seed=7,
    )
    print(f"\nsimulated loss rate:  {sim.total_loss_rate():.4f}/time "
          f"({sim.loss_fraction():.2%} of offered)")
    print(f"predicted (thinning): {result.predicted_total_loss_rate():.4f}/time")


if __name__ == "__main__":
    main()
