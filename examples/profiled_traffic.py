#!/usr/bin/env python
"""Traffic profiling and burstiness: the paper's suggested improvement.

The paper's conclusion: "the difference before and after resizing could
be improved with better profiling".  This example demonstrates the
profiling toolchain this library provides:

1. fit a two-moment phase-type model to a "measured" (here: synthetic
   bursty) packet trace,
2. predict the buffer inflation bursty traffic demands via the GI/M/1
   tail-decay rule,
3. verify by simulation that a Poisson-sized allocation degrades under
   the bursty traffic, and by how much.

Run:  python examples/profiled_traffic.py
"""

import numpy as np

from repro.experiments.extensions import run_burstiness
from repro.queueing.mg1 import buffer_for_loss_target, gim1_tail_decay
from repro.queueing.phase_type import fit_two_moment_ph, mmpp2

BUDGET = 160
DURATION = 800.0
REPLICATIONS = 2
TRACE_SAMPLES = 30_000
SIZER_KWARGS = None


def main() -> None:
    # --- 1. "measure" a bursty trace and profile it -------------------------
    source = mmpp2(rate_high=6.0, rate_low=0.5, switch_to_low=0.4,
                   switch_to_high=0.4)
    rng = np.random.default_rng(42)
    trace = source.sample_interarrivals(rng, TRACE_SAMPLES)
    mean_gap = float(trace.mean())
    scv = float(trace.var() / mean_gap**2)
    print(f"profiled trace: mean rate {1.0 / mean_gap:.3f}, "
          f"interarrival SCV {scv:.2f}")
    ph = fit_two_moment_ph(mean_gap, scv)
    print(f"two-moment PH fit: {ph.num_phases} phase(s), "
          f"mean {ph.mean():.4f}, SCV {ph.scv():.2f}")

    # --- 2. analytic buffer-inflation prediction ----------------------------
    rho = 0.7
    for target in (1e-2, 1e-3):
        poisson_k = buffer_for_loss_target(rho, 1.0, 1.0, target)
        bursty_k = buffer_for_loss_target(rho, 1.0, scv, target)
        print(f"loss target {target:g}: Poisson needs {poisson_k} slots, "
              f"SCV {scv:.1f} traffic needs {bursty_k}")
    print(f"tail decay: Poisson {gim1_tail_decay(1.0, rho):.3f} vs "
          f"bursty {gim1_tail_decay(scv, rho):.3f} per slot")

    # --- 3. end-to-end check on the network processor -----------------------
    print("\nPoisson-sized allocation under bursty traffic "
          f"(network processor, budget {BUDGET}):")
    result = run_burstiness(
        scv_levels=(2.0, 4.0), budget=BUDGET,
        replications=REPLICATIONS, duration=DURATION,
        sizer_kwargs=SIZER_KWARGS,
    )
    print(result.render())


if __name__ == "__main__":
    main()
