#!/usr/bin/env python
"""The paper's evaluation scenario: sizing a network processor.

Reproduces a small version of Figure 3: per-processor losses before
sizing (traffic-proportional), after CTMDP resizing, and under the
timeout policy, on the 17-processor synthetic network processor.

Run:  python examples/network_processor.py
"""

from repro.experiments import run_figure3

BUDGET = 160
DURATION = 1_500.0
REPLICATIONS = 4
SIZER_KWARGS = None


def main() -> None:
    result = run_figure3(
        budget=BUDGET,
        duration=DURATION,
        replications=REPLICATIONS,
        sizer_kwargs=SIZER_KWARGS,
    )
    print(result.render(width=36))
    print()
    print("Allocation differences (pre -> post), largest movers:")
    pre = result.experiment.allocations["pre"].sizes
    post = result.experiment.allocations["post"].sizes
    movers = sorted(
        pre, key=lambda n: abs(post.get(n, 0) - pre[n]), reverse=True
    )[:6]
    for name in movers:
        print(f"  {name:12s}: {pre[name]:3d} -> {post.get(name, 0):3d}")


if __name__ == "__main__":
    main()
