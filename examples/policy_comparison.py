#!/usr/bin/env python
"""Compare every allocation policy across load levels.

Sweeps the network processor's offered load and reports the total loss
of uniform, proportional, analytic-greedy and CTMDP sizing — the E6
ablation of DESIGN.md in example form.

Run:  python examples/policy_comparison.py
"""

from repro.experiments import run_policy_sweep

BUDGET = 160
LOADS = (0.8, 1.0, 1.2)
REPLICATIONS = 3
DURATION = 1_000.0
SIZER_KWARGS = None


def main() -> None:
    result = run_policy_sweep(
        load_scales=LOADS,
        budget=BUDGET,
        replications=REPLICATIONS,
        duration=DURATION,
        sizer_kwargs=SIZER_KWARGS,
    )
    print(result.render())
    print()
    totals = result.totals()
    nominal = min(range(len(LOADS)), key=lambda i: abs(LOADS[i] - 1.0))
    best_at_nominal = min(totals, key=lambda name: totals[name][nominal])
    print(f"best policy at nominal load: {best_at_nominal}")


if __name__ == "__main__":
    main()
