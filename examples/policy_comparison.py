#!/usr/bin/env python
"""Compare every allocation policy across load levels.

Sweeps the network processor's offered load and reports the total loss
of uniform, proportional, analytic-greedy and CTMDP sizing — the E6
ablation of DESIGN.md in example form.

Run:  python examples/policy_comparison.py
"""

from repro.experiments import run_policy_sweep

BUDGET = 160
LOADS = (0.8, 1.0, 1.2)


def main() -> None:
    result = run_policy_sweep(
        load_scales=LOADS,
        budget=BUDGET,
        replications=3,
        duration=1_000.0,
    )
    print(result.render())
    print()
    totals = result.totals()
    best_at_nominal = min(totals, key=lambda name: totals[name][1])
    print(f"best policy at nominal load: {best_at_nominal}")


if __name__ == "__main__":
    main()
