#!/usr/bin/env python
"""Quickstart: size the buffers of the paper's Figure 1 architecture.

Builds the sample SoC of the paper (5 processors, 7 buses, 4 bridges),
runs the full CTMDP sizing pipeline (bridge splitting -> joint LP ->
K-switching), and verifies the allocation by discrete-event simulation
against the traffic-proportional baseline.

Run:  python examples/quickstart.py
"""

from repro.arch import paper_figure1
from repro.core import BufferSizer
from repro.policies import ProportionalSizing
from repro.sim import replicate

BUDGET = 28
DURATION = 5_000.0
REPLICATIONS = 5
SIZER_KWARGS = None


def main() -> None:
    topology = paper_figure1()
    print(f"architecture: {topology!r}")
    print(f"bus clusters (split subsystems): "
          f"{[sorted(c) for c in topology.bus_clusters()]}")
    print()

    # --- the paper's method -------------------------------------------------
    sizer = BufferSizer(total_budget=BUDGET, **(SIZER_KWARGS or {}))
    result = sizer.size(topology)
    print(f"CTMDP sizing (budget {BUDGET}):")
    for name in sorted(result.allocation.sizes):
        kind = "bridge" if "@" in name else "processor"
        print(f"  {name:10s} ({kind:9s}): {result.allocation.sizes[name]} slots")
    print(f"model-predicted loss rate: {result.expected_loss_rate:.4f}/time")
    print(f"bridge fixed point converged in "
          f"{result.fixed_point_iterations} iteration(s)")
    print()

    # --- baseline -----------------------------------------------------------
    baseline = ProportionalSizing().allocate(topology, BUDGET)

    # --- resimulate, as Section 2 of the paper prescribes --------------------
    for label, allocation in (("ctmdp", result.allocation),
                              ("proportional", baseline)):
        summary = replicate(
            topology,
            allocation.as_capacities(),
            replications=REPLICATIONS,
            duration=DURATION,
        )
        print(f"{label:13s}: mean total loss "
              f"{summary.mean_total_loss():8.1f} packets "
              f"(+/- {summary.std_total_loss():.1f})")


if __name__ == "__main__":
    main()
