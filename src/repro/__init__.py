"""repro — CTMDP-based buffer insertion and optimal buffer sizing for SoC buses.

Reproduction of Kallakuri, Doboli & Feinberg, *"Buffer Insertion for Bridges
and Optimal Buffer Sizing for Communication Sub-System of Systems-on-Chip"*,
DATE 2005.

The package is organised as:

``repro.queueing``
    Analytic continuous-time queueing substrate: CTMC steady-state solvers,
    birth-death chains, M/M/1/K and Erlang loss formulas, loss-network
    fixed points.

``repro.arch``
    SoC communication-architecture modelling: processors, buses, bridges,
    traffic descriptors, template architectures (the paper's Figure 1, an
    AMBA-like system, a CoreConnect-like system, and the 17-processor
    network-processor testbed used in the evaluation).

``repro.sim``
    A from-scratch discrete-event simulator of the communication
    sub-system: Poisson request generation, finite buffers, bus
    arbitration, bridges, timeout-based dropping, and loss/latency
    monitoring.

``repro.core``
    The paper's contribution: per-bus CTMDP construction, the
    occupation-measure linear program for average-cost constrained CTMDPs
    (Feinberg 2002), bridge-split decomposition into linear subsystems,
    the K-switching translation from occupation measures to integer buffer
    sizes, and the end-to-end :class:`~repro.core.sizing.BufferSizer`.

``repro.policies``
    Baseline allocation policies (uniform, traffic-proportional,
    analytic-greedy) and the timeout service policy.

``repro.scenarios``
    The declarative scenario layer: named ``ScenarioSpec`` entries
    (netproc, fig1, amba, coreconnect) plus parametric families
    (``random-mesh-<clusters>-<seed>``, ``single-bus-<n>``) that every
    experiment driver, CLI subcommand and benchmark resolves by name.

``repro.analysis``
    Loss statistics, replication harness, parameter sweeps and ASCII
    report rendering used by the benchmark suite.

``repro.experiments``
    Drivers that regenerate every table and figure of the paper's
    evaluation section (Figure 3, Table 1, and the headline 20%/50%
    aggregate-loss claims) plus ablations.
"""

from repro._version import __version__

__all__ = ["__version__"]
