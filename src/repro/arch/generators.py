"""Random architecture generation for fuzzing and scaling studies.

Generates structurally valid bridged topologies with controllable size
and load so benches can study how the sizing pipeline scales and tests
can fuzz the splitting/routing machinery far beyond the hand-written
templates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.topology import Topology
from repro.errors import TopologyError


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random architecture generator.

    Attributes
    ----------
    num_clusters:
        Number of bus clusters (each gets one bus; bridges form a random
        spanning tree plus optional extra bridges).
    processors_per_cluster:
        Processors attached to each cluster's bus.
    extra_bridges:
        Bridges added beyond the spanning tree (creates route choices).
    local_flow_prob / cross_flow_prob:
        Probability that an ordered processor pair inside / across
        clusters gets a flow.
    target_utilisation:
        Approximate per-cluster offered/service ratio the rates are
        scaled to.
    """

    num_clusters: int = 4
    processors_per_cluster: int = 3
    extra_bridges: int = 1
    local_flow_prob: float = 0.5
    cross_flow_prob: float = 0.15
    target_utilisation: float = 0.7

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise TopologyError("num_clusters must be >= 1")
        if self.processors_per_cluster < 1:
            raise TopologyError("processors_per_cluster must be >= 1")
        if self.extra_bridges < 0:
            raise TopologyError("extra_bridges must be >= 0")
        for name, p in (
            ("local_flow_prob", self.local_flow_prob),
            ("cross_flow_prob", self.cross_flow_prob),
        ):
            if not 0.0 <= p <= 1.0:
                raise TopologyError(f"{name} must be in [0, 1]")
        if not 0.0 < self.target_utilisation < 1.5:
            raise TopologyError("target_utilisation must be in (0, 1.5)")


def random_topology(
    seed: int,
    config: GeneratorConfig = GeneratorConfig(),
) -> Topology:
    """Generate a random, validated, bridged topology.

    Guarantees: every processor sources at least one flow OR receives
    one; every bridge belongs to the connected bridge graph; total
    offered load is scaled to the target utilisation.
    """
    rng = np.random.default_rng(seed)
    topo = Topology(f"random-{seed}")
    n = config.num_clusters
    for c in range(n):
        topo.add_bus(f"bus{c}")
    # Spanning tree of bridges keeps everything routable.
    for c in range(1, n):
        parent = int(rng.integers(0, c))
        topo.add_bridge(
            f"br{c}", f"bus{parent}", f"bus{c}",
            service_rate=float(rng.uniform(3.0, 8.0)),
        )
    added = 0
    attempts = 0
    while added < config.extra_bridges and attempts < 50 and n > 1:
        attempts += 1
        a, b = rng.choice(n, size=2, replace=False)
        name = f"brx{added}"
        if any(
            {br.bus_a, br.bus_b} == {f"bus{a}", f"bus{b}"}
            for br in topo.bridges.values()
        ):
            continue
        topo.add_bridge(
            name, f"bus{int(a)}", f"bus{int(b)}",
            service_rate=float(rng.uniform(3.0, 8.0)),
        )
        added += 1
    # Processors.
    for c in range(n):
        for i in range(config.processors_per_cluster):
            topo.add_processor(
                f"c{c}p{i}", f"bus{c}",
                service_rate=float(rng.uniform(4.0, 9.0)),
            )
    procs = list(topo.processors)
    # Flows with placeholder rates; scaled afterwards.
    draft: list[tuple[str, str, float]] = []
    for src in procs:
        for dst in procs:
            if src == dst:
                continue
            same = topo.processors[src].bus == topo.processors[dst].bus
            p = config.local_flow_prob if same else config.cross_flow_prob
            if rng.random() < p:
                draft.append((src, dst, float(rng.uniform(0.3, 1.0))))
    # Guarantee every processor participates.
    covered = {s for s, _d, _r in draft} | {d for _s, d, _r in draft}
    for proc in procs:
        if proc not in covered:
            others = [p for p in procs if p != proc]
            dst = others[int(rng.integers(len(others)))]
            draft.append((proc, dst, float(rng.uniform(0.3, 1.0))))
    # Scale rates to the target utilisation: compare total offered rate
    # per cluster against the mean service rate.
    raw_by_cluster: dict = {f"bus{c}": 0.0 for c in range(n)}
    for src, _dst, rate in draft:
        raw_by_cluster[topo.processors[src].bus] += rate
    service_by_cluster = {
        f"bus{c}": np.mean(
            [
                p.service_rate
                for p in topo.processors.values()
                if p.bus == f"bus{c}"
            ]
        )
        for c in range(n)
    }
    worst = max(
        raw_by_cluster[bus] / service_by_cluster[bus]
        for bus in raw_by_cluster
        if raw_by_cluster[bus] > 0
    )
    scale = config.target_utilisation / worst if worst > 0 else 1.0
    for k, (src, dst, rate) in enumerate(draft):
        topo.add_poisson_flow(f"f{k}", src, dst, rate * scale)
    topo.validate()
    return topo
