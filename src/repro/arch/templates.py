"""Template architectures, including the paper's Figure 1.

Every generator returns a fully validated :class:`~repro.arch.topology.Topology`.
"""

from __future__ import annotations

from repro.arch.topology import Topology
from repro.errors import TopologyError


def single_bus(
    num_processors: int = 4,
    arrival_rate: float = 0.8,
    service_rate: float = 4.0,
) -> Topology:
    """One bus, ``num_processors`` processors, all-to-next-neighbour flows.

    The smallest meaningful sizing instance; used by the quickstart
    example and many tests.
    """
    if num_processors < 2:
        raise TopologyError("single_bus needs at least two processors")
    topo = Topology("single-bus")
    topo.add_bus("bus0")
    names = [f"p{i}" for i in range(1, num_processors + 1)]
    for name in names:
        topo.add_processor(name, "bus0", service_rate=service_rate)
    for i, name in enumerate(names):
        dest = names[(i + 1) % num_processors]
        topo.add_poisson_flow(f"{name}_to_{dest}", name, dest, arrival_rate)
    topo.validate()
    return topo


def paper_figure1() -> Topology:
    """The sample architecture of the paper's Figure 1.

    Five processors; a linked cluster of buses ``a, b, c, e`` hosting
    processors 1–4; separate buses ``f`` and ``g``; bus ``d`` hosting
    processor 5; bridges ``b1`` (b–f), ``b2`` (b–g), ``b3`` (f–d), ``b4``
    (g–d).  Cutting the four bridges yields exactly the paper's four split
    subsystems (Figure 2):

    1. the ``a–b–c–e`` cluster with processors 1–4 and the entry buffers
       of ``b1``/``b2``,
    2. bus ``f`` with the buffers of ``b1``/``b3``,
    3. bus ``g`` with the buffers of ``b2``/``b4``,
    4. bus ``d`` with processor 5 and the buffers of ``b3``/``b4``.

    Flows include the inter-bus conversations the paper highlights
    (processors 2, 3 and 5 talking across bridges) plus local traffic.
    """
    topo = Topology("paper-figure1")
    for bus in ("a", "b", "c", "d", "e", "f", "g"):
        topo.add_bus(bus)
    # Rigid links forming the a-b-c-e cluster of Figure 1.
    topo.add_link("a", "b")
    topo.add_link("b", "c")
    topo.add_link("c", "e")
    # Processors 1..5 (service rate = bus transactions per unit time).
    topo.add_processor("p1", "a", service_rate=6.0)
    topo.add_processor("p2", "b", service_rate=6.0)
    topo.add_processor("p3", "b", service_rate=6.0)
    topo.add_processor("p4", "e", service_rate=6.0)
    topo.add_processor("p5", "d", service_rate=6.0)
    # Bridges; b1/b2 leave the big cluster, b3/b4 reach processor 5's bus.
    topo.add_bridge("b1", "b", "f", service_rate=5.0)
    topo.add_bridge("b2", "b", "g", service_rate=5.0)
    topo.add_bridge("b3", "f", "d", service_rate=5.0)
    topo.add_bridge("b4", "g", "d", service_rate=5.0)
    # Local conversations inside the cluster.
    topo.add_poisson_flow("f_12", "p1", "p2", 0.9)
    topo.add_poisson_flow("f_23", "p2", "p3", 0.7)
    topo.add_poisson_flow("f_41", "p4", "p1", 0.8)
    # The bridged conversations of Section 2 (processors 2, 3 and 5).
    topo.add_poisson_flow("f_25", "p2", "p5", 0.6)
    topo.add_poisson_flow("f_35", "p3", "p5", 0.5)
    topo.add_poisson_flow("f_52", "p5", "p2", 0.6)
    topo.add_poisson_flow("f_53", "p5", "p3", 0.4)
    topo.validate()
    return topo


def amba_like() -> Topology:
    """An AMBA-style system: a fast AHB and a slow APB joined by a bridge.

    Two masters (CPU, DMA) on AHB generate most traffic; two peripherals
    (UART, TIMER) on APB both answer them and send interrupt-ish upstream
    flows.  Mirrors the paper's remark that bridges are "a typical example
    in the AMBA and CoreConnect systems".
    """
    topo = Topology("amba-like")
    topo.add_bus("ahb")
    topo.add_bus("apb")
    topo.add_bridge("ahb2apb", "ahb", "apb", service_rate=3.0)
    topo.add_processor("cpu", "ahb", service_rate=10.0)
    topo.add_processor("dma", "ahb", service_rate=8.0)
    topo.add_processor("uart", "apb", service_rate=2.0)
    topo.add_processor("timer", "apb", service_rate=2.0)
    topo.add_poisson_flow("cpu_dma", "cpu", "dma", 1.5)
    topo.add_poisson_flow("cpu_uart", "cpu", "uart", 0.8)
    topo.add_poisson_flow("dma_timer", "dma", "timer", 0.6)
    topo.add_poisson_flow("uart_cpu", "uart", "cpu", 0.3)
    topo.add_poisson_flow("timer_cpu", "timer", "cpu", 0.2)
    topo.validate()
    return topo


def coreconnect_like() -> Topology:
    """A CoreConnect-style system: PLB and OPB joined by two bridges.

    The dual PLB<->OPB bridge pair exercises routes with a *choice* of
    bridge, and a second processor bus (PLB2) linked rigidly to PLB
    exercises multi-bus clusters.
    """
    topo = Topology("coreconnect-like")
    topo.add_bus("plb")
    topo.add_bus("plb2")
    topo.add_bus("opb")
    topo.add_link("plb", "plb2")
    topo.add_bridge("plb2opb", "plb", "opb", service_rate=4.0)
    topo.add_bridge("opb2plb", "opb", "plb", service_rate=4.0)
    topo.add_processor("ppc", "plb", service_rate=12.0)
    topo.add_processor("accel", "plb2", service_rate=9.0)
    topo.add_processor("eth", "opb", service_rate=3.0)
    topo.add_processor("gpio", "opb", service_rate=3.0)
    topo.add_poisson_flow("ppc_accel", "ppc", "accel", 1.2)
    topo.add_poisson_flow("ppc_eth", "ppc", "eth", 0.9)
    topo.add_poisson_flow("eth_ppc", "eth", "ppc", 0.7)
    topo.add_poisson_flow("accel_gpio", "accel", "gpio", 0.4)
    topo.validate()
    return topo
