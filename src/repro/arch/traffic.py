"""Traffic descriptors for processor request streams.

The paper models request generation as Poisson ("continuous time nature of
tasks when they are executed on the IP cores").  For CTMDP construction
only the *mean rate* matters; the discrete-event simulator additionally
draws interarrival samples from the full distribution, so burstier
descriptors (on-off, hyperexponential) let the experiments probe how far
the Markovian sizing generalises — the paper's "better profiling" remark.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


class TrafficDescriptor(abc.ABC):
    """Interface every traffic model implements."""

    #: Whether :meth:`sample_interarrivals` is a pure function of the
    #: generator state — no mutable cursor on the descriptor itself.
    #: The mega-batch lane shares one descriptor object across all
    #: replications and interleaves their refills, which only preserves
    #: the serial per-replication streams when this holds; stateful
    #: descriptors (``TraceTraffic``'s replay cursor) set it False and
    #: force the lane onto its sequential per-replication fallback.
    stateless_sampling: bool = True

    @property
    @abc.abstractmethod
    def mean_rate(self) -> float:
        """Long-run average request rate (requests per unit time)."""

    @abc.abstractmethod
    def sample_interarrivals(
        self, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        """Draw ``count`` consecutive interarrival times."""

    def scaled(self, factor: float) -> "TrafficDescriptor":
        """A descriptor with the mean rate scaled by ``factor``."""
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonTraffic(TrafficDescriptor):
    """Homogeneous Poisson stream of the given rate."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ModelError(f"Poisson rate must be > 0, got {self.rate}")

    @property
    def mean_rate(self) -> float:
        return self.rate

    def sample_interarrivals(
        self, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        if count < 0:
            raise ModelError(f"count must be >= 0, got {count}")
        return rng.exponential(1.0 / self.rate, size=count)

    def scaled(self, factor: float) -> "PoissonTraffic":
        if factor <= 0:
            raise ModelError(f"scale factor must be > 0, got {factor}")
        return PoissonTraffic(self.rate * factor)


@dataclass(frozen=True)
class OnOffTraffic(TrafficDescriptor):
    """Markov-modulated on-off stream (bursty traffic).

    While *on* (mean duration ``mean_on``) requests arrive as Poisson of
    rate ``peak_rate``; while *off* (mean duration ``mean_off``) nothing
    arrives.  The long-run mean rate is
    ``peak_rate * mean_on / (mean_on + mean_off)``.
    """

    peak_rate: float
    mean_on: float
    mean_off: float

    def __post_init__(self) -> None:
        if self.peak_rate <= 0:
            raise ModelError(f"peak rate must be > 0, got {self.peak_rate}")
        if self.mean_on <= 0 or self.mean_off <= 0:
            raise ModelError("on/off durations must be > 0")

    @property
    def mean_rate(self) -> float:
        return self.peak_rate * self.mean_on / (self.mean_on + self.mean_off)

    def sample_interarrivals(
        self, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        if count < 0:
            raise ModelError(f"count must be >= 0, got {count}")
        return self._walk(rng, count)

    def _walk(self, rng: np.random.Generator, count: int) -> np.ndarray:
        # The draw order is data-dependent (phase changes interleave with
        # arrival candidates on one stream), so this walk cannot be
        # vectorised without changing fixed-seed outputs; hoisting the
        # attribute and method lookups is the safe speedup.
        gaps = np.empty(count)
        exponential = rng.exponential
        mean_on = self.mean_on
        mean_off = self.mean_off
        arrival_scale = 1.0 / self.peak_rate
        p_on = mean_on / (mean_on + mean_off)
        in_on = bool(rng.random() < p_on)
        phase_left = exponential(mean_on if in_on else mean_off)
        for k in range(count):
            gap = 0.0
            while True:
                if in_on:
                    candidate = exponential(arrival_scale)
                    if candidate <= phase_left:
                        phase_left -= candidate
                        gap += candidate
                        break
                    gap += phase_left
                    in_on = False
                    phase_left = exponential(mean_off)
                else:
                    gap += phase_left
                    in_on = True
                    phase_left = exponential(mean_on)
            gaps[k] = gap
        return gaps

    def scaled(self, factor: float) -> "OnOffTraffic":
        if factor <= 0:
            raise ModelError(f"scale factor must be > 0, got {factor}")
        return OnOffTraffic(self.peak_rate * factor, self.mean_on, self.mean_off)


@dataclass(frozen=True)
class HyperexponentialTraffic(TrafficDescriptor):
    """Two-phase hyperexponential interarrivals (heavy-tailed-ish).

    With probability ``phase1_prob`` an interarrival is Exp(``rate1``),
    otherwise Exp(``rate2``).  Mean rate is the harmonic mix.
    """

    rate1: float
    rate2: float
    phase1_prob: float

    def __post_init__(self) -> None:
        if self.rate1 <= 0 or self.rate2 <= 0:
            raise ModelError("phase rates must be > 0")
        if not 0.0 < self.phase1_prob < 1.0:
            raise ModelError(
                f"phase1_prob must be in (0, 1), got {self.phase1_prob}"
            )

    @property
    def mean_rate(self) -> float:
        mean_gap = (
            self.phase1_prob / self.rate1
            + (1.0 - self.phase1_prob) / self.rate2
        )
        return 1.0 / mean_gap

    def sample_interarrivals(
        self, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        if count < 0:
            raise ModelError(f"count must be >= 0, got {count}")
        phase1 = rng.random(count) < self.phase1_prob
        gaps = np.where(
            phase1,
            rng.exponential(1.0 / self.rate1, size=count),
            rng.exponential(1.0 / self.rate2, size=count),
        )
        return gaps

    def scaled(self, factor: float) -> "HyperexponentialTraffic":
        if factor <= 0:
            raise ModelError(f"scale factor must be > 0, got {factor}")
        return HyperexponentialTraffic(
            self.rate1 * factor, self.rate2 * factor, self.phase1_prob
        )
