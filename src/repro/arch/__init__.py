"""SoC communication-architecture modelling.

The intermediate representation (:mod:`repro.arch.topology`) describes a
communication sub-system exactly the way the paper draws one: processors
attached to buses, buses rigidly linked into clusters or joined through
**bridges**, and Poisson traffic flows between processors.  Template
generators reproduce the paper's Figure 1, AMBA-like and CoreConnect-like
systems, and the 17-processor network-processor testbed of the evaluation
(:mod:`repro.arch.netproc`).
"""

from repro.arch.topology import (
    Bridge,
    Bus,
    BusLink,
    Flow,
    Processor,
    Topology,
    processor_names,
    rebuilt_topology,
)
from repro.arch.traffic import (
    HyperexponentialTraffic,
    OnOffTraffic,
    PoissonTraffic,
    TrafficDescriptor,
)
from repro.arch.templates import (
    amba_like,
    coreconnect_like,
    paper_figure1,
    single_bus,
)
from repro.arch.netproc import network_processor

__all__ = [
    "Bridge",
    "Bus",
    "BusLink",
    "Flow",
    "HyperexponentialTraffic",
    "OnOffTraffic",
    "PoissonTraffic",
    "Processor",
    "Topology",
    "TrafficDescriptor",
    "amba_like",
    "coreconnect_like",
    "network_processor",
    "paper_figure1",
    "processor_names",
    "rebuilt_topology",
    "single_bus",
]
