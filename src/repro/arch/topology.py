"""Intermediate representation of an SoC communication sub-system.

The IR mirrors the paper's Figure 1: **processors** attach to **buses**;
buses may be rigidly joined by :class:`BusLink` (they then form one *bus
cluster* arbitrated together, like buses a–e in the figure) or coupled
through a :class:`Bridge` (the case that makes the naive CTMDP quadratic
and that buffer insertion resolves).  **Flows** describe who talks to
whom and at what rate.

The topology exposes the two queries the split method needs:

* :meth:`Topology.bus_clusters` — connected components of the bus graph
  after *cutting every bridge*; each cluster becomes one linear subsystem.
* :meth:`Topology.route` — the sequence of clusters and bridges a flow
  traverses from its source processor to its destination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.arch.traffic import PoissonTraffic, TrafficDescriptor
from repro.errors import TopologyError


@dataclass(frozen=True)
class Bus:
    """A shared communication medium with a single arbiter."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("bus name must be non-empty")


@dataclass(frozen=True)
class Processor:
    """An IP core attached to exactly one bus.

    Parameters
    ----------
    name:
        Unique identifier.
    bus:
        Name of the bus the processor's buffer feeds.
    service_rate:
        Exponential rate at which the bus drains one of this processor's
        requests once granted (bus transactions per unit time).
    loss_weight:
        Importance of this processor's losses in the sizing objective.
    """

    name: str
    bus: str
    service_rate: float
    loss_weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("processor name must be non-empty")
        if self.service_rate <= 0:
            raise TopologyError(
                f"processor {self.name!r}: service rate must be > 0"
            )
        if self.loss_weight < 0:
            raise TopologyError(
                f"processor {self.name!r}: loss weight must be >= 0"
            )


@dataclass(frozen=True)
class Bridge:
    """A bidirectional bridge between two buses.

    Crossing a bridge costs one extra bus transaction on the far side;
    the split method inserts a buffer at each *entry* of the bridge.
    ``service_rate`` is the rate at which the destination bus drains
    bridge-buffer requests.
    """

    name: str
    bus_a: str
    bus_b: str
    service_rate: float
    loss_weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("bridge name must be non-empty")
        if self.bus_a == self.bus_b:
            raise TopologyError(
                f"bridge {self.name!r} must join two distinct buses"
            )
        if self.service_rate <= 0:
            raise TopologyError(
                f"bridge {self.name!r}: service rate must be > 0"
            )

    def other_end(self, bus: str) -> str:
        """The bus on the opposite side of ``bus``."""
        if bus == self.bus_a:
            return self.bus_b
        if bus == self.bus_b:
            return self.bus_a
        raise TopologyError(
            f"bus {bus!r} is not an endpoint of bridge {self.name!r}"
        )


@dataclass(frozen=True)
class BusLink:
    """A rigid (buffer-less) join between two buses of the same cluster."""

    bus_a: str
    bus_b: str

    def __post_init__(self) -> None:
        if self.bus_a == self.bus_b:
            raise TopologyError("bus link must join two distinct buses")


@dataclass(frozen=True)
class Flow:
    """A unidirectional traffic flow between two processors."""

    name: str
    source: str
    destination: str
    traffic: TrafficDescriptor

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("flow name must be non-empty")
        if self.source == self.destination:
            raise TopologyError(
                f"flow {self.name!r}: source equals destination"
            )

    @property
    def rate(self) -> float:
        """Mean request rate of the flow."""
        return self.traffic.mean_rate


@dataclass(frozen=True)
class Route:
    """The path a flow takes: clusters visited and bridges crossed.

    ``clusters[i]`` is traversed before ``bridges[i]``, which leads into
    ``clusters[i + 1]``; hence ``len(clusters) == len(bridges) + 1``.
    """

    clusters: Tuple[frozenset, ...]
    bridges: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.clusters) != len(self.bridges) + 1:
            raise TopologyError("malformed route")

    @property
    def crosses_bridge(self) -> bool:
        """Whether the flow leaves its source cluster at all."""
        return bool(self.bridges)


class Topology:
    """A complete communication sub-system description."""

    def __init__(self, name: str = "soc") -> None:
        if not name:
            raise TopologyError("topology name must be non-empty")
        self.name = name
        self.buses: Dict[str, Bus] = {}
        self.processors: Dict[str, Processor] = {}
        self.bridges: Dict[str, Bridge] = {}
        self.links: List[BusLink] = []
        self.flows: Dict[str, Flow] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_bus(self, name: str) -> Bus:
        """Register a bus."""
        if name in self.buses:
            raise TopologyError(f"duplicate bus {name!r}")
        bus = Bus(name)
        self.buses[name] = bus
        return bus

    def add_processor(
        self,
        name: str,
        bus: str,
        service_rate: float,
        loss_weight: float = 1.0,
    ) -> Processor:
        """Attach a processor to an existing bus."""
        if name in self.processors:
            raise TopologyError(f"duplicate processor {name!r}")
        if bus not in self.buses:
            raise TopologyError(
                f"processor {name!r} references unknown bus {bus!r}"
            )
        proc = Processor(name, bus, service_rate, loss_weight)
        self.processors[name] = proc
        return proc

    def add_bridge(
        self,
        name: str,
        bus_a: str,
        bus_b: str,
        service_rate: float,
        loss_weight: float = 1.0,
    ) -> Bridge:
        """Join two existing buses through a bridge."""
        if name in self.bridges:
            raise TopologyError(f"duplicate bridge {name!r}")
        for bus in (bus_a, bus_b):
            if bus not in self.buses:
                raise TopologyError(
                    f"bridge {name!r} references unknown bus {bus!r}"
                )
        bridge = Bridge(name, bus_a, bus_b, service_rate, loss_weight)
        self.bridges[name] = bridge
        return bridge

    def add_link(self, bus_a: str, bus_b: str) -> BusLink:
        """Rigidly join two buses into the same cluster."""
        for bus in (bus_a, bus_b):
            if bus not in self.buses:
                raise TopologyError(
                    f"bus link references unknown bus {bus!r}"
                )
        link = BusLink(bus_a, bus_b)
        self.links.append(link)
        return link

    def add_flow(
        self,
        name: str,
        source: str,
        destination: str,
        traffic: TrafficDescriptor,
    ) -> Flow:
        """Declare a traffic flow between two existing processors."""
        if name in self.flows:
            raise TopologyError(f"duplicate flow {name!r}")
        for proc in (source, destination):
            if proc not in self.processors:
                raise TopologyError(
                    f"flow {name!r} references unknown processor {proc!r}"
                )
        flow = Flow(name, source, destination, traffic)
        self.flows[name] = flow
        return flow

    def add_poisson_flow(
        self, name: str, source: str, destination: str, rate: float
    ) -> Flow:
        """Shorthand for the common Poisson flow."""
        return self.add_flow(name, source, destination, PoissonTraffic(rate))

    # ------------------------------------------------------------------
    # Graph queries
    # ------------------------------------------------------------------

    def bus_graph(self, include_bridges: bool = True) -> nx.Graph:
        """Undirected bus graph; edges carry ``kind``/``bridge`` attributes."""
        graph = nx.Graph()
        graph.add_nodes_from(self.buses)
        for link in self.links:
            graph.add_edge(link.bus_a, link.bus_b, kind="link", bridge=None)
        if include_bridges:
            for bridge in self.bridges.values():
                graph.add_edge(
                    bridge.bus_a, bridge.bus_b, kind="bridge", bridge=bridge.name
                )
        return graph

    def bus_clusters(self) -> List[frozenset]:
        """Bus clusters: components after cutting every bridge.

        Each cluster is one linear subsystem of the split method;
        deterministic order (by smallest bus name) for reproducibility.
        """
        graph = self.bus_graph(include_bridges=False)
        clusters = [frozenset(c) for c in nx.connected_components(graph)]
        return sorted(clusters, key=lambda c: min(c))

    def cluster_of_bus(self, bus: str) -> frozenset:
        """The cluster containing a bus."""
        if bus not in self.buses:
            raise TopologyError(f"unknown bus {bus!r}")
        for cluster in self.bus_clusters():
            if bus in cluster:
                return cluster
        raise TopologyError(f"bus {bus!r} not in any cluster")  # pragma: no cover

    def cluster_processors(self, cluster: frozenset) -> List[Processor]:
        """Processors attached to any bus of a cluster, sorted by name."""
        procs = [
            p for p in self.processors.values() if p.bus in cluster
        ]
        return sorted(procs, key=lambda p: p.name)

    def cluster_bridges(self, cluster: frozenset) -> List[Bridge]:
        """Bridges with at least one endpoint in the cluster, sorted."""
        bridges = [
            b
            for b in self.bridges.values()
            if b.bus_a in cluster or b.bus_b in cluster
        ]
        return sorted(bridges, key=lambda b: b.name)

    def route(self, flow_name: str) -> Route:
        """Route of a flow: the clusters visited and bridges crossed.

        Shortest path on the *cluster graph* whose edges are bridges.
        When several shortest paths exist (parallel bridges, as between
        buses b and d via f or g in the paper's Figure 1), flows are
        spread across them deterministically by a stable digest of the
        flow name — each flow always takes the same path, and different
        flows balance over the alternatives, matching the paper's setup
        where both intermediate buses carry traffic.

        Raises
        ------
        TopologyError
            If no path exists between the two processors' clusters.
        """
        if flow_name not in self.flows:
            raise TopologyError(f"unknown flow {flow_name!r}")
        flow = self.flows[flow_name]
        src_cluster = self.cluster_of_bus(self.processors[flow.source].bus)
        dst_cluster = self.cluster_of_bus(
            self.processors[flow.destination].bus
        )
        if src_cluster == dst_cluster:
            return Route(clusters=(src_cluster,), bridges=())
        cluster_graph = nx.MultiGraph()
        clusters = self.bus_clusters()
        cluster_by_bus = {}
        for cluster in clusters:
            cluster_graph.add_node(cluster)
            for bus in cluster:
                cluster_by_bus[bus] = cluster
        for bridge in sorted(self.bridges.values(), key=lambda b: b.name):
            cluster_graph.add_edge(
                cluster_by_bus[bridge.bus_a],
                cluster_by_bus[bridge.bus_b],
                key=bridge.name,
            )
        try:
            node_paths = list(
                nx.all_shortest_paths(cluster_graph, src_cluster, dst_cluster)
            )
        except nx.NetworkXNoPath:
            raise TopologyError(
                f"flow {flow_name!r}: no bridge path between clusters"
            ) from None
        # Expand node paths into concrete bridge sequences (parallel
        # bridges between the same cluster pair count as distinct paths).
        candidates: List[Tuple[Tuple[frozenset, ...], Tuple[str, ...]]] = []
        for node_path in node_paths:
            bridge_options = [
                sorted(cluster_graph[a][b])
                for a, b in zip(node_path, node_path[1:])
            ]
            expansions: List[List[str]] = [[]]
            for options in bridge_options:
                expansions = [
                    prefix + [key] for prefix in expansions for key in options
                ]
            for bridges in expansions:
                candidates.append((tuple(node_path), tuple(bridges)))
        candidates.sort(key=lambda item: item[1])
        digest = sum(flow_name.encode("utf-8")) * 2654435761 % 2**32
        chosen_clusters, chosen_bridges = candidates[digest % len(candidates)]
        return Route(
            clusters=chosen_clusters, bridges=chosen_bridges
        )

    # ------------------------------------------------------------------
    # Aggregates used by the sizing pipeline
    # ------------------------------------------------------------------

    def processor_offered_rate(self, processor: str) -> float:
        """Total mean rate the processor offers to its bus buffer."""
        if processor not in self.processors:
            raise TopologyError(f"unknown processor {processor!r}")
        return sum(
            f.rate for f in self.flows.values() if f.source == processor
        )

    def total_offered_rate(self) -> float:
        """Sum of all flow mean rates."""
        return sum(f.rate for f in self.flows.values())

    def validate(self) -> None:
        """Structural validation of the whole description.

        Raises
        ------
        TopologyError
            If any bus has neither processors nor bridges, any processor
            sends no flow *and* receives none (a dead component is allowed
            only if it also has zero loss weight), or any flow cannot be
            routed.
        """
        if not self.buses:
            raise TopologyError("topology has no buses")
        if not self.processors:
            raise TopologyError("topology has no processors")
        used_buses = {p.bus for p in self.processors.values()}
        for bridge in self.bridges.values():
            used_buses.add(bridge.bus_a)
            used_buses.add(bridge.bus_b)
        for link in self.links:
            used_buses.add(link.bus_a)
            used_buses.add(link.bus_b)
        orphans = set(self.buses) - used_buses
        if orphans:
            raise TopologyError(
                f"buses with no processors, bridges or links: {sorted(orphans)}"
            )
        for flow_name in self.flows:
            self.route(flow_name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({self.name!r}: {len(self.buses)} buses, "
            f"{len(self.processors)} processors, "
            f"{len(self.bridges)} bridges, {len(self.flows)} flows)"
        )


def processor_names(topology: Topology) -> List[str]:
    """Processor names of any topology in report order.

    Numeric where names carry numbers (p1, p2, ..., p17 — the netproc
    testbed and the single-bus family), lexicographic otherwise (cpu,
    dma, ... on the template scenarios).  Every scenario-generic driver
    uses this ordering for its per-processor tables and bars.
    """
    def sort_key(name: str):
        digits = "".join(ch for ch in name if ch.isdigit())
        return (int(digits) if digits else 0, name)

    return sorted(topology.processors, key=sort_key)


def rebuilt_topology(
    topology: Topology,
    name: Optional[str] = None,
    flow_traffic=None,
    processor_loss_weight=None,
) -> Topology:
    """Structure-preserving copy with optional per-element transforms.

    Buses, links, bridges and processors are copied verbatim;
    ``flow_traffic(flow) -> TrafficDescriptor`` replaces each flow's
    traffic (load scaling, burstification) and
    ``processor_loss_weight(processor) -> float`` replaces each
    processor's loss weight (the weighted-loss extension).  The single
    copy loop every transform shares — so a new structural attribute
    only needs mirroring here.  The result is validated.
    """
    rebuilt = Topology(topology.name if name is None else name)
    for bus in topology.buses.values():
        rebuilt.add_bus(bus.name)
    for link in topology.links:
        rebuilt.add_link(link.bus_a, link.bus_b)
    for bridge in topology.bridges.values():
        rebuilt.add_bridge(
            bridge.name,
            bridge.bus_a,
            bridge.bus_b,
            service_rate=bridge.service_rate,
            loss_weight=bridge.loss_weight,
        )
    for proc in topology.processors.values():
        rebuilt.add_processor(
            proc.name,
            proc.bus,
            proc.service_rate,
            (
                proc.loss_weight
                if processor_loss_weight is None
                else processor_loss_weight(proc)
            ),
        )
    for flow in topology.flows.values():
        rebuilt.add_flow(
            flow.name,
            flow.source,
            flow.destination,
            flow.traffic if flow_traffic is None else flow_traffic(flow),
        )
    rebuilt.validate()
    return rebuilt
