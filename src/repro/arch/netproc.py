"""The network-processor evaluation testbed.

The paper evaluates on an unnamed "network processor" with roughly 17
processors (Figure 3's x-axis runs to 17).  The real design is not
published, so this module builds the closest synthetic equivalent — the
substitution recorded in DESIGN.md:

* 16 packet-processing engines (PEs) spread over four data buses,
* one control processor on a control bus,
* four bridges joining each data bus to the control bus (the "typical
  AMBA/CoreConnect" pattern),
* heterogeneous Poisson traffic: heavy local flows between neighbouring
  PEs, lighter cross-bus flows through the bridges, and control traffic
  touching every data bus.

Rates are generated deterministically from a seed so every experiment is
reproducible; the default seed yields the utilisation regime the paper
reports (substantial loss at total budget 160, near zero at 640 after
resizing).
"""

from __future__ import annotations

import numpy as np

from repro.arch.topology import Topology, processor_names
from repro.errors import TopologyError

__all__ = ["network_processor", "processor_names"]

#: Number of packet engines in the default testbed.
NUM_ENGINES = 16
#: Engines per data bus.
ENGINES_PER_BUS = 4


def network_processor(
    seed: int = 2005,
    load_scale: float = 1.0,
) -> Topology:
    """Build the 17-processor network-processor testbed.

    Parameters
    ----------
    seed:
        Seed for the deterministic rate draw.
    load_scale:
        Multiplies every flow rate; the policy-sweep ablation uses
        0.5–1.5 to probe the sizing across load levels.

    Returns
    -------
    Topology
        Validated topology with processors ``p1..p16`` (PEs, four per data
        bus ``data0..data3``) and ``p17`` (control processor on ``ctrl``).
    """
    if load_scale <= 0:
        raise TopologyError(f"load_scale must be > 0, got {load_scale}")
    rng = np.random.default_rng(seed)
    topo = Topology("network-processor")
    num_buses = NUM_ENGINES // ENGINES_PER_BUS
    for b in range(num_buses):
        topo.add_bus(f"data{b}")
    topo.add_bus("ctrl")
    for b in range(num_buses):
        topo.add_bridge(
            f"br{b}", f"data{b}", "ctrl", service_rate=float(rng.uniform(5.0, 7.0))
        )
    # Packet engines p1..p16; heterogeneous service rates model different
    # transaction lengths per engine.
    for i in range(1, NUM_ENGINES + 1):
        bus = f"data{(i - 1) // ENGINES_PER_BUS}"
        topo.add_processor(
            f"p{i}", bus, service_rate=float(rng.uniform(5.0, 9.0))
        )
    topo.add_processor("p17", "ctrl", service_rate=float(rng.uniform(6.0, 8.0)))

    # Local flows: each PE talks to its successor on the same bus.
    for i in range(1, NUM_ENGINES + 1):
        base = ((i - 1) // ENGINES_PER_BUS) * ENGINES_PER_BUS
        successor = base + ((i - base) % ENGINES_PER_BUS) + 1
        rate = float(rng.uniform(0.5, 1.6)) * load_scale
        topo.add_poisson_flow(f"loc_{i}", f"p{i}", f"p{successor}", rate)
    # Cross-bus flows: a subset of PEs streams to a PE on the next data
    # bus (through two bridges via the control bus).
    for i in range(1, NUM_ENGINES + 1, 2):
        src_bus = (i - 1) // ENGINES_PER_BUS
        dst_bus = (src_bus + 1) % (NUM_ENGINES // ENGINES_PER_BUS)
        dst = dst_bus * ENGINES_PER_BUS + ((i - 1) % ENGINES_PER_BUS) + 1
        rate = float(rng.uniform(0.15, 0.5)) * load_scale
        topo.add_poisson_flow(f"x_{i}", f"p{i}", f"p{dst}", rate)
    # Control traffic: the control processor polls one PE per data bus and
    # every fourth PE reports status upstream.
    for b in range(num_buses):
        target = b * ENGINES_PER_BUS + 1
        rate = float(rng.uniform(0.1, 0.3)) * load_scale
        topo.add_poisson_flow(f"ctl_{b}", "p17", f"p{target}", rate)
    for i in range(4, NUM_ENGINES + 1, 4):
        rate = float(rng.uniform(0.1, 0.25)) * load_scale
        topo.add_poisson_flow(f"rpt_{i}", f"p{i}", "p17", rate)
    topo.validate()
    return topo
