"""Load-level analysis and feasibility checks for topologies.

:meth:`repro.arch.topology.Topology.validate` checks *structure*; the
functions here check *load*: whether each bus cluster could keep up with
its offered traffic at all (utilisation), which the sizing experiments use
to place themselves in the loss regime the paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.arch.topology import Topology
from repro.errors import TopologyError


@dataclass(frozen=True)
class ClusterLoad:
    """Offered load summary of one bus cluster.

    Attributes
    ----------
    cluster:
        The buses forming the cluster.
    offered_rate:
        Total mean request rate entering the cluster (local sources plus
        bridge ingress, un-thinned).
    utilisation:
        Offered rate divided by an optimistic service capacity (the mean
        of the member clients' service rates) — above ~1 the cluster is
        overloaded and *must* lose traffic regardless of buffer sizes.
    """

    cluster: frozenset
    offered_rate: float
    utilisation: float


def cluster_loads(topology: Topology) -> List[ClusterLoad]:
    """Per-cluster offered load, including bridge ingress traffic.

    Bridge ingress is counted at its *offered* (un-thinned) rate, so this
    is a conservative upper bound on real load.
    """
    topology.validate()
    loads: List[ClusterLoad] = []
    for cluster in topology.bus_clusters():
        offered = 0.0
        service_rates: List[float] = []
        for proc in topology.cluster_processors(cluster):
            offered += topology.processor_offered_rate(proc.name)
            service_rates.append(proc.service_rate)
        # Bridge ingress: flows whose route enters this cluster from
        # outside contribute their full rate.
        for flow in topology.flows.values():
            route = topology.route(flow.name)
            for i, visited in enumerate(route.clusters):
                if visited == cluster and i > 0:
                    offered += flow.rate
        for bridge in topology.cluster_bridges(cluster):
            service_rates.append(bridge.service_rate)
        mean_service = sum(service_rates) / len(service_rates)
        loads.append(
            ClusterLoad(
                cluster=cluster,
                offered_rate=offered,
                utilisation=offered / mean_service,
            )
        )
    return loads


def assert_not_overloaded(topology: Topology, limit: float = 1.0) -> None:
    """Raise if any cluster's optimistic utilisation exceeds ``limit``.

    The sizing method redistributes buffers; it cannot create bandwidth.
    Experiments that want a *lossy but feasible* regime call this with
    ``limit`` slightly above their target utilisation.
    """
    for load in cluster_loads(topology):
        if load.utilisation > limit:
            raise TopologyError(
                f"cluster {sorted(load.cluster)} utilisation "
                f"{load.utilisation:.3f} exceeds limit {limit:.3f}"
            )
