"""A small textual format for communication architectures.

Real sizing tools are driven by architecture files, not Python; this
module defines a line-oriented description the CLI consumes and a
serialiser so any :class:`~repro.arch.topology.Topology` round-trips.

Grammar (one directive per line, ``#`` comments)::

    soc <name>
    bus <name>
    link <bus_a> <bus_b>
    bridge <name> <bus_a> <bus_b> service=<rate> [weight=<w>]
    processor <name> <bus> service=<rate> [weight=<w>]
    flow <name> <source> <destination> rate=<rate>
    flow <name> <source> <destination> onoff peak=<r> on=<t> off=<t>
    flow <name> <source> <destination> hyper r1=<r> r2=<r> p1=<p>

Example::

    soc amba-mini
    bus ahb
    bus apb
    bridge ahb2apb ahb apb service=3.0
    processor cpu ahb service=10.0
    processor uart apb service=2.0 weight=2.0
    flow cpu_uart cpu uart rate=0.8
"""

from __future__ import annotations

from typing import Dict, List

from repro.arch.topology import Topology
from repro.arch.traffic import (
    HyperexponentialTraffic,
    OnOffTraffic,
    PoissonTraffic,
)
from repro.errors import TopologyError


def _parse_kwargs(tokens: List[str], line_no: int) -> Dict[str, str]:
    kwargs: Dict[str, str] = {}
    for token in tokens:
        if "=" not in token:
            raise TopologyError(
                f"line {line_no}: expected key=value, got {token!r}"
            )
        key, value = token.split("=", 1)
        if key in kwargs:
            raise TopologyError(
                f"line {line_no}: duplicate key {key!r}"
            )
        kwargs[key] = value
    return kwargs


def _float(kwargs: Dict[str, str], key: str, line_no: int) -> float:
    if key not in kwargs:
        raise TopologyError(f"line {line_no}: missing {key}=")
    try:
        return float(kwargs[key])
    except ValueError:
        raise TopologyError(
            f"line {line_no}: {key}={kwargs[key]!r} is not a number"
        ) from None


def parse_topology(text: str) -> Topology:
    """Parse the DSL into a validated topology.

    Raises
    ------
    TopologyError
        On any syntax or semantic error, with the offending line number.
    """
    topo: Topology | None = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        directive, args = tokens[0], tokens[1:]
        if directive == "soc":
            if topo is not None:
                raise TopologyError(
                    f"line {line_no}: duplicate 'soc' directive"
                )
            if len(args) != 1:
                raise TopologyError(f"line {line_no}: soc takes one name")
            topo = Topology(args[0])
            continue
        if topo is None:
            raise TopologyError(
                f"line {line_no}: first directive must be 'soc <name>'"
            )
        if directive == "bus":
            if len(args) != 1:
                raise TopologyError(f"line {line_no}: bus takes one name")
            topo.add_bus(args[0])
        elif directive == "link":
            if len(args) != 2:
                raise TopologyError(f"line {line_no}: link takes two buses")
            topo.add_link(args[0], args[1])
        elif directive == "bridge":
            if len(args) < 3:
                raise TopologyError(
                    f"line {line_no}: bridge <name> <bus_a> <bus_b> service=.."
                )
            kwargs = _parse_kwargs(args[3:], line_no)
            topo.add_bridge(
                args[0],
                args[1],
                args[2],
                service_rate=_float(kwargs, "service", line_no),
                loss_weight=float(kwargs.get("weight", 1.0)),
            )
        elif directive == "processor":
            if len(args) < 2:
                raise TopologyError(
                    f"line {line_no}: processor <name> <bus> service=.."
                )
            kwargs = _parse_kwargs(args[2:], line_no)
            topo.add_processor(
                args[0],
                args[1],
                service_rate=_float(kwargs, "service", line_no),
                loss_weight=float(kwargs.get("weight", 1.0)),
            )
        elif directive == "flow":
            if len(args) < 3:
                raise TopologyError(
                    f"line {line_no}: flow <name> <src> <dst> ..."
                )
            name, source, destination = args[0], args[1], args[2]
            rest = args[3:]
            if rest and rest[0] == "onoff":
                kwargs = _parse_kwargs(rest[1:], line_no)
                traffic = OnOffTraffic(
                    peak_rate=_float(kwargs, "peak", line_no),
                    mean_on=_float(kwargs, "on", line_no),
                    mean_off=_float(kwargs, "off", line_no),
                )
            elif rest and rest[0] == "hyper":
                kwargs = _parse_kwargs(rest[1:], line_no)
                traffic = HyperexponentialTraffic(
                    rate1=_float(kwargs, "r1", line_no),
                    rate2=_float(kwargs, "r2", line_no),
                    phase1_prob=_float(kwargs, "p1", line_no),
                )
            else:
                kwargs = _parse_kwargs(rest, line_no)
                traffic = PoissonTraffic(_float(kwargs, "rate", line_no))
            topo.add_flow(name, source, destination, traffic)
        else:
            raise TopologyError(
                f"line {line_no}: unknown directive {directive!r}"
            )
    if topo is None:
        raise TopologyError("empty architecture description")
    topo.validate()
    return topo


def serialize_topology(topology: Topology) -> str:
    """Serialise a topology back into the DSL.

    Only the traffic models the DSL can express are supported; custom
    :class:`~repro.arch.traffic.TrafficDescriptor` subclasses raise.
    """
    lines: List[str] = [f"soc {topology.name}"]
    for bus in topology.buses.values():
        lines.append(f"bus {bus.name}")
    for link in topology.links:
        lines.append(f"link {link.bus_a} {link.bus_b}")
    for bridge in sorted(topology.bridges.values(), key=lambda b: b.name):
        lines.append(
            f"bridge {bridge.name} {bridge.bus_a} {bridge.bus_b} "
            f"service={bridge.service_rate!r} weight={bridge.loss_weight!r}"
        )
    for proc in sorted(topology.processors.values(), key=lambda p: p.name):
        lines.append(
            f"processor {proc.name} {proc.bus} "
            f"service={proc.service_rate!r} weight={proc.loss_weight!r}"
        )
    for flow in sorted(topology.flows.values(), key=lambda f: f.name):
        traffic = flow.traffic
        if isinstance(traffic, PoissonTraffic):
            spec = f"rate={traffic.rate!r}"
        elif isinstance(traffic, OnOffTraffic):
            spec = (
                f"onoff peak={traffic.peak_rate!r} on={traffic.mean_on!r} "
                f"off={traffic.mean_off!r}"
            )
        elif isinstance(traffic, HyperexponentialTraffic):
            spec = (
                f"hyper r1={traffic.rate1!r} r2={traffic.rate2!r} "
                f"p1={traffic.phase1_prob!r}"
            )
        else:
            raise TopologyError(
                f"flow {flow.name!r}: traffic {type(traffic).__name__} "
                "cannot be serialised to the DSL"
            )
        lines.append(
            f"flow {flow.name} {flow.source} {flow.destination} {spec}"
        )
    return "\n".join(lines) + "\n"
