"""Disk-backed, content-addressed store for experiment results.

Every cacheable computation is described by a *payload*: a plain
tree of dicts/lists/scalars that fully determines the result — the
topology fingerprint, the capacities or budget, the simulation or solver
configuration.  The cache key is a SHA-256 over the canonical JSON of
that payload wrapped in an envelope carrying the computation *kind*, the
cache schema version and the package code version, so

* the same experiment re-run (or an overlapping sweep) hits;
* any config change — a different seed scheme, arbiter, budget, solver
  knob — misses;
* upgrading the package (or the cache schema) invalidates everything,
  because results may legitimately change across code versions.

Values are stored as individual pickle files under two-level fan-out
directories (``<root>/<kk>/<key>.pkl``), written atomically via a
rename so a crashed writer never leaves a truncated entry behind.

Entries are **sha256-checksummed**: the stored bytes are a magic tag,
the digest of the pickled value, then the pickle itself
(:func:`pack_entry`/:func:`unpack_entry`).  A read whose digest does
not match is *quarantined* — renamed aside, counted, never
deserialised — and reported as a miss, so a bit-flipped or truncated
entry is recomputed instead of feeding garbage (or a pickle bomb) into
an experiment.  The same framing wraps blobs crossing the distributed
cache tier (:mod:`repro.dist.cachetier`), so corruption is caught at
every store boundary.

A cache built with ``max_bytes`` evicts least-recently-used entries
after every store until the on-disk footprint fits the bound: hits
touch an entry's mtime, so recency survives process restarts, and
unreadable (corrupt) entries are just bytes like any other — they read
as misses and age out of the LRU order like everything else.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import threading
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro import _version, obs
from repro.errors import CacheCorruptionError, ReproError
from repro.faults import injector as faults

#: Bump to invalidate every existing cache entry (layout/semantic changes).
#: 2: entries carry the sha256-checksummed :func:`pack_entry` framing.
CACHE_SCHEMA = 2

#: Leading tag of every checksummed entry/blob (version in the byte).
ENTRY_MAGIC = b"RPC2"

_DIGEST_BYTES = hashlib.sha256().digest_size

_MISSING = object()


def pack_entry(value: Any) -> bytes:
    """Serialise ``value`` with an integrity envelope.

    ``magic + sha256(pickle) + pickle`` — the format every store tier
    (disk entries, broker blobs, the fleet run journal) writes, so a
    result round-trips bit-exactly *and* verifiably through any tier.
    """
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return ENTRY_MAGIC + hashlib.sha256(payload).digest() + payload


def unpack_entry(data: bytes) -> Any:
    """Verify and deserialise one :func:`pack_entry` envelope.

    Raises :class:`CacheCorruptionError` on a bad tag, a short read, or
    a digest mismatch — *before* any unpickling, so damaged bytes are
    never deserialised.  (A digest-valid pickle that still fails to
    load — e.g. a class renamed between runs — raises its own error;
    callers treat both as a miss.)
    """
    header = len(ENTRY_MAGIC) + _DIGEST_BYTES
    if len(data) < header or data[: len(ENTRY_MAGIC)] != ENTRY_MAGIC:
        raise CacheCorruptionError(
            "cache entry is not a checksummed envelope"
        )
    digest = data[len(ENTRY_MAGIC) : header]
    payload = data[header:]
    if hashlib.sha256(payload).digest() != digest:
        raise CacheCorruptionError("cache entry failed its sha256 check")
    return pickle.loads(payload)


def canonicalize(obj: Any) -> Any:
    """Reduce an object tree to canonical JSON-compatible primitives.

    Dicts are rekeyed to strings (so JSON key sorting is total),
    tuples/sets become lists (sets sorted), dataclasses become
    ``{"__type__": name, **fields}``, and numpy scalars collapse to
    Python scalars via ``item()``.  Anything else must already be a JSON
    scalar.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonicalize(v) for v in obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__type__": type(obj).__name__, **fields}
    if hasattr(obj, "item") and callable(obj.item):  # numpy scalar
        return obj.item()
    raise ReproError(
        f"cannot canonicalise {type(obj).__name__!r} for cache hashing"
    )


def stable_hash(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of ``payload``.

    ``json.dumps`` with sorted keys over the canonical tree is a stable
    serialisation: float repr is the shortest round-trip form, so equal
    bit patterns always hash equally.
    """
    text = json.dumps(
        canonicalize(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def entry_key(kind: str, payload: Dict[str, Any]) -> str:
    """The content address of one computation.

    The envelope pins the computation kind, the cache schema and the
    code version alongside the payload, so keys from different
    kinds/versions can never collide.  Module-level because the address
    is a pure function of its inputs: every store tier — the on-disk
    :class:`ResultCache`, the distributed shared tier
    (:mod:`repro.dist.cachetier`) — must compute identical keys or
    they could never pool results.
    """
    return stable_hash(
        {
            "kind": kind,
            "schema": CACHE_SCHEMA,
            "code_version": _version.__version__,
            "payload": payload,
        }
    )


def topology_fingerprint(topology) -> Dict[str, Any]:
    """Canonical content description of a topology.

    Covers everything the solvers and the simulator read: buses, links,
    bridges, processors (service rates, loss weights), and flows with
    their full traffic descriptors.
    """
    return {
        "name": topology.name,
        "buses": sorted(topology.buses),
        "links": sorted(
            [sorted((link.bus_a, link.bus_b)) for link in topology.links]
        ),
        "bridges": {
            name: {
                "bus_a": bridge.bus_a,
                "bus_b": bridge.bus_b,
                "service_rate": bridge.service_rate,
                "loss_weight": bridge.loss_weight,
            }
            for name, bridge in topology.bridges.items()
        },
        "processors": {
            name: {
                "bus": proc.bus,
                "service_rate": proc.service_rate,
                "loss_weight": proc.loss_weight,
            }
            for name, proc in topology.processors.items()
        },
        "flows": {
            name: {
                "source": flow.source,
                "destination": flow.destination,
                "traffic": canonicalize(flow.traffic),
            }
            for name, flow in topology.flows.items()
        },
    }


class ResultCache:
    """A content-addressed pickle store rooted at one directory.

    Parameters
    ----------
    root:
        Cache directory (created on first use).
    max_bytes:
        Optional size bound.  After every store, least-recently-used
        entries are deleted until the total entry footprint is at most
        this many bytes (``--cache-max-mb`` on the CLI).  ``None``
        (default) never evicts.  The bound is hard: a single entry
        larger than ``max_bytes`` is itself evicted right after being
        written, effectively disabling persistence for it.

    Attributes
    ----------
    hits / misses / evictions / quarantined:
        Counters over this process's :meth:`fetch`/:meth:`put` calls,
        used by the tests and the benchmark to assert cache behaviour.
        ``quarantined`` counts entries whose integrity check failed and
        were set aside (read as misses, recomputed — self-healing).
    """

    def __init__(self, root, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ReproError(
                f"max_bytes must be >= 0 or None, got {max_bytes}"
            )
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.quarantined = 0
        # Mirrors of the instance counters in the process registry
        # (no-op stubs when metrics are off): the instance attributes
        # stay the per-store API, the registry aggregates across every
        # store in the process and ships to the broker's fleet view.
        self._c_hits = obs.counter("cache.hits")
        self._c_misses = obs.counter("cache.misses")
        self._c_evictions = obs.counter("cache.evictions")
        self._c_quarantined = obs.counter("cache.quarantined")
        # Running footprint estimate for the bounded cache: seeded by
        # one directory scan on the first store, then bumped per put.
        # Re-putting an existing key over-counts, which only triggers
        # the (authoritative, correcting) eviction scan early — the
        # estimate can never let the cache silently exceed the bound.
        self._approx_bytes: Optional[int] = None
        # Serialises the footprint bookkeeping and eviction across
        # threads sharing this instance (a broker serving one store
        # from many connection threads, a pooled CI harness).  Cross-
        # *process* safety needs no lock: entry writes are atomic
        # renames, reads tolerate any bytes, and eviction tolerates
        # files vanishing underneath it.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def key(self, kind: str, payload: Dict[str, Any]) -> str:
        """The content address of one computation.

        The envelope pins the computation kind, the cache schema and the
        code version alongside the payload, so keys from different
        kinds/versions can never collide.
        """
        return entry_key(kind, payload)

    def path_for(self, key: str) -> Path:
        """On-disk location of one entry."""
        return self.root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` for one key; unreadable entries count as miss.

        Integrity is checked *before* deserialisation: a bit-flipped or
        truncated entry fails its sha256 and is quarantined (renamed
        aside, never unpickled), then reads as a miss so the value is
        recomputed and the next :meth:`put` heals the entry.  A
        digest-valid entry that still fails to unpickle (e.g. a class
        moved between versions) is quarantined the same way — a damaged
        cache must never abort an experiment.
        """
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            return False, None
        # Chaos hook: a fault plan may damage the bytes here, exactly
        # as silent disk corruption would (no-op in production).
        data = faults.transform("cache.entry", data)
        try:
            value = unpack_entry(data)
        except Exception:
            self._quarantine(path)
            return False, None
        if self.max_bytes is not None:
            # Touch the entry so LRU eviction sees the access; recency
            # lives in mtimes, surviving process restarts.
            try:
                os.utime(path)
            except OSError:
                pass
        return True, value

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """:meth:`get` plus hit/miss accounting.

        The primitive :meth:`fetch` and batch callers (the sweep
        scheduler) build on, so the counters mean the same thing on
        every path.
        """
        with obs.span("cache.lookup") as span:
            hit, value = self.get(key)
            span.set("hit", hit)
        if hit:
            self.hits += 1
            self._c_hits.inc()
        else:
            self.misses += 1
            self._c_misses.inc()
        return hit, value

    def put(self, key: str, value: Any) -> None:
        """Store one value atomically (tmp file + rename).

        Concurrent-writer safe: every writer dumps into its own unique
        temp file and installs it with one atomic ``os.replace``, so
        racing writers (parallel CI shards, fleet workers sharing a
        directory) can never interleave bytes or expose a truncated
        entry — last rename wins, and for content-addressed keys both
        contenders carry the same value anyway.

        With ``max_bytes`` set, least-recently-used entries are evicted
        afterwards until the footprint fits the bound.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(pack_entry(value))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.max_bytes is not None:
            with self._lock:
                if self._approx_bytes is None:
                    self._approx_bytes = self.total_bytes()
                else:
                    try:
                        self._approx_bytes += path.stat().st_size
                    except OSError:
                        # Evicted (or re-put) by a concurrent writer
                        # between the rename and the stat; the next
                        # eviction rescan corrects the estimate.
                        pass
                if self._approx_bytes > self.max_bytes:
                    self._evict_lru()

    def _quarantine(self, path: Path) -> None:
        """Set one damaged entry aside (``<key>.quarantined``).

        Renamed, not unlinked, so the bytes stay available for
        forensics; renamed out of the ``*.pkl`` namespace, so the entry
        stops hitting, stops counting toward the footprint, and the
        next :meth:`put` of the key writes a fresh entry (self-heal).
        At most one quarantined file per key (``os.replace``
        overwrites), and eviction pressure deletes them first.
        """
        try:
            os.replace(path, path.with_suffix(".quarantined"))
        except OSError:
            # Already quarantined/evicted by a concurrent reader.
            return
        self.quarantined += 1
        self._c_quarantined.inc()

    def entry_paths(self) -> list:
        """All entry files currently on disk (any fan-out directory)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.pkl"))

    def quarantined_paths(self) -> list:
        """All quarantined (integrity-failed) files currently on disk."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.quarantined"))

    def total_bytes(self) -> int:
        """Current on-disk footprint of all entries."""
        total = 0
        for path in self.entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def _evict_lru(self) -> None:
        """Delete oldest-access entries until the bound is met.

        Called with :attr:`_lock` held (one eviction scan at a time
        per instance); concurrent *processes* evicting the same
        directory are tolerated via the ``OSError`` guards below — a
        file unlinked by the other evictor (``FileNotFoundError``)
        simply stops counting here.

        Rescans the directory for an authoritative footprint (also
        correcting :attr:`_approx_bytes` drift), so it is only invoked
        when the running estimate crosses the bound — a put into a
        well-under-bound cache costs one stat, not a directory walk.
        Recency is the file mtime (ties break by file name so the order
        is total); stat/unlink races with concurrent writers are
        tolerated — a vanished file simply stops counting.  Corrupt
        entries need no special casing: they occupy bytes, age like any
        entry, and deleting one can never abort an experiment because
        reads already treat unreadable entries as misses.
        """
        # Quarantined bytes are worthless under pressure: reclaim them
        # before touching live entries.
        for path in self.quarantined_paths():
            try:
                path.unlink()
            except OSError:
                continue
        entries = []
        total = 0
        for path in self.entry_paths():
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, path.name, path, st.st_size))
            total += st.st_size
        if total > self.max_bytes:
            entries.sort()
            for _mtime, _name, path, size in entries:
                if total <= self.max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                self.evictions += 1
                self._c_evictions.inc()
        self._approx_bytes = total

    def fetch(
        self,
        kind: str,
        payload: Dict[str, Any],
        compute: Callable[[], Any],
        should_store: Optional[Callable[[Any], bool]] = None,
    ) -> Any:
        """Memoise ``compute()`` under the content address of the payload.

        ``should_store`` vetoes persisting a freshly computed value
        (e.g. a sizing run whose fixed point did not converge, whose
        result is therefore not a pure function of the payload); the
        value is still returned, just recomputed next time.
        """
        key = self.key(kind, payload)
        hit, value = self.lookup(key)
        if hit:
            return value
        value = compute()
        if should_store is None or should_store(value):
            self.put(key, value)
        return value
