"""Disk-backed, content-addressed store for experiment results.

Every cacheable computation is described by a *payload*: a plain
tree of dicts/lists/scalars that fully determines the result — the
topology fingerprint, the capacities or budget, the simulation or solver
configuration.  The cache key is a SHA-256 over the canonical JSON of
that payload wrapped in an envelope carrying the computation *kind*, the
cache schema version and the package code version, so

* the same experiment re-run (or an overlapping sweep) hits;
* any config change — a different seed scheme, arbiter, budget, solver
  knob — misses;
* upgrading the package (or the cache schema) invalidates everything,
  because results may legitimately change across code versions.

Values are stored as individual pickle files under two-level fan-out
directories (``<root>/<kk>/<key>.pkl``), written atomically via a
rename so a crashed writer never leaves a truncated entry behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro import _version
from repro.errors import ReproError

#: Bump to invalidate every existing cache entry (layout/semantic changes).
CACHE_SCHEMA = 1

_MISSING = object()


def canonicalize(obj: Any) -> Any:
    """Reduce an object tree to canonical JSON-compatible primitives.

    Dicts are rekeyed to strings (so JSON key sorting is total),
    tuples/sets become lists (sets sorted), dataclasses become
    ``{"__type__": name, **fields}``, and numpy scalars collapse to
    Python scalars via ``item()``.  Anything else must already be a JSON
    scalar.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonicalize(v) for v in obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__type__": type(obj).__name__, **fields}
    if hasattr(obj, "item") and callable(obj.item):  # numpy scalar
        return obj.item()
    raise ReproError(
        f"cannot canonicalise {type(obj).__name__!r} for cache hashing"
    )


def stable_hash(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of ``payload``.

    ``json.dumps`` with sorted keys over the canonical tree is a stable
    serialisation: float repr is the shortest round-trip form, so equal
    bit patterns always hash equally.
    """
    text = json.dumps(
        canonicalize(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def topology_fingerprint(topology) -> Dict[str, Any]:
    """Canonical content description of a topology.

    Covers everything the solvers and the simulator read: buses, links,
    bridges, processors (service rates, loss weights), and flows with
    their full traffic descriptors.
    """
    return {
        "name": topology.name,
        "buses": sorted(topology.buses),
        "links": sorted(
            [sorted((link.bus_a, link.bus_b)) for link in topology.links]
        ),
        "bridges": {
            name: {
                "bus_a": bridge.bus_a,
                "bus_b": bridge.bus_b,
                "service_rate": bridge.service_rate,
                "loss_weight": bridge.loss_weight,
            }
            for name, bridge in topology.bridges.items()
        },
        "processors": {
            name: {
                "bus": proc.bus,
                "service_rate": proc.service_rate,
                "loss_weight": proc.loss_weight,
            }
            for name, proc in topology.processors.items()
        },
        "flows": {
            name: {
                "source": flow.source,
                "destination": flow.destination,
                "traffic": canonicalize(flow.traffic),
            }
            for name, flow in topology.flows.items()
        },
    }


class ResultCache:
    """A content-addressed pickle store rooted at one directory.

    Parameters
    ----------
    root:
        Cache directory (created on first use).

    Attributes
    ----------
    hits / misses:
        Counters over this process's :meth:`fetch` calls, used by the
        tests and the benchmark to assert cache behaviour.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def key(self, kind: str, payload: Dict[str, Any]) -> str:
        """The content address of one computation.

        The envelope pins the computation kind, the cache schema and the
        code version alongside the payload, so keys from different
        kinds/versions can never collide.
        """
        return stable_hash(
            {
                "kind": kind,
                "schema": CACHE_SCHEMA,
                "code_version": _version.__version__,
                "payload": payload,
            }
        )

    def path_for(self, key: str) -> Path:
        """On-disk location of one entry."""
        return self.root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` for one key; unreadable entries count as miss.

        Unpickling garbage bytes can raise almost anything (decode,
        attribute, index errors, ...), so *any* failure to load reads
        as a miss and the value is recomputed — a damaged cache must
        never abort an experiment.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                return True, pickle.load(fh)
        except Exception:
            return False, None

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """:meth:`get` plus hit/miss accounting.

        The primitive :meth:`fetch` and batch callers (the sweep
        scheduler) build on, so the counters mean the same thing on
        every path.
        """
        hit, value = self.get(key)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit, value

    def put(self, key: str, value: Any) -> None:
        """Store one value atomically (tmp file + rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def fetch(
        self,
        kind: str,
        payload: Dict[str, Any],
        compute: Callable[[], Any],
        should_store: Optional[Callable[[Any], bool]] = None,
    ) -> Any:
        """Memoise ``compute()`` under the content address of the payload.

        ``should_store`` vetoes persisting a freshly computed value
        (e.g. a sizing run whose fixed point did not converge, whose
        result is therefore not a pure function of the payload); the
        value is still returned, just recomputed next time.
        """
        key = self.key(kind, payload)
        hit, value = self.lookup(key)
        if hit:
            return value
        value = compute()
        if should_store is None or should_store(value):
            self.put(key, value)
        return value
