"""Deterministic process-pool fan-out for independent experiment jobs.

Every expensive primitive in the repository — a replication batch, a
budget sweep, a load sweep — is a map of a *pure* function over a list
of independent job descriptions (seeds are pre-derived, solver state is
per-job).  :func:`parallel_map` is that map: it fans the jobs over a
``ProcessPoolExecutor`` and merges the results **in submission order**,
so the output is exactly what the serial loop would have produced.

Determinism contract
--------------------
``parallel_map(fn, jobs_list, jobs=N)`` returns the same list, element
for element, as ``[fn(j) for j in jobs_list]`` for every ``N``:

* jobs are pure functions of their (pickled) arguments — no shared
  mutable state, no wall-clock, no global RNG;
* results are merged by job index, never by completion order;
* pickling round-trips floats, ints and numpy arrays bit-exactly.

``jobs=1`` (the default everywhere) short-circuits to a plain in-process
loop — no executor, no pickling — so the serial path stays the reference
implementation the pooled path is tested against.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro import obs
from repro.errors import SimulationError

T = TypeVar("T")
R = TypeVar("R")


def partition_blocks(total: int, blocks: int) -> List[Tuple[int, int]]:
    """Contiguous near-equal ``[lo, hi)`` spans covering ``range(total)``.

    The mega-batch replication dispatch partitions a cell's seed list
    into per-worker blocks with this: spans are contiguous and in
    order, sizes differ by at most one, and concatenating the spans
    reproduces ``range(total)`` exactly — so any block decomposition
    merges back into the same replication order.  ``blocks`` is clamped
    to ``[1, total]``.
    """
    if total < 1:
        raise SimulationError(f"total must be >= 1, got {total}")
    blocks = max(1, min(int(blocks), total))
    base, extra = divmod(total, blocks)
    spans: List[Tuple[int, int]] = []
    lo = 0
    for k in range(blocks):
        hi = lo + base + (1 if k < extra else 0)
        spans.append((lo, hi))
        lo = hi
    return spans


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a job-count request.

    ``None`` or ``0`` means "all cores"; negative values are rejected;
    anything else passes through.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise SimulationError(f"jobs must be >= 0 or None, got {jobs}")
    return int(jobs)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = 1,
    chunksize: int = 1,
    executor: Optional[object] = None,
    on_result: Optional[Callable[[int, R], None]] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` with an ordered, deterministic merge.

    Parameters
    ----------
    fn:
        A module-level (picklable) pure function of one argument.
    items:
        Job descriptions; each must be picklable when ``jobs > 1``.
    jobs:
        Worker process count.  ``1`` (default) runs serially in-process;
        ``None``/``0`` uses every core.
    chunksize:
        Jobs shipped per worker round-trip (larger amortises IPC for
        many small jobs).
    executor:
        Optional remote executor — any object with
        ``map(fn, items, on_result=...) -> list`` merging by submission
        index (:class:`repro.dist.DistExecutor` is the one in-tree).
        When given it replaces the process pool entirely and ``jobs``
        is ignored; by its own determinism contract the results are
        the same either way.
    on_result:
        Optional ``on_result(index, result)`` progress callback, fired
        in submission order as the completed prefix grows (for the
        serial path: after every job).

    Any exception raised by a job propagates to the caller — a failed
    job is never silently dropped or reordered.
    """
    job_list = list(items)
    obs.counter("pool.maps").inc()
    obs.counter("pool.jobs").inc(len(job_list))
    if executor is not None:
        # Fleet path: the executor owns dispatch — including the
        # cost-model LPT schedule and lease sizing when it carries
        # ``schedule="cost"`` (see repro.dist.costmodel) — but merges
        # by submission index, so the determinism contract above is
        # its contract too.  Counted separately from local maps so
        # `repro obs dump` shows how much work left the host.
        obs.counter("pool.dist_maps").inc()
        obs.counter("pool.dist_jobs").inc(len(job_list))
        return executor.map(fn, job_list, on_result=on_result)
    workers = resolve_jobs(jobs)
    if workers <= 1 or len(job_list) <= 1:
        with obs.span("pool.map_serial") as span:
            span.set("jobs", len(job_list))
            results: List[R] = []
            for index, item in enumerate(job_list):
                result = fn(item)
                if on_result is not None:
                    on_result(index, result)
                results.append(result)
            return results
    workers = min(workers, len(job_list))
    with obs.span("pool.map") as span:
        span.set("jobs", len(job_list))
        span.set("workers", workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Executor.map yields results in submission order
            # regardless of completion order: the ordered merge the
            # contract requires.
            results = []
            for index, result in enumerate(
                pool.map(fn, job_list, chunksize=chunksize)
            ):
                if on_result is not None:
                    on_result(index, result)
                results.append(result)
            return results
