"""``repro.exec`` — the experiment-execution runtime.

Every experiment driver (figure3, table1, the extensions and ablations)
is built from two expensive primitives: replication batches of
:func:`repro.sim.runner.simulate` and budget sweeps of
:class:`repro.core.sizing.BufferSizer`.  This package is the layer that
schedules, caches and merges those primitives without changing a single
number they produce:

* :mod:`repro.exec.pool` — deterministic process-pool fan-out with an
  ordered merge (``jobs=N`` is bitwise-identical to ``jobs=1``);
* :mod:`repro.exec.sweeps` — budget-sweep chaining with bridge-rate and
  LP-basis warm starts (equivalent to cold solves, far fewer fixed-point
  iterations);
* :mod:`repro.exec.cache` — a disk-backed content-addressed result
  store keyed by topology + configuration + code version.

:class:`ExecutionContext` bundles the runtime knobs (``jobs``,
``cache``, ``warm_start``, ``sim_backend``, ``scenario``) into the
single object the drivers and the CLI pass around.  The default context
is serial, uncached, warm and batched-engined (the array lane is the
experiment default since it soaked; ``sim_backend="heap"`` selects the
reference event loop, which produces bitwise-identical fixed-seed
metrics for deterministic arbiters).
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, Optional

from repro.errors import ReproError
from repro.exec.cache import ResultCache, topology_fingerprint
from repro.exec.pool import parallel_map, resolve_jobs

__all__ = [
    "ExecutionContext",
    "ResultCache",
    "BudgetSweepOutcome",
    "SweepPointOutcome",
    "parallel_map",
    "resolve_jobs",
    "sweep_budgets",
    "topology_fingerprint",
]

#: Names re-exported from :mod:`repro.exec.sweeps`.  Resolved lazily
#: (PEP 562): sweeps imports the sizing pipeline, which transitively
#: imports the simulator, whose runner imports :mod:`repro.exec.pool` —
#: an import cycle if sweeps loaded eagerly here.
_SWEEP_EXPORTS = (
    "BudgetSweepOutcome",
    "SweepPointOutcome",
    "sizing_payload",
    "sweep_budgets",
)


def __getattr__(name: str):
    if name in _SWEEP_EXPORTS:
        from repro.exec import sweeps

        return getattr(sweeps, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@lru_cache(maxsize=1)
def _replicate_defaults() -> Dict[str, Any]:
    """Default values of every replication-batch kwarg.

    Read off the live signatures of ``simulate`` and ``replicate`` so
    cache keys stay in sync with the code: a batch requested with
    explicit defaults (``seed_scheme="legacy"``) and one relying on the
    omitted defaults must hash identically, or callers that spell their
    calls differently (CLI vs ``compare_policies``) silently never
    share cache entries.  ``seed`` is simulate's per-run seed (derived
    by replicate, not a batch kwarg); ``jobs``/``executor`` cannot
    change the result (the pool/fleet determinism contract) and
    ``on_result`` is pure observation — all are excluded, keeping keys
    identical across local, pooled and distributed runs.
    """
    from repro.sim import runner

    merged: Dict[str, Any] = {}
    for fn in (runner.simulate, runner.replicate):
        for name, param in inspect.signature(fn).parameters.items():
            if param.default is not inspect.Parameter.empty:
                merged[name] = param.default
    for excluded in ("seed", "jobs", "executor", "on_result"):
        merged.pop(excluded, None)
    return merged


@dataclass
class ExecutionContext:
    """How to execute an experiment: parallelism, caching, warm starts.

    Attributes
    ----------
    jobs:
        Worker processes for replication batches and cold sweep points
        (``1`` = serial reference path, ``0``/``None`` = all cores).
    cache:
        Optional :class:`ResultCache`; sizing results and replication
        summaries are memoised under content-addressed keys.
    warm_start:
        Chain budget sweeps through converged bridge rates / LP bases
        (the ``--no-warm-start`` escape hatch clears this).
    sim_backend:
        Simulation engine for replication batches — ``"batched"`` (the
        array lane, default since it soaked) or ``"heap"`` (the
        reference event loop; ``--sim-backend heap`` escape hatch); see
        :data:`repro.sim.runner.SIM_BACKENDS`.  Unlike ``jobs``, the
        backend *is* part of replication cache keys: randomised
        arbiters are only statistically equivalent across backends.
    scenario:
        Optional scenario scope (``ScenarioSpec.cache_scope()`` or any
        canonicalisable value).  When set, every cache payload this
        context builds carries it, so cached sizing/replication results
        are scoped per scenario; ``None`` (the default) leaves payloads
        unscoped.
    executor:
        Optional remote executor (:class:`repro.dist.DistExecutor`):
        replication batches and cold sweep fan-outs run on the fleet
        instead of the local pool.  Like ``jobs`` it cannot change any
        result (the distributed merge is by submission index) and is
        excluded from every cache key.
    progress:
        Optional ``progress(kind, key)`` observer, called once per
        completed unit — ``("replication", index)`` per simulation run,
        ``("sizing", budget)`` per sweep point.  The CLI's
        ``--progress`` and the fleet driver plug printers in here;
        pure observation, never part of a cache key.
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None
    warm_start: bool = True
    sim_backend: str = "batched"
    scenario: Optional[Any] = None
    executor: Optional[Any] = None
    progress: Optional[Any] = None

    def __post_init__(self) -> None:
        # Accept a ScenarioSpec anywhere a scope is accepted: the raw
        # spec carries callables the cache hasher cannot canonicalise.
        if hasattr(self.scenario, "cache_scope"):
            self.scenario = self.scenario.cache_scope()

    @classmethod
    def create(
        cls,
        jobs: Optional[int] = 1,
        cache_dir: Optional[str] = None,
        warm_start: bool = True,
        sim_backend: str = "batched",
        cache_max_mb: Optional[float] = None,
        scenario: Optional[Any] = None,
        dist: Optional[str] = None,
        dist_authkey: Optional[str] = None,
        dist_schedule: Optional[str] = None,
        progress: Optional[Any] = None,
    ) -> "ExecutionContext":
        """Build a context from plain CLI-style values.

        ``cache_max_mb`` bounds the cache directory (LRU eviction, in
        MiB); it requires ``cache_dir``.  ``scenario`` accepts the same
        values as :meth:`scoped` (a ``ScenarioSpec`` or a plain scope).
        ``dist`` is a broker address (``"host:port"``, the CLI's
        ``--dist``): batches fan out over that fleet via a
        :class:`repro.dist.DistExecutor` instead of the local pool,
        authenticated with ``dist_authkey`` (``--authkey``) when given.
        ``dist_schedule`` (``--schedule``) selects the fleet's dispatch
        policy — ``"cost"`` for cost-model LPT ordering with sized
        leases, ``"fifo"`` to force arrival order, ``None`` for the
        broker's default; by the fleet determinism contract it cannot
        change any result.
        """
        if cache_max_mb is not None and cache_dir is None:
            raise ReproError("cache_max_mb requires a cache directory")
        max_bytes = (
            int(cache_max_mb * 1024 * 1024)
            if cache_max_mb is not None
            else None
        )
        executor = None
        if dist is not None:
            from repro.dist import DistExecutor

            dist_kwargs: Dict[str, Any] = {"schedule": dist_schedule}
            if dist_authkey is not None:
                dist_kwargs["authkey"] = dist_authkey.encode("utf-8")
            executor = DistExecutor(dist, **dist_kwargs)
        context = cls(
            jobs=resolve_jobs(jobs),
            cache=(
                ResultCache(cache_dir, max_bytes=max_bytes)
                if cache_dir
                else None
            ),
            warm_start=bool(warm_start),
            sim_backend=sim_backend,
            executor=executor,
            progress=progress,
        )
        return context if scenario is None else context.scoped(scenario)

    # ------------------------------------------------------------------

    def scoped(self, scenario: Any) -> "ExecutionContext":
        """A copy of this context scoped to one scenario's cache keys.

        ``scenario`` may be a :class:`~repro.scenarios.ScenarioSpec`
        (its :meth:`~repro.scenarios.ScenarioSpec.cache_scope` is
        taken) or a plain canonicalisable value.  The cache object and
        its hit/miss counters are shared with the parent context; only
        the key scope changes.  Scoping is idempotent — re-scoping to
        the same scenario returns ``self``.
        """
        scope = (
            scenario.cache_scope()
            if hasattr(scenario, "cache_scope")
            else scenario
        )
        if scope == self.scenario:
            return self
        return dataclasses.replace(self, scenario=scope)

    def size(
        self,
        topology,
        budget: int,
        sizer_kwargs: Optional[dict] = None,
    ):
        """One cached CTMDP sizing run (`SizingResult`)."""
        from repro.core.sizing import BufferSizer
        from repro.exec.sweeps import sizing_payload, sizing_result_cacheable

        def compute():
            return BufferSizer(
                total_budget=budget, **(sizer_kwargs or {})
            ).size(topology)

        if self.cache is None:
            return compute()
        return self.cache.fetch(
            "sizing",
            sizing_payload(topology, budget, sizer_kwargs, scope=self.scenario),
            compute,
            should_store=sizing_result_cacheable,
        )

    def sweep(self, topology, budgets, sizer_kwargs=None):
        """A budget sweep under this context's warm/cache/jobs policy
        (`BudgetSweepOutcome`)."""
        from repro.exec.sweeps import sweep_budgets

        on_result = None
        if self.progress is not None:
            progress = self.progress
            on_result = lambda budget, result: progress("sizing", budget)
        return sweep_budgets(
            topology,
            budgets,
            sizer_kwargs=sizer_kwargs,
            warm_start=self.warm_start,
            cache=self.cache,
            jobs=self.jobs,
            scope=self.scenario,
            executor=self.executor,
            on_result=on_result,
        )

    def replicate(self, topology, capacities: Dict[str, int], **kwargs):
        """A cached, pooled replication batch (`ReplicationSummary`).

        Accepts exactly the keyword arguments of
        :func:`repro.sim.runner.replicate`; ``jobs`` and the simulation
        ``backend`` are injected from the context (an explicit
        ``backend`` kwarg wins).  The cache key covers everything that
        determines the statistics — never ``jobs``, which by the pool's
        determinism contract cannot change them, but always ``backend``,
        which can (randomised arbiters).
        """
        from repro.sim.runner import replicate

        kwargs.setdefault("backend", self.sim_backend)
        # Execution-path knobs never reach the cache payload: they are
        # pure observation (on_result) or answer-preserving (executor,
        # jobs) by the pool/fleet determinism contract.
        executor = kwargs.pop("executor", self.executor)
        on_result = kwargs.pop("on_result", None)
        if on_result is None and self.progress is not None:
            progress = self.progress
            on_result = lambda index, result: progress("replication", index)

        def compute():
            return replicate(
                topology,
                capacities,
                jobs=self.jobs,
                executor=executor,
                on_result=on_result,
                **kwargs,
            )

        if self.cache is None:
            return compute()
        # Normalise against the functions' defaults so the key is
        # caller-independent: explicitly passing a default value and
        # omitting it must address the same entry.
        batch_kwargs = {**_replicate_defaults(), **kwargs}
        payload: Dict[str, Any] = {
            "topology": topology_fingerprint(topology),
            "capacities": {k: int(v) for k, v in capacities.items()},
            "kwargs": {k: batch_kwargs[k] for k in sorted(batch_kwargs)},
        }
        if self.scenario is not None:
            payload["scenario"] = self.scenario
        key = self.cache.key("replicate", payload)
        hit, value = self.cache.lookup(key)
        if hit:
            # A cached batch still streams its per-replication events
            # (mirroring sweep_budgets, whose cache hits fire too), so
            # an observer can't mistake a hit for a stall.
            if on_result is not None:
                for index, result in enumerate(value.results):
                    on_result(index, result)
            return value
        value = compute()
        self.cache.put(key, value)
        return value
