"""Budget-sweep scheduler: warm-started chains of sizing runs.

The paper's Table 1 and the extension studies all sweep
:class:`~repro.core.sizing.BufferSizer` over a budget axis.  Solved
cold, every budget pays the full bridge fixed point from the offered
rates.  Solved as a *chain*, budget ``b + 1`` starts its fixed point at
budget ``b``'s converged bridge rates — usually one outer iteration
instead of several — and, when the LP structure is unchanged across the
sweep (fixed ``capacity_cap``), re-uses the previous optimal simplex
basis too.

Equivalence guarantee: warm starting changes only the *initial iterate*
of a fixed point that runs to the same tolerance, so the sweep produces
the same allocations as per-budget cold solves (asserted by the test
suite and reported by ``benchmarks/bench_exec_runtime.py``).  The
guarantee requires the fixed point to actually converge: a run that
exhausts ``max_fixed_point_iterations`` returns whatever iterate it
reached, which *does* depend on the start — such results are flagged
(``SizingResult.converged == False``) and never cached.
``warm_start=False`` is the escape hatch that forces cold solves — and,
because cold points are independent, lets them fan out over a process
pool.

Results are content-addressed through an optional
:class:`~repro.exec.cache.ResultCache`: the key covers the topology,
the budget and every sizer knob, but *not* the solve path (warm/cold,
serial/pooled), which by contract does not change the result.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.sizing import BufferSizer, SizingResult, WarmStartState
from repro.errors import ReproError
from repro.exec.cache import ResultCache, topology_fingerprint
from repro.exec.pool import parallel_map


@lru_cache(maxsize=1)
def _sizer_defaults() -> Dict[str, Any]:
    """Default values of every optional :class:`BufferSizer` argument.

    Read off the live signature so cache keys stay caller-independent:
    passing a default explicitly (``use_compiled=True``) and omitting
    it must hash identically (same rationale as the replication-key
    normalisation in :mod:`repro.exec`).
    """
    return {
        name: param.default
        for name, param in inspect.signature(
            BufferSizer.__init__
        ).parameters.items()
        if param.default is not inspect.Parameter.empty
    }


def sizing_payload(
    topology,
    budget: int,
    sizer_kwargs: Optional[dict],
    scope: Optional[Any] = None,
) -> Dict[str, Any]:
    """Cache payload fully determining one sizing run's result.

    ``scope`` is the optional scenario scope (see
    :meth:`repro.exec.ExecutionContext.scoped`): when set it becomes
    part of the payload, so two scenarios never share sizing entries;
    ``None`` keeps the payload — hence the key — unscoped.
    """
    payload: Dict[str, Any] = {
        "topology": topology_fingerprint(topology),
        "budget": int(budget),
        "sizer_kwargs": {**_sizer_defaults(), **(sizer_kwargs or {})},
    }
    if scope is not None:
        payload["scenario"] = scope
    return payload


def sizing_result_cacheable(result: SizingResult) -> bool:
    """Whether a sizing result is a pure function of its cache payload.

    A fixed point that exhausted its iteration budget returns whatever
    iterate it reached — start-dependent, so never stored.  Converged
    results are stored with one documented caveat: the *allocation* is
    solve-path-independent (the equivalence contract), while diagnostic
    fields (``fixed_point_iterations``, LP internals, blocking
    estimates) agree only to fixed-point tolerance and reflect
    whichever path populated the entry first.
    """
    return bool(result.converged)


def _size_cold(job: Tuple[Any, int, dict]) -> SizingResult:
    """Pool worker: one independent cold sizing solve."""
    topology, budget, sizer_kwargs = job
    return BufferSizer(total_budget=budget, **sizer_kwargs).size(topology)


@dataclass
class SweepPointOutcome:
    """One budget of a sweep: the result plus how it was obtained."""

    budget: int
    result: SizingResult
    warm_started: bool
    from_cache: bool


@dataclass
class BudgetSweepOutcome:
    """All points of one budget sweep, in request order."""

    points: List[SweepPointOutcome]

    def result_for(self, budget: int) -> SizingResult:
        """The sizing result of one budget."""
        for point in self.points:
            if point.budget == budget:
                return point.result
        raise ReproError(f"budget {budget} was not part of the sweep")

    def allocations(self) -> Dict[int, Dict[str, int]]:
        """``budget -> integer allocation`` over the whole sweep."""
        return {p.budget: dict(p.result.allocation.sizes) for p in self.points}

    @property
    def total_fixed_point_iterations(self) -> int:
        """Outer iterations summed over freshly solved budgets.

        Cache hits contribute nothing (no solve happened), and a budget
        requested twice is solved — hence counted — once; the warm-vs-
        cold benchmark runs uncached so this is the comparison metric.
        """
        seen = set()
        total = 0
        for p in self.points:
            if p.from_cache or p.budget in seen:
                continue
            seen.add(p.budget)
            total += p.result.fixed_point_iterations
        return total


def sweep_budgets(
    topology,
    budgets: Sequence[int],
    sizer_kwargs: Optional[dict] = None,
    warm_start: bool = True,
    cache: Optional[ResultCache] = None,
    jobs: int = 1,
    scope: Optional[Any] = None,
    executor: Optional[Any] = None,
    on_result: Optional[Callable[[int, SizingResult], None]] = None,
) -> BudgetSweepOutcome:
    """Size one topology at several budgets, chaining warm starts.

    Parameters
    ----------
    topology:
        The architecture to size (shared by every point).
    budgets:
        Budget axis, visited in the given order (adjacent budgets make
        the best warm-start neighbours; callers usually pass them
        sorted).
    sizer_kwargs:
        Extra :class:`BufferSizer` arguments applied at every point.
        Fixing ``capacity_cap`` here keeps the LP structure identical
        across budgets, enabling basis re-use on top of rate carry-over.
    warm_start:
        Chain converged bridge rates (and a compatible LP basis) from
        each budget into the next.  ``False`` solves every point cold.
    cache:
        Optional content-addressed result store; hits skip the solve.
    jobs:
        With ``warm_start=False``, uncached points fan out over a
        process pool (a warm chain is inherently sequential, so ``jobs``
        is ignored when warm starting).
    scope:
        Optional scenario scope added to every point's cache payload
        (see :func:`sizing_payload`).
    executor:
        Optional remote executor (:class:`repro.dist.DistExecutor`)
        the cold fan-out runs on instead of the local pool; like
        ``jobs``, it is ignored while warm starting (the chain is
        inherently sequential) and cannot change any result.
    on_result:
        Optional ``on_result(budget, result)`` progress callback,
        fired once per unique budget as its result becomes known —
        cache hits at lookup time, fresh solves as they complete (in
        axis order).
    """
    if not budgets:
        raise ReproError("budget sweep needs at least one budget")
    sizer_kwargs = dict(sizer_kwargs or {})
    budgets = [int(b) for b in budgets]
    unique_budgets = list(dict.fromkeys(budgets))

    cached: Dict[int, SizingResult] = {}
    if cache is not None:
        keys = {
            budget: cache.key(
                "sizing",
                sizing_payload(topology, budget, sizer_kwargs, scope=scope),
            )
            for budget in unique_budgets
        }
        for budget in unique_budgets:
            hit, value = cache.lookup(keys[budget])
            if hit:
                cached[budget] = value
                if on_result is not None:
                    on_result(budget, value)

    fresh: Dict[int, SizingResult] = {}
    warm_used: Dict[int, bool] = {}
    to_solve = [b for b in unique_budgets if b not in cached]
    if warm_start:
        state: Optional[WarmStartState] = None
        for i, budget in enumerate(to_solve):
            sizer = BufferSizer(total_budget=budget, **sizer_kwargs)
            result, state = sizer.size_warm(topology, state)
            fresh[budget] = result
            warm_used[budget] = i > 0
            if on_result is not None:
                on_result(budget, result)
    elif to_solve:
        results = parallel_map(
            _size_cold,
            [(topology, budget, sizer_kwargs) for budget in to_solve],
            jobs=jobs,
            executor=executor,
            on_result=(
                None
                if on_result is None
                else lambda i, result: on_result(to_solve[i], result)
            ),
        )
        for budget, result in zip(to_solve, results):
            fresh[budget] = result
            warm_used[budget] = False

    if cache is not None:
        for budget, result in fresh.items():
            if sizing_result_cacheable(result):
                cache.put(keys[budget], result)

    points = []
    for budget in budgets:
        if budget in cached:
            points.append(
                SweepPointOutcome(
                    budget=budget,
                    result=cached[budget],
                    warm_started=False,
                    from_cache=True,
                )
            )
        else:
            points.append(
                SweepPointOutcome(
                    budget=budget,
                    result=fresh[budget],
                    warm_started=warm_used[budget],
                    from_cache=False,
                )
            )
    return BudgetSweepOutcome(points=points)
