"""Finite continuous-time Markov chains (CTMCs).

A CTMC on states ``0..n-1`` is described by its generator (rate) matrix
``Q`` where ``Q[i, j] >= 0`` for ``i != j`` is the transition rate from
``i`` to ``j`` and each row sums to zero.  This module provides

* structural validation of generators,
* steady-state (stationary) distributions via a dense linear solve,
* transient distributions via uniformization (no matrix exponential
  needed, numerically robust),
* expected hitting times,
* uniformized discrete-time transition matrices, the bridge between the
  continuous-time models of the paper and discrete dynamic programming.

The CTMDP machinery in :mod:`repro.core.ctmdp` reuses the validation and
uniformization helpers defined here.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import ModelError

#: Tolerance used when checking that generator rows sum to zero.
ROW_SUM_TOL = 1e-8


def validate_generator(matrix: np.ndarray, tol: float = ROW_SUM_TOL) -> np.ndarray:
    """Validate and return a CTMC generator matrix.

    Parameters
    ----------
    matrix:
        Square array-like.  Off-diagonal entries must be non-negative and
        every row must sum to (numerically) zero.
    tol:
        Maximum tolerated absolute row sum.

    Returns
    -------
    numpy.ndarray
        A float copy of the validated generator.

    Raises
    ------
    ModelError
        If the matrix is not square, has a negative off-diagonal entry, or
        a row sum exceeding ``tol`` in magnitude.
    """
    q = np.asarray(matrix, dtype=float)
    if q.ndim != 2 or q.shape[0] != q.shape[1]:
        raise ModelError(f"generator must be square, got shape {q.shape}")
    n = q.shape[0]
    if n == 0:
        raise ModelError("generator must have at least one state")
    off_diag = q.copy()
    np.fill_diagonal(off_diag, 0.0)
    if (off_diag < -tol).any():
        i, j = np.argwhere(off_diag < -tol)[0]
        raise ModelError(
            f"negative off-diagonal rate q[{i},{j}]={q[i, j]:.3g}"
        )
    row_sums = q.sum(axis=1)
    worst = np.abs(row_sums).max()
    if worst > max(tol, tol * np.abs(q).max()):
        i = int(np.abs(row_sums).argmax())
        raise ModelError(
            f"generator row {i} sums to {row_sums[i]:.3g}, expected 0"
        )
    return q


def uniformization_rate(q: np.ndarray, slack: float = 1.0 + 1e-9) -> float:
    """Return a valid uniformization constant for generator ``q``.

    The constant is ``slack * max_i |q[i, i]|`` (at least a small positive
    number for the degenerate all-absorbing chain), guaranteeing that the
    uniformized matrix ``I + Q / rate`` is stochastic.
    """
    rate = float(np.abs(np.diag(q)).max()) * slack
    if rate <= 0.0:
        rate = 1.0
    return rate


def uniformize(q: np.ndarray, rate: Optional[float] = None) -> tuple[np.ndarray, float]:
    """Uniformize a generator into a DTMC transition matrix.

    Returns ``(P, rate)`` with ``P = I + Q / rate`` row-stochastic.  If
    ``rate`` is not given a safe one is chosen via
    :func:`uniformization_rate`.

    Raises
    ------
    ModelError
        If a caller-supplied ``rate`` is smaller than the largest exit
        rate, which would produce negative probabilities.
    """
    q = np.asarray(q, dtype=float)
    max_exit = float(np.abs(np.diag(q)).max())
    if rate is None:
        rate = uniformization_rate(q)
    elif rate < max_exit:
        raise ModelError(
            f"uniformization rate {rate:.3g} below max exit rate {max_exit:.3g}"
        )
    p = np.eye(q.shape[0]) + q / rate
    # Clip tiny negative round-off and renormalise each row.
    p = np.clip(p, 0.0, None)
    p /= p.sum(axis=1, keepdims=True)
    return p, rate


class ContinuousTimeMarkovChain:
    """A finite CTMC with analysis helpers.

    Parameters
    ----------
    generator:
        Square generator matrix; validated on construction.
    state_labels:
        Optional hashable labels for the states, used in reports.  Defaults
        to ``range(n)``.
    """

    def __init__(
        self,
        generator: np.ndarray,
        state_labels: Optional[Sequence] = None,
    ) -> None:
        self.generator = validate_generator(generator)
        n = self.generator.shape[0]
        if state_labels is None:
            state_labels = list(range(n))
        if len(state_labels) != n:
            raise ModelError(
                f"{len(state_labels)} labels supplied for {n} states"
            )
        self.state_labels = list(state_labels)
        self._index = {label: i for i, label in enumerate(self.state_labels)}
        if len(self._index) != n:
            raise ModelError("state labels must be unique")
        self._stationary: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def num_states(self) -> int:
        """Number of states in the chain."""
        return self.generator.shape[0]

    def index_of(self, label) -> int:
        """Return the matrix index of a state label."""
        try:
            return self._index[label]
        except KeyError:
            raise ModelError(f"unknown state label {label!r}") from None

    def exit_rate(self, label) -> float:
        """Total rate of leaving the given state."""
        i = self.index_of(label)
        return float(-self.generator[i, i])

    # ------------------------------------------------------------------
    # Steady state
    # ------------------------------------------------------------------

    def stationary_distribution(self) -> np.ndarray:
        """Solve ``pi Q = 0`` with ``sum(pi) = 1``.

        Uses a dense least-squares solve of the augmented system, which is
        robust for the moderately sized (up to a few thousand states)
        chains this library constructs.  The result is cached.

        Raises
        ------
        ModelError
            If the chain has no strictly positive stationary solution
            (e.g. it is reducible with multiple closed classes, making the
            solution non-unique).
        """
        if self._stationary is not None:
            return self._stationary
        n = self.num_states
        # pi Q = 0  and  pi 1 = 1  =>  A^T pi^T = b
        a = np.vstack([self.generator.T, np.ones((1, n))])
        b = np.zeros(n + 1)
        b[-1] = 1.0
        pi, residuals, rank, _ = np.linalg.lstsq(a, b, rcond=None)
        if rank < n:
            raise ModelError(
                "stationary distribution is not unique (reducible chain?)"
            )
        if (pi < -1e-8).any():
            raise ModelError("stationary solve produced negative probabilities")
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if not np.isfinite(total) or total <= 0:
            raise ModelError("stationary solve failed to normalise")
        pi /= total
        residual = float(np.abs(pi @ self.generator).max())
        if residual > 1e-6:
            raise ModelError(
                f"stationary residual {residual:.3g} too large; "
                "generator may be ill-conditioned"
            )
        self._stationary = pi
        return pi

    def stationary_probability(self, label) -> float:
        """Stationary probability of one state."""
        return float(self.stationary_distribution()[self.index_of(label)])

    def expected_stationary(self, values: Iterable[float]) -> float:
        """Expectation of a per-state value vector under the stationary law."""
        v = np.asarray(list(values), dtype=float)
        if v.shape[0] != self.num_states:
            raise ModelError(
                f"value vector has {v.shape[0]} entries for "
                f"{self.num_states} states"
            )
        return float(self.stationary_distribution() @ v)

    # ------------------------------------------------------------------
    # Transient analysis
    # ------------------------------------------------------------------

    def transient_distribution(
        self,
        initial: np.ndarray,
        t: float,
        tol: float = 1e-12,
        max_terms: int = 100_000,
    ) -> np.ndarray:
        """Distribution at time ``t`` from ``initial`` via uniformization.

        Evaluates ``initial @ expm(Q t)`` as a Poisson-weighted sum of
        powers of the uniformized DTMC, truncating once the remaining
        Poisson tail mass falls below ``tol``.
        """
        if t < 0:
            raise ModelError(f"time must be non-negative, got {t}")
        p0 = np.asarray(initial, dtype=float)
        if p0.shape != (self.num_states,):
            raise ModelError(
                f"initial distribution shape {p0.shape} does not match "
                f"{self.num_states} states"
            )
        if abs(p0.sum() - 1.0) > 1e-8 or (p0 < -1e-12).any():
            raise ModelError("initial distribution must be a probability vector")
        if t == 0.0:
            return p0.copy()
        p_mat, rate = uniformize(self.generator)
        lam = rate * t
        # Poisson(lam) weights computed in log space so large lam does not
        # underflow: log w_k = -lam + k log lam - log k!.
        result = np.zeros_like(p0)
        vec = p0.copy()
        log_w = -lam
        accumulated = 0.0
        k = 0
        while k < max_terms:
            w = np.exp(log_w)
            if w > 0.0:
                result += w * vec
                accumulated += w
            if accumulated > 1.0 - tol and k > lam:
                break
            k += 1
            vec = vec @ p_mat
            log_w += np.log(lam) - np.log(k)
        if accumulated <= 0.0:
            raise ModelError("uniformization failed to accumulate mass")
        return result / result.sum()

    # ------------------------------------------------------------------
    # Hitting times
    # ------------------------------------------------------------------

    def expected_hitting_times(self, targets: Iterable) -> np.ndarray:
        """Expected time to reach any state in ``targets`` from each state.

        Solves the standard first-passage linear system; entries for target
        states are zero.

        Raises
        ------
        ModelError
            If some state cannot reach the target set (singular system).
        """
        target_idx = {self.index_of(t) for t in targets}
        if not target_idx:
            raise ModelError("targets must be non-empty")
        n = self.num_states
        others = [i for i in range(n) if i not in target_idx]
        if not others:
            return np.zeros(n)
        sub = self.generator[np.ix_(others, others)]
        rhs = -np.ones(len(others))
        try:
            h_others = np.linalg.solve(sub, rhs)
        except np.linalg.LinAlgError as exc:
            raise ModelError(
                "hitting-time system is singular; target set may be "
                "unreachable from some state"
            ) from exc
        if (h_others < -1e-9).any():
            raise ModelError("negative hitting time computed; check generator")
        h = np.zeros(n)
        for pos, i in enumerate(others):
            h[i] = max(h_others[pos], 0.0)
        return h

    # ------------------------------------------------------------------
    # Uniformization
    # ------------------------------------------------------------------

    def uniformized(self, rate: Optional[float] = None) -> tuple[np.ndarray, float]:
        """Return ``(P, rate)`` for the uniformized discrete-time chain."""
        return uniformize(self.generator, rate)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContinuousTimeMarkovChain(num_states={self.num_states})"
        )
