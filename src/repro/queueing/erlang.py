"""Numerically stable Erlang-B and Erlang-C formulas.

Erlang-B gives the blocking probability of an ``M/M/c/c`` loss system and
is the classical yardstick for buffer/trunk provisioning; the paper's
"simple division of the space depending on traffic ratios" baseline is the
kind of rule these formulas replace.  The recursions below are the
standard stable forms (no factorials, no overflow).
"""

from __future__ import annotations

from repro.errors import ModelError


def erlang_b(offered_load: float, servers: int) -> float:
    """Erlang-B blocking probability ``B(E, c)``.

    Parameters
    ----------
    offered_load:
        Offered traffic ``E = lambda / mu`` in Erlangs, ``E >= 0``.
    servers:
        Number of servers/slots ``c >= 0``.

    Uses the stable recursion ``B(E, 0) = 1``,
    ``B(E, k) = E B(E, k-1) / (k + E B(E, k-1))``.
    """
    if offered_load < 0:
        raise ModelError(f"offered load must be >= 0, got {offered_load}")
    if servers < 0:
        raise ModelError(f"servers must be >= 0, got {servers}")
    b = 1.0
    for k in range(1, servers + 1):
        b = offered_load * b / (k + offered_load * b)
    return b


def erlang_c(offered_load: float, servers: int) -> float:
    """Erlang-C probability of waiting for an ``M/M/c`` delay system.

    Requires ``offered_load < servers`` for stability.
    """
    if servers < 1:
        raise ModelError(f"servers must be >= 1, got {servers}")
    if offered_load < 0:
        raise ModelError(f"offered load must be >= 0, got {offered_load}")
    if offered_load >= servers:
        raise ModelError(
            f"offered load {offered_load:.3g} must be below servers "
            f"{servers} for a stable delay system"
        )
    b = erlang_b(offered_load, servers)
    rho = offered_load / servers
    return b / (1.0 - rho + rho * b)


def erlang_b_inverse(offered_load: float, target_blocking: float) -> int:
    """Smallest number of servers with blocking below ``target_blocking``.

    This is the classic provisioning question and the analytic cousin of
    the buffer-sizing problem the paper solves via CTMDPs.
    """
    if not 0.0 < target_blocking < 1.0:
        raise ModelError(
            f"target blocking must be in (0, 1), got {target_blocking}"
        )
    if offered_load < 0:
        raise ModelError(f"offered load must be >= 0, got {offered_load}")
    if offered_load == 0:
        return 0
    b = 1.0
    k = 0
    # The recursion is monotone decreasing in k, so walk up until we pass
    # the target.  Guard with a generous iteration bound.
    max_servers = max(1000, int(10 * offered_load) + 100)
    while b > target_blocking:
        k += 1
        b = offered_load * b / (k + offered_load * b)
        if k > max_servers:
            raise ModelError(
                "erlang_b_inverse failed to converge; load too high?"
            )
    return k


def offered_load_for_blocking(servers: int, target_blocking: float, tol: float = 1e-10) -> float:
    """Largest offered load a ``c``-server loss system carries at the target blocking.

    Solved by bisection on the monotone map ``E -> B(E, c)``.
    """
    if servers < 1:
        raise ModelError(f"servers must be >= 1, got {servers}")
    if not 0.0 < target_blocking < 1.0:
        raise ModelError(
            f"target blocking must be in (0, 1), got {target_blocking}"
        )
    lo, hi = 0.0, float(servers)
    # Expand hi until blocking exceeds target.
    while erlang_b(hi, servers) < target_blocking:
        hi *= 2.0
        if hi > 1e12:
            raise ModelError("offered_load_for_blocking diverged")
    while hi - lo > tol * max(1.0, hi):
        mid = 0.5 * (lo + hi)
        if erlang_b(mid, servers) < target_blocking:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
