"""M/M/1/K and M/M/c/K loss queues.

These closed-form models serve three roles in the reproduction:

1. They validate the discrete-event simulator (:mod:`repro.sim`): a single
   processor on an otherwise idle bus is exactly an M/M/1/K queue, so the
   simulated blocking probability must match :meth:`MM1KQueue.blocking_probability`.
2. They power the *analytic-greedy* baseline sizing policy
   (:mod:`repro.policies.analytic`): marginal loss improvements per extra
   buffer slot are computed from these formulas.
3. They provide the per-client decomposed model used by
   :mod:`repro.core.bus_model` when the joint bus state space is too large.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.queueing.birth_death import BirthDeathChain


class MM1KQueue:
    """An M/M/1/K queue (Poisson arrivals, exponential service, K slots).

    ``K`` counts the total number of requests that can be present,
    including the one in service.  Arrivals finding ``K`` present are lost.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate ``lambda > 0``.
    service_rate:
        Exponential service rate ``mu > 0``.
    capacity:
        Total capacity ``K >= 1``.
    """

    def __init__(self, arrival_rate: float, service_rate: float, capacity: int) -> None:
        if arrival_rate <= 0:
            raise ModelError(f"arrival rate must be positive, got {arrival_rate}")
        if service_rate <= 0:
            raise ModelError(f"service rate must be positive, got {service_rate}")
        if capacity < 1:
            raise ModelError(f"capacity must be >= 1, got {capacity}")
        self.arrival_rate = float(arrival_rate)
        self.service_rate = float(service_rate)
        self.capacity = int(capacity)

    # ------------------------------------------------------------------

    @property
    def rho(self) -> float:
        """Offered load ``lambda / mu``."""
        return self.arrival_rate / self.service_rate

    def state_probabilities(self) -> np.ndarray:
        """Stationary distribution over ``0..K`` requests present.

        Uses the geometric closed form, with the ``rho == 1`` special case
        giving the uniform distribution.
        """
        k = self.capacity
        rho = self.rho
        if abs(rho - 1.0) < 1e-12:
            return np.full(k + 1, 1.0 / (k + 1))
        powers = rho ** np.arange(k + 1)
        return powers * (1.0 - rho) / (1.0 - rho ** (k + 1))

    def blocking_probability(self) -> float:
        """Probability an arrival is lost, ``P(N = K)`` (PASTA)."""
        return float(self.state_probabilities()[-1])

    def loss_rate(self) -> float:
        """Long-run rate of lost requests, ``lambda * P_block``."""
        return self.arrival_rate * self.blocking_probability()

    def carried_rate(self) -> float:
        """Rate of accepted (eventually served) requests."""
        return self.arrival_rate * (1.0 - self.blocking_probability())

    def utilization(self) -> float:
        """Fraction of time the server is busy, ``1 - P(N = 0)``."""
        return float(1.0 - self.state_probabilities()[0])

    def mean_number_in_system(self) -> float:
        """Expected number of requests present."""
        probs = self.state_probabilities()
        return float(probs @ np.arange(self.capacity + 1))

    def mean_sojourn_time(self) -> float:
        """Expected time an *accepted* request spends in the system.

        By Little's law applied to accepted traffic:
        ``L / lambda_carried``.
        """
        carried = self.carried_rate()
        if carried <= 0:
            raise ModelError("carried rate is zero; sojourn time undefined")
        return self.mean_number_in_system() / carried

    def mean_waiting_time(self) -> float:
        """Expected queueing delay (sojourn minus service) of accepted requests."""
        return max(self.mean_sojourn_time() - 1.0 / self.service_rate, 0.0)

    def to_birth_death(self) -> BirthDeathChain:
        """Equivalent birth-death chain on ``0..K``."""
        k = self.capacity
        return BirthDeathChain(
            birth_rates=[self.arrival_rate] * k,
            death_rates=[self.service_rate] * k,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MM1KQueue(lambda={self.arrival_rate:.3g}, "
            f"mu={self.service_rate:.3g}, K={self.capacity})"
        )


class MMcKQueue:
    """An M/M/c/K queue: ``c`` parallel servers, total capacity ``K >= c``.

    Used to model a bus that can carry several concurrent transactions
    (e.g. a crossbar-like interconnect layer in the extended experiments).
    """

    def __init__(
        self,
        arrival_rate: float,
        service_rate: float,
        servers: int,
        capacity: int,
    ) -> None:
        if arrival_rate <= 0:
            raise ModelError(f"arrival rate must be positive, got {arrival_rate}")
        if service_rate <= 0:
            raise ModelError(f"service rate must be positive, got {service_rate}")
        if servers < 1:
            raise ModelError(f"servers must be >= 1, got {servers}")
        if capacity < servers:
            raise ModelError(
                f"capacity {capacity} must be >= number of servers {servers}"
            )
        self.arrival_rate = float(arrival_rate)
        self.service_rate = float(service_rate)
        self.servers = int(servers)
        self.capacity = int(capacity)

    def to_birth_death(self) -> BirthDeathChain:
        """Birth-death representation with state-dependent service rates."""
        births = [self.arrival_rate] * self.capacity
        deaths = [
            min(i + 1, self.servers) * self.service_rate
            for i in range(self.capacity)
        ]
        return BirthDeathChain(births, deaths)

    def state_probabilities(self) -> np.ndarray:
        """Stationary distribution over ``0..K`` requests present."""
        return self.to_birth_death().stationary_distribution()

    def blocking_probability(self) -> float:
        """Probability an arrival is lost (PASTA)."""
        return float(self.state_probabilities()[-1])

    def loss_rate(self) -> float:
        """Long-run rate of lost requests."""
        return self.arrival_rate * self.blocking_probability()

    def carried_rate(self) -> float:
        """Rate of accepted requests."""
        return self.arrival_rate * (1.0 - self.blocking_probability())

    def mean_number_in_system(self) -> float:
        """Expected number of requests present."""
        probs = self.state_probabilities()
        return float(probs @ np.arange(self.capacity + 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MMcKQueue(lambda={self.arrival_rate:.3g}, "
            f"mu={self.service_rate:.3g}, c={self.servers}, K={self.capacity})"
        )
