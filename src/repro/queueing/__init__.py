"""Analytic continuous-time queueing substrate.

This subpackage provides the exact stochastic machinery the paper's models
are built from:

* :mod:`repro.queueing.markov_chain` — finite continuous-time Markov
  chains: generator validation, steady-state and transient analysis,
  uniformization.
* :mod:`repro.queueing.birth_death` — birth-death chains with the
  product-form stationary distribution.
* :mod:`repro.queueing.mm1k` — M/M/1/K and M/M/c/K loss queues with
  closed-form blocking, loss-rate, occupancy and sojourn metrics.
* :mod:`repro.queueing.erlang` — numerically stable Erlang-B / Erlang-C
  formulas and their inverses.
* :mod:`repro.queueing.network` — reduced-load (Erlang fixed point)
  approximation for loss networks and carried-traffic thinning used by the
  bridge-rate fixed point.

Everything here is deterministic and analytic; the discrete-event
counterpart lives in :mod:`repro.sim`.
"""

from repro.queueing.birth_death import BirthDeathChain
from repro.queueing.erlang import (
    erlang_b,
    erlang_b_inverse,
    erlang_c,
    offered_load_for_blocking,
)
from repro.queueing.markov_chain import ContinuousTimeMarkovChain
from repro.queueing.mg1 import (
    MG1Queue,
    buffer_for_loss_target,
    gim1_tail_decay,
    mg1k_loss_approximation,
)
from repro.queueing.mm1k import MM1KQueue, MMcKQueue
from repro.queueing.network import (
    LossNetwork,
    TandemLossChain,
    carried_rate,
    reduced_load_fixed_point,
)
from repro.queueing.phase_type import (
    MarkovianArrivalProcess,
    PhaseType,
    erlang_ph,
    exponential_ph,
    fit_two_moment_ph,
    hyperexponential_ph,
    mmpp2,
)

__all__ = [
    "BirthDeathChain",
    "ContinuousTimeMarkovChain",
    "LossNetwork",
    "MG1Queue",
    "MM1KQueue",
    "MMcKQueue",
    "MarkovianArrivalProcess",
    "PhaseType",
    "TandemLossChain",
    "buffer_for_loss_target",
    "carried_rate",
    "erlang_b",
    "erlang_b_inverse",
    "erlang_c",
    "erlang_ph",
    "exponential_ph",
    "fit_two_moment_ph",
    "gim1_tail_decay",
    "hyperexponential_ph",
    "mg1k_loss_approximation",
    "mmpp2",
    "offered_load_for_blocking",
    "reduced_load_fixed_point",
]
