"""Loss networks and carried-traffic fixed points.

When the paper splits a bridged architecture into subsystems, the arrival
rate into a bridge buffer is the *carried* (non-lost) rate of the upstream
subsystem's flows — i.e. the offered rate thinned by the upstream blocking
probability.  Iterating this thinning to convergence is exactly the
reduced-load (Erlang fixed point) approximation classical in loss
networks.  This module provides that machinery in a reusable form:

* :func:`carried_rate` — one thinning step,
* :class:`TandemLossChain` — a chain of finite queues with flow thinning,
* :class:`LossNetwork` / :func:`reduced_load_fixed_point` — general
  multi-link reduced-load iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.queueing.mm1k import MM1KQueue


def carried_rate(offered: float, blocking: float) -> float:
    """Thin an offered rate by a blocking probability.

    Simply ``offered * (1 - blocking)`` with validation; kept as a named
    function so the bridge fixed point reads declaratively.
    """
    if offered < 0:
        raise ModelError(f"offered rate must be >= 0, got {offered}")
    if not 0.0 <= blocking <= 1.0:
        raise ModelError(f"blocking must be in [0, 1], got {blocking}")
    return offered * (1.0 - blocking)


class TandemLossChain:
    """A tandem of M/M/1/K loss stages with flow thinning.

    Stage ``i`` receives the carried traffic of stage ``i - 1``.  This is
    the simplest analytic model of a chain of bridges (e.g. processor ->
    bus b -> bridge b2 -> bus f in the paper's Figure 1) and is used to
    sanity-check the subsystem fixed point in tests.

    Parameters
    ----------
    arrival_rate:
        External Poisson rate offered to the first stage.
    service_rates:
        Service rate per stage.
    capacities:
        Buffer capacity per stage (same length as ``service_rates``).
    """

    def __init__(
        self,
        arrival_rate: float,
        service_rates: Sequence[float],
        capacities: Sequence[int],
    ) -> None:
        if len(service_rates) != len(capacities):
            raise ModelError(
                f"{len(service_rates)} service rates vs "
                f"{len(capacities)} capacities"
            )
        if len(service_rates) == 0:
            raise ModelError("tandem must have at least one stage")
        if arrival_rate <= 0:
            raise ModelError(f"arrival rate must be positive, got {arrival_rate}")
        self.arrival_rate = float(arrival_rate)
        self.service_rates = [float(m) for m in service_rates]
        self.capacities = [int(k) for k in capacities]

    def stage_metrics(self) -> List[dict]:
        """Per-stage offered/carried/loss metrics after thinning.

        Returns a list of dicts with keys ``offered``, ``blocking``,
        ``carried`` and ``loss_rate``.
        """
        metrics: List[dict] = []
        offered = self.arrival_rate
        for mu, cap in zip(self.service_rates, self.capacities):
            if offered <= 0:
                metrics.append(
                    {"offered": 0.0, "blocking": 0.0, "carried": 0.0, "loss_rate": 0.0}
                )
                continue
            queue = MM1KQueue(offered, mu, cap)
            blocking = queue.blocking_probability()
            carried = carried_rate(offered, blocking)
            metrics.append(
                {
                    "offered": offered,
                    "blocking": blocking,
                    "carried": carried,
                    "loss_rate": offered - carried,
                }
            )
            offered = carried
        return metrics

    def end_to_end_carried(self) -> float:
        """Traffic rate surviving every stage."""
        metrics = self.stage_metrics()
        return metrics[-1]["carried"]

    def total_loss_rate(self) -> float:
        """Total rate of requests lost anywhere in the chain."""
        return self.arrival_rate - self.end_to_end_carried()


@dataclass
class LossNetwork:
    """A loss network for the reduced-load approximation.

    Parameters
    ----------
    link_capacities:
        Mapping from link name to integer capacity (buffer slots).
    link_service_rates:
        Mapping from link name to service rate.
    routes:
        Mapping from flow name to the ordered list of links it traverses.
    offered_rates:
        Mapping from flow name to its external Poisson rate.
    """

    link_capacities: Dict[str, int]
    link_service_rates: Dict[str, float]
    routes: Dict[str, List[str]]
    offered_rates: Dict[str, float]
    _blockings: Dict[str, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for flow, route in self.routes.items():
            if not route:
                raise ModelError(f"flow {flow!r} has an empty route")
            for link in route:
                if link not in self.link_capacities:
                    raise ModelError(
                        f"flow {flow!r} references unknown link {link!r}"
                    )
        for flow in self.offered_rates:
            if flow not in self.routes:
                raise ModelError(f"offered rate for unknown flow {flow!r}")
        for link, cap in self.link_capacities.items():
            if cap < 1:
                raise ModelError(f"link {link!r} capacity must be >= 1")
            if self.link_service_rates.get(link, 0.0) <= 0:
                raise ModelError(f"link {link!r} needs a positive service rate")

    def link_offered_load(self, blockings: Dict[str, float]) -> Dict[str, float]:
        """Offered rate at each link given current per-link blockings.

        A flow reaching link ``l`` has been thinned by every *earlier* link
        on its route (the standard independence approximation).
        """
        offered: Dict[str, float] = {link: 0.0 for link in self.link_capacities}
        for flow, route in self.routes.items():
            rate = self.offered_rates.get(flow, 0.0)
            for link in route:
                offered[link] += rate
                rate = carried_rate(rate, blockings.get(link, 0.0))
        return offered

    def solve(self, tol: float = 1e-10, max_iter: int = 10_000, damping: float = 0.5) -> Dict[str, float]:
        """Iterate the reduced-load fixed point; returns per-link blocking."""
        blockings = {link: 0.0 for link in self.link_capacities}
        for _ in range(max_iter):
            offered = self.link_offered_load(blockings)
            new_blockings = {}
            for link, rate in offered.items():
                if rate <= 0:
                    new_blockings[link] = 0.0
                    continue
                queue = MM1KQueue(
                    rate, self.link_service_rates[link], self.link_capacities[link]
                )
                new_blockings[link] = queue.blocking_probability()
            delta = max(
                abs(new_blockings[link] - blockings[link])
                for link in self.link_capacities
            )
            blockings = {
                link: damping * new_blockings[link] + (1.0 - damping) * blockings[link]
                for link in self.link_capacities
            }
            if delta < tol:
                break
        else:
            raise ModelError("reduced-load fixed point did not converge")
        self._blockings = blockings
        return blockings

    def flow_loss_rates(self) -> Dict[str, float]:
        """Per-flow loss rate at the converged fixed point."""
        if not self._blockings:
            self.solve()
        losses: Dict[str, float] = {}
        for flow, route in self.routes.items():
            rate = self.offered_rates.get(flow, 0.0)
            survive = rate
            for link in route:
                survive = carried_rate(survive, self._blockings[link])
            losses[flow] = rate - survive
        return losses


def reduced_load_fixed_point(
    offered: Sequence[float],
    update: Callable[[np.ndarray], np.ndarray],
    tol: float = 1e-10,
    max_iter: int = 10_000,
    damping: float = 0.5,
) -> Tuple[np.ndarray, int]:
    """Generic damped fixed-point iteration used by the bridge-rate solver.

    Parameters
    ----------
    offered:
        Initial rate vector.
    update:
        Maps the current rate vector to the next one (e.g. "solve every
        subsystem LP, return the recomputed bridge rates").
    damping:
        Convex mixing weight on the new iterate, in ``(0, 1]``.

    Returns
    -------
    (rates, iterations)
        The converged vector and the number of iterations used.

    Raises
    ------
    ModelError
        If convergence is not reached within ``max_iter`` iterations.
    """
    if not 0.0 < damping <= 1.0:
        raise ModelError(f"damping must be in (0, 1], got {damping}")
    rates = np.asarray(offered, dtype=float).copy()
    for iteration in range(1, max_iter + 1):
        new_rates = np.asarray(update(rates), dtype=float)
        if new_rates.shape != rates.shape:
            raise ModelError(
                f"update changed vector shape {rates.shape} -> {new_rates.shape}"
            )
        delta = float(np.abs(new_rates - rates).max()) if rates.size else 0.0
        rates = damping * new_rates + (1.0 - damping) * rates
        if delta < tol:
            return rates, iteration
    raise ModelError(
        f"fixed point did not converge within {max_iter} iterations"
    )
