"""M/G/1 and M/G/1/K approximations.

When traffic profiling (the paper's suggested improvement) produces
non-exponential service or interarrival statistics, the exact CTMDP
machinery no longer applies directly.  These classical results provide
the analytic yardsticks the extension experiments compare against:

* Pollaczek-Khinchine mean waiting time for M/G/1,
* the two-moment loss approximation for M/G/1/K (Gelenbe-style
  diffusion/interpolation between M/M/1/K and M/D/1/K behaviour),
* a GI/M/1-style geometric-tail estimate for bursty arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.queueing.mm1k import MM1KQueue


@dataclass(frozen=True)
class MG1Queue:
    """An M/G/1 queue described by its service-time moments.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate.
    service_mean:
        Mean service time ``E[S]``.
    service_scv:
        Squared coefficient of variation of service times
        (1 = exponential, 0 = deterministic, > 1 = heavy-tailed).
    """

    arrival_rate: float
    service_mean: float
    service_scv: float

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ModelError(
                f"arrival rate must be > 0, got {self.arrival_rate}"
            )
        if self.service_mean <= 0:
            raise ModelError(
                f"service mean must be > 0, got {self.service_mean}"
            )
        if self.service_scv < 0:
            raise ModelError(
                f"service SCV must be >= 0, got {self.service_scv}"
            )

    @property
    def rho(self) -> float:
        """Utilisation ``lambda E[S]``."""
        return self.arrival_rate * self.service_mean

    def mean_waiting_time(self) -> float:
        """Pollaczek-Khinchine: ``W = rho E[S] (1 + c^2) / (2 (1 - rho))``.

        Requires ``rho < 1``.
        """
        rho = self.rho
        if rho >= 1.0:
            raise ModelError(
                f"M/G/1 waiting time requires rho < 1, got {rho:.3f}"
            )
        return (
            rho * self.service_mean * (1.0 + self.service_scv)
            / (2.0 * (1.0 - rho))
        )

    def mean_number_in_system(self) -> float:
        """Little's law on sojourn time."""
        return self.arrival_rate * (
            self.mean_waiting_time() + self.service_mean
        )


def mg1k_loss_approximation(
    arrival_rate: float,
    service_mean: float,
    service_scv: float,
    capacity: int,
) -> float:
    """Two-moment blocking approximation for M/G/1/K.

    Interpolates the exact M/M/1/K blocking through the effective-load
    transformation ``rho_eff = rho^(2 / (1 + c^2))`` — exact at
    ``c^2 = 1``, asymptotically correct for ``c^2 -> 0`` (lighter
    blocking for smoother service) and conservative for bursty service.
    This is the standard engineering interpolation used when only two
    moments of the profiled service time are trusted.
    """
    if capacity < 1:
        raise ModelError(f"capacity must be >= 1, got {capacity}")
    if arrival_rate <= 0 or service_mean <= 0:
        raise ModelError("arrival rate and service mean must be > 0")
    if service_scv < 0:
        raise ModelError(f"service SCV must be >= 0, got {service_scv}")
    rho = arrival_rate * service_mean
    exponent = 2.0 / (1.0 + service_scv) if service_scv >= 0 else 2.0
    rho_eff = rho**exponent
    # Build an equivalent M/M/1/K at the effective load.
    queue = MM1KQueue(rho_eff, 1.0, capacity)
    return queue.blocking_probability()


def gim1_tail_decay(arrival_scv: float, utilisation: float) -> float:
    """Geometric queue-tail decay rate for GI/M/1 (two-moment estimate).

    For GI/M/1 the stationary queue length at arrivals is geometric with
    parameter ``sigma`` solving ``sigma = A*(mu(1 - sigma))`` where
    ``A*`` is the interarrival LST.  The two-moment estimate
    ``sigma ~ rho^(2 / (1 + c_a^2))`` (Kraemer-Langenbach-Belz flavour)
    avoids needing the full distribution: bursty arrivals
    (``c_a^2 > 1``) slow the decay, smooth arrivals accelerate it.

    Used by the burstiness extension to predict how buffer requirements
    scale with measured arrival variability.
    """
    if not 0.0 < utilisation < 1.0:
        raise ModelError(
            f"utilisation must be in (0, 1), got {utilisation}"
        )
    if arrival_scv < 0:
        raise ModelError(f"arrival SCV must be >= 0, got {arrival_scv}")
    return float(utilisation ** (2.0 / (1.0 + arrival_scv)))


def buffer_for_loss_target(
    arrival_rate: float,
    service_rate: float,
    arrival_scv: float,
    loss_target: float,
    max_buffer: int = 10_000,
) -> int:
    """Smallest buffer meeting a loss target under bursty arrivals.

    Combines the GI/M/1 geometric tail with the loss-queue truncation:
    blocking at capacity ``k`` is approximately
    ``(1 - sigma) sigma^k / (1 - sigma^(k+1))``.
    """
    if not 0.0 < loss_target < 1.0:
        raise ModelError(
            f"loss target must be in (0, 1), got {loss_target}"
        )
    if service_rate <= 0 or arrival_rate <= 0:
        raise ModelError("rates must be > 0")
    rho = arrival_rate / service_rate
    if rho >= 1.0:
        raise ModelError(
            f"buffer_for_loss_target requires rho < 1, got {rho:.3f}"
        )
    sigma = gim1_tail_decay(arrival_scv, rho)
    for k in range(1, max_buffer + 1):
        blocking = (1.0 - sigma) * sigma**k / (1.0 - sigma ** (k + 1))
        if blocking <= loss_target:
            return k
    raise ModelError(
        f"no buffer up to {max_buffer} meets loss target {loss_target}"
    )
