"""Birth-death chains with product-form stationary distributions.

A birth-death chain on ``0..K`` moves up with rate ``birth[i]`` (from state
``i`` to ``i+1``) and down with rate ``death[i]`` (from ``i`` to ``i-1``).
Every finite-buffer queue in this library — each processor's buffer viewed
in isolation, and each decomposed per-client model in
:mod:`repro.core.bus_model` — is a birth-death chain, so this module is the
workhorse of the analytic side.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ModelError
from repro.queueing.markov_chain import ContinuousTimeMarkovChain


class BirthDeathChain:
    """A finite birth-death chain on states ``0..K``.

    Parameters
    ----------
    birth_rates:
        ``birth_rates[i]`` is the rate from state ``i`` to ``i + 1``;
        length ``K`` (no birth out of state ``K``).
    death_rates:
        ``death_rates[i]`` is the rate from state ``i + 1`` to ``i``;
        length ``K``.  All death rates must be strictly positive so the
        chain is irreducible whenever the corresponding birth rate chain
        reaches that level.
    """

    def __init__(
        self,
        birth_rates: Sequence[float],
        death_rates: Sequence[float],
    ) -> None:
        births = np.asarray(birth_rates, dtype=float)
        deaths = np.asarray(death_rates, dtype=float)
        if births.ndim != 1 or deaths.ndim != 1:
            raise ModelError("rates must be one-dimensional sequences")
        if births.shape != deaths.shape:
            raise ModelError(
                f"{births.shape[0]} birth rates vs {deaths.shape[0]} death rates"
            )
        if births.shape[0] == 0:
            raise ModelError("chain must have at least two states (K >= 1)")
        if (births < 0).any():
            raise ModelError("birth rates must be non-negative")
        if (deaths <= 0).any():
            raise ModelError("death rates must be strictly positive")
        self.birth_rates = births
        self.death_rates = deaths
        self._pi: np.ndarray | None = None

    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """The top state ``K`` (number of levels above zero)."""
        return int(self.birth_rates.shape[0])

    @property
    def num_states(self) -> int:
        """Number of states, ``K + 1``."""
        return self.capacity + 1

    # ------------------------------------------------------------------

    def stationary_distribution(self) -> np.ndarray:
        """Product-form stationary law.

        ``pi[i] ∝ prod_{j<i} birth[j] / death[j]`` — computed in a
        numerically safe way by normalising against the running maximum in
        log space when rates are extreme.
        """
        if self._pi is not None:
            return self._pi
        k = self.capacity
        log_terms = np.zeros(k + 1)
        with np.errstate(divide="ignore"):
            ratios = np.log(self.birth_rates) - np.log(self.death_rates)
        log_terms[1:] = np.cumsum(ratios)
        # birth rate 0 yields -inf log which correctly zeroes higher states.
        log_terms -= log_terms[np.isfinite(log_terms)].max()
        pi = np.exp(log_terms)
        pi[~np.isfinite(pi)] = 0.0
        pi /= pi.sum()
        self._pi = pi
        return pi

    def blocking_probability(self) -> float:
        """Probability of being in the top state ``K``."""
        return float(self.stationary_distribution()[-1])

    def mean_level(self) -> float:
        """Expected state (mean queue length for a queueing interpretation)."""
        pi = self.stationary_distribution()
        return float(pi @ np.arange(self.num_states))

    def level_variance(self) -> float:
        """Variance of the stationary level."""
        pi = self.stationary_distribution()
        levels = np.arange(self.num_states)
        mean = pi @ levels
        return float(pi @ (levels - mean) ** 2)

    def tail_probability(self, level: int) -> float:
        """``P(state >= level)`` under the stationary law."""
        if level <= 0:
            return 1.0
        if level > self.capacity:
            return 0.0
        return float(self.stationary_distribution()[level:].sum())

    def quantile(self, prob: float) -> int:
        """Smallest level ``l`` with ``P(state <= l) >= prob``."""
        if not 0.0 < prob <= 1.0:
            raise ModelError(f"prob must be in (0, 1], got {prob}")
        cdf = np.cumsum(self.stationary_distribution())
        return int(np.searchsorted(cdf, prob - 1e-12))

    def throughput(self) -> float:
        """Expected long-run rate of *accepted* births.

        For a loss queue this is the carried rate
        ``sum_i pi[i] * birth[i]`` (births are only possible below ``K``).
        """
        pi = self.stationary_distribution()
        return float(pi[:-1] @ self.birth_rates)

    def loss_rate(self) -> float:
        """Long-run rate of blocked births for a constant arrival stream.

        Only meaningful when the birth rate represents a Poisson arrival
        stream that continues to arrive (and is lost) in state ``K``; the
        lost rate is ``pi[K] * birth[K-1]`` extended with the convention
        that arrivals in state ``K`` occur at the same rate as the last
        birth rate.
        """
        pi = self.stationary_distribution()
        return float(pi[-1] * self.birth_rates[-1])

    # ------------------------------------------------------------------

    def to_ctmc(self) -> ContinuousTimeMarkovChain:
        """Materialise the full generator as a
        :class:`~repro.queueing.markov_chain.ContinuousTimeMarkovChain`."""
        n = self.num_states
        q = np.zeros((n, n))
        for i in range(self.capacity):
            q[i, i + 1] = self.birth_rates[i]
            q[i + 1, i] = self.death_rates[i]
        np.fill_diagonal(q, 0.0)
        np.fill_diagonal(q, -q.sum(axis=1))
        return ContinuousTimeMarkovChain(q)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BirthDeathChain(K={self.capacity})"
