"""Phase-type distributions and Markovian arrival processes.

The paper's conclusion points at "better profiling" of traffic as the
path to closing the gap between modelled and observed losses.  This
module provides the classical machinery for that: phase-type (PH)
service/interarrival distributions and Markovian arrival processes
(MAPs), which can match empirical traces far better than plain
exponentials while keeping everything analytically tractable
(matrix-geometric methods).

Used by the burstiness extension experiment
(:mod:`repro.experiments.extensions`) to quantify how far the Markovian
sizing generalises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True)
class PhaseType:
    """A continuous phase-type distribution ``PH(alpha, S)``.

    ``alpha`` is the initial phase distribution (row vector, may be
    sub-stochastic if there is an atom at zero) and ``S`` the defective
    generator among transient phases; the exit-rate vector is
    ``s = -S @ 1``.
    """

    alpha: np.ndarray
    s_matrix: np.ndarray

    def __post_init__(self) -> None:
        alpha = np.asarray(self.alpha, dtype=float)
        s = np.asarray(self.s_matrix, dtype=float)
        if alpha.ndim != 1:
            raise ModelError("alpha must be a vector")
        if s.ndim != 2 or s.shape[0] != s.shape[1]:
            raise ModelError("S must be square")
        if s.shape[0] != alpha.shape[0]:
            raise ModelError(
                f"alpha has {alpha.shape[0]} phases, S has {s.shape[0]}"
            )
        if (alpha < -1e-12).any() or alpha.sum() > 1.0 + 1e-9:
            raise ModelError("alpha must be sub-stochastic and non-negative")
        off = s.copy()
        np.fill_diagonal(off, 0.0)
        if (off < -1e-12).any():
            raise ModelError("S off-diagonal entries must be >= 0")
        exit_rates = -s.sum(axis=1)
        if (exit_rates < -1e-9).any():
            raise ModelError("S row sums must be <= 0")
        if (np.diag(s) >= 0).any():
            raise ModelError("S diagonal entries must be negative")
        object.__setattr__(self, "alpha", alpha)
        object.__setattr__(self, "s_matrix", s)

    # ------------------------------------------------------------------

    @property
    def num_phases(self) -> int:
        """Number of transient phases."""
        return self.alpha.shape[0]

    @property
    def exit_vector(self) -> np.ndarray:
        """Absorption rates ``s = -S 1``."""
        return -self.s_matrix.sum(axis=1)

    def mean(self) -> float:
        """``E[X] = alpha (-S)^{-1} 1``."""
        ones = np.ones(self.num_phases)
        return float(self.alpha @ np.linalg.solve(-self.s_matrix, ones))

    def moment(self, k: int) -> float:
        """``E[X^k] = k! alpha (-S)^{-k} 1``."""
        if k < 1:
            raise ModelError(f"moment order must be >= 1, got {k}")
        ones = np.ones(self.num_phases)
        vec = ones
        for _ in range(k):
            vec = np.linalg.solve(-self.s_matrix, vec)
        import math

        return float(math.factorial(k) * (self.alpha @ vec))

    def variance(self) -> float:
        """``Var[X]``."""
        m1 = self.mean()
        return self.moment(2) - m1 * m1

    def scv(self) -> float:
        """Squared coefficient of variation (1 for exponential)."""
        m1 = self.mean()
        if m1 <= 0:
            raise ModelError("mean must be positive for an SCV")
        return self.variance() / (m1 * m1)

    def cdf(self, x: float) -> float:
        """``P(X <= x) = 1 - alpha exp(S x) 1``."""
        from scipy.linalg import expm

        if x < 0:
            return 0.0
        ones = np.ones(self.num_phases)
        return float(1.0 - self.alpha @ expm(self.s_matrix * x) @ ones)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw samples by simulating the absorbing chain."""
        if count < 0:
            raise ModelError(f"count must be >= 0, got {count}")
        exit_rates = self.exit_vector
        n = self.num_phases
        total_rates = -np.diag(self.s_matrix)
        jump = self.s_matrix.copy()
        np.fill_diagonal(jump, 0.0)
        samples = np.empty(count)
        alpha_total = self.alpha.sum()
        for i in range(count):
            t = 0.0
            if rng.random() > alpha_total:
                samples[i] = 0.0  # atom at zero from defective alpha
                continue
            phase = int(rng.choice(n, p=self.alpha / alpha_total))
            while True:
                rate = total_rates[phase]
                t += rng.exponential(1.0 / rate)
                p_exit = exit_rates[phase] / rate
                if rng.random() < p_exit:
                    break
                probs = jump[phase] / jump[phase].sum()
                phase = int(rng.choice(n, p=probs))
            samples[i] = t
        return samples


def exponential_ph(rate: float) -> PhaseType:
    """Exponential distribution as a one-phase PH."""
    if rate <= 0:
        raise ModelError(f"rate must be > 0, got {rate}")
    return PhaseType(np.array([1.0]), np.array([[-rate]]))


def erlang_ph(stages: int, rate_per_stage: float) -> PhaseType:
    """Erlang-k distribution (SCV = 1/k < 1: smoother than exponential)."""
    if stages < 1:
        raise ModelError(f"stages must be >= 1, got {stages}")
    if rate_per_stage <= 0:
        raise ModelError(f"rate must be > 0, got {rate_per_stage}")
    s = np.zeros((stages, stages))
    for i in range(stages):
        s[i, i] = -rate_per_stage
        if i + 1 < stages:
            s[i, i + 1] = rate_per_stage
    alpha = np.zeros(stages)
    alpha[0] = 1.0
    return PhaseType(alpha, s)


def hyperexponential_ph(
    rates: Tuple[float, ...], probs: Tuple[float, ...]
) -> PhaseType:
    """Hyperexponential distribution (SCV > 1: burstier than exponential)."""
    rates_arr = np.asarray(rates, dtype=float)
    probs_arr = np.asarray(probs, dtype=float)
    if rates_arr.shape != probs_arr.shape or rates_arr.ndim != 1:
        raise ModelError("rates and probs must be equal-length vectors")
    if (rates_arr <= 0).any():
        raise ModelError("all rates must be > 0")
    if (probs_arr < 0).any() or abs(probs_arr.sum() - 1.0) > 1e-9:
        raise ModelError("probs must be a probability vector")
    s = np.diag(-rates_arr)
    return PhaseType(probs_arr, s)


def fit_two_moment_ph(mean: float, scv: float) -> PhaseType:
    """Classic two-moment PH fit.

    * ``scv >= 1``: two-phase hyperexponential with balanced means,
    * ``1/k <= scv < 1``: Erlang-k with ``k = ceil(1 / scv)`` (matching
      the mean exactly; the SCV is matched as closely as an integer
      stage count allows).

    This is the standard workhorse for "profiling" measured traffic into
    an analytically tractable model.
    """
    if mean <= 0:
        raise ModelError(f"mean must be > 0, got {mean}")
    if scv <= 0:
        raise ModelError(f"scv must be > 0, got {scv}")
    if scv >= 1.0:
        # Balanced-means H2 fit.
        p = 0.5 * (1.0 + np.sqrt((scv - 1.0) / (scv + 1.0)))
        rate1 = 2.0 * p / mean
        rate2 = 2.0 * (1.0 - p) / mean
        return hyperexponential_ph((rate1, rate2), (p, 1.0 - p))
    stages = int(np.ceil(1.0 / scv))
    return erlang_ph(stages, stages / mean)


@dataclass(frozen=True)
class MarkovianArrivalProcess:
    """A MAP ``(D0, D1)``: hidden-phase modulated arrivals.

    ``D0`` holds phase transitions without arrivals, ``D1`` those that
    emit an arrival; ``D0 + D1`` is the phase-process generator.
    """

    d0: np.ndarray
    d1: np.ndarray

    def __post_init__(self) -> None:
        d0 = np.asarray(self.d0, dtype=float)
        d1 = np.asarray(self.d1, dtype=float)
        if d0.shape != d1.shape or d0.ndim != 2 or d0.shape[0] != d0.shape[1]:
            raise ModelError("D0 and D1 must be equal-size square matrices")
        if (d1 < -1e-12).any():
            raise ModelError("D1 entries must be >= 0")
        off = d0.copy()
        np.fill_diagonal(off, 0.0)
        if (off < -1e-12).any():
            raise ModelError("D0 off-diagonal entries must be >= 0")
        total = d0 + d1
        if np.abs(total.sum(axis=1)).max() > 1e-8:
            raise ModelError("(D0 + D1) rows must sum to zero")
        object.__setattr__(self, "d0", d0)
        object.__setattr__(self, "d1", d1)

    @property
    def num_phases(self) -> int:
        """Number of modulating phases."""
        return self.d0.shape[0]

    def phase_stationary(self) -> np.ndarray:
        """Stationary distribution of the phase process."""
        from repro.queueing.markov_chain import ContinuousTimeMarkovChain

        chain = ContinuousTimeMarkovChain(self.d0 + self.d1)
        return chain.stationary_distribution()

    def arrival_rate(self) -> float:
        """Long-run arrival rate ``pi D1 1``."""
        pi = self.phase_stationary()
        return float(pi @ self.d1 @ np.ones(self.num_phases))

    def sample_interarrivals(
        self, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        """Simulate interarrival times of the MAP."""
        if count < 0:
            raise ModelError(f"count must be >= 0, got {count}")
        n = self.num_phases
        pi = self.phase_stationary()
        phase = int(rng.choice(n, p=pi))
        gaps = np.empty(count)
        total_rates = -np.diag(self.d0)
        for i in range(count):
            elapsed = 0.0
            while True:
                rate = total_rates[phase]
                elapsed += rng.exponential(1.0 / rate)
                arrival_prob = self.d1[phase].sum() / rate
                if rng.random() < arrival_prob:
                    probs = self.d1[phase] / self.d1[phase].sum()
                    phase = int(rng.choice(n, p=probs))
                    break
                row = self.d0[phase].copy()
                row[phase] = 0.0
                if row.sum() <= 0:
                    continue
                probs = row / row.sum()
                phase = int(rng.choice(n, p=probs))
            gaps[i] = elapsed
        return gaps


def mmpp2(
    rate_high: float, rate_low: float, switch_to_low: float, switch_to_high: float
) -> MarkovianArrivalProcess:
    """Two-state Markov-modulated Poisson process (the classic MMPP(2))."""
    for value, name in (
        (rate_high, "rate_high"),
        (rate_low, "rate_low"),
        (switch_to_low, "switch_to_low"),
        (switch_to_high, "switch_to_high"),
    ):
        if value <= 0:
            raise ModelError(f"{name} must be > 0, got {value}")
    d0 = np.array(
        [
            [-(rate_high + switch_to_low), switch_to_low],
            [switch_to_high, -(rate_low + switch_to_high)],
        ]
    )
    d1 = np.array([[rate_high, 0.0], [0.0, rate_low]])
    return MarkovianArrivalProcess(d0, d1)
