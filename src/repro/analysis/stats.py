"""Replication statistics helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import ReproError


@dataclass(frozen=True)
class Summary:
    """Mean, standard deviation and sample size of a metric."""

    mean: float
    std: float
    count: int


def summarise(values: Sequence[float]) -> Summary:
    """Summary statistics of a sample."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ReproError("cannot summarise an empty sample")
    std = float(np.std(data, ddof=1)) if data.size > 1 else 0.0
    return Summary(mean=float(data.mean()), std=std, count=int(data.size))


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Student-t confidence interval for the mean of a sample."""
    if not 0.0 < confidence < 1.0:
        raise ReproError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ReproError("cannot build a CI from an empty sample")
    mean = float(data.mean())
    if data.size == 1:
        return (mean, mean)
    sem = float(np.std(data, ddof=1) / np.sqrt(data.size))
    if sem == 0.0:
        return (mean, mean)
    half = float(
        scipy_stats.t.ppf(0.5 + confidence / 2.0, df=data.size - 1) * sem
    )
    return (mean - half, mean + half)


def relative_improvement(baseline: float, improved: float) -> float:
    """Fractional reduction: ``(baseline - improved) / baseline``.

    The paper's "overall loss of the system decreases by about 20%"
    corresponds to a value of ~0.2 with the constant-sizing baseline.
    """
    if baseline <= 0:
        raise ReproError(
            f"baseline must be positive for a relative improvement, "
            f"got {baseline}"
        )
    return (baseline - improved) / baseline
