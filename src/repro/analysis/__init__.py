"""Loss statistics, sweeps and report rendering for the experiments."""

from repro.analysis.batch_means import (
    BatchMeansEstimate,
    batch_means,
    loss_rate_batch_means,
)
from repro.analysis.loss import PolicyComparison, compare_policies
from repro.analysis.report import bar_chart, format_table
from repro.analysis.stats import (
    confidence_interval,
    relative_improvement,
    summarise,
)
from repro.analysis.sweep import budget_sweep, load_sweep
from repro.analysis.validation import (
    ValidationPoint,
    full_validation_suite,
)

__all__ = [
    "BatchMeansEstimate",
    "PolicyComparison",
    "ValidationPoint",
    "bar_chart",
    "batch_means",
    "budget_sweep",
    "compare_policies",
    "confidence_interval",
    "format_table",
    "full_validation_suite",
    "load_sweep",
    "loss_rate_batch_means",
    "relative_improvement",
    "summarise",
]
