"""Parameter sweeps: budget (Table 1) and load (ablation).

Both sweeps accept an :class:`~repro.exec.ExecutionContext`, which fans
the replication batches of every point over a process pool and memoises
them in the result cache.  CTMDP-policy *sizing* warm starts across a
budget axis live one level up, in :func:`repro.exec.sweeps.sweep_budgets`
(these helpers size through arbitrary policy objects, which have no
warm-start state to chain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.loss import PolicyComparison, compare_policies
from repro.arch.topology import Topology
from repro.core.sizing import BufferAllocation
from repro.errors import ReproError
from repro.exec import ExecutionContext


@dataclass
class SweepPoint:
    """One sweep configuration and its comparison results."""

    parameter: float
    comparison: PolicyComparison


def budget_sweep(
    topology: Topology,
    budgets: Sequence[int],
    policy_factories: Dict[str, Callable[[], object]],
    replications: int = 10,
    duration: float = 3_000.0,
    base_seed: int = 0,
    context: Optional[ExecutionContext] = None,
) -> List[SweepPoint]:
    """Re-size and re-simulate at several total budgets (Table 1's axis).

    ``policy_factories`` maps policy names to zero-argument callables
    returning fresh policy objects (fresh because CTMDP sizing caches its
    last result).
    """
    if not budgets:
        raise ReproError("budget sweep needs at least one budget")
    points: List[SweepPoint] = []
    for budget in budgets:
        allocations: Dict[str, BufferAllocation] = {}
        for name, factory in policy_factories.items():
            policy = factory()
            allocations[name] = policy.allocate(topology, int(budget))
        comparison = compare_policies(
            topology,
            allocations,
            replications=replications,
            duration=duration,
            base_seed=base_seed,
            context=context,
        )
        points.append(SweepPoint(parameter=float(budget), comparison=comparison))
    return points


def load_sweep(
    topology_factory: Callable[[float], Topology],
    load_scales: Sequence[float],
    budget: int,
    policy_factories: Dict[str, Callable[[], object]],
    replications: int = 5,
    duration: float = 2_000.0,
    base_seed: int = 0,
    context: Optional[ExecutionContext] = None,
) -> List[SweepPoint]:
    """Sweep offered load at a fixed budget (policy-robustness ablation)."""
    if not load_scales:
        raise ReproError("load sweep needs at least one scale")
    points: List[SweepPoint] = []
    for scale in load_scales:
        topology = topology_factory(float(scale))
        allocations = {
            name: factory().allocate(topology, budget)
            for name, factory in policy_factories.items()
        }
        comparison = compare_policies(
            topology,
            allocations,
            replications=replications,
            duration=duration,
            base_seed=base_seed,
            context=context,
        )
        points.append(SweepPoint(parameter=float(scale), comparison=comparison))
    return points
