"""Batch-means confidence intervals for steady-state simulation output.

Independent replications (the paper's "10 iterations") pay a warmup per
replication; the batch-means method instead slices *one* long run into
batches and treats batch averages as approximately independent — the
standard steady-state output-analysis tool.  Used by the validation
harness to attach defensible error bars to simulated loss rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.arch.topology import Topology
from repro.errors import ReproError
from repro.sim.system import CommunicationSystem


@dataclass(frozen=True)
class BatchMeansEstimate:
    """Point estimate with a batch-means confidence interval.

    Attributes
    ----------
    mean:
        Grand mean over batches.
    half_width:
        Half-width of the confidence interval.
    num_batches / batch_length:
        The batching actually used.
    lag1_autocorrelation:
        Lag-1 autocorrelation of the batch means — should be near zero
        if batches are long enough; large values flag an untrustworthy
        interval.
    """

    mean: float
    half_width: float
    num_batches: int
    batch_length: float
    lag1_autocorrelation: float

    @property
    def interval(self) -> Tuple[float, float]:
        """The confidence interval ``(lo, hi)``."""
        return (self.mean - self.half_width, self.mean + self.half_width)


def batch_means(
    values: np.ndarray,
    confidence: float = 0.95,
) -> Tuple[float, float, float]:
    """Mean, CI half-width and lag-1 autocorrelation of batch values."""
    data = np.asarray(values, dtype=float)
    if data.size < 2:
        raise ReproError("batch means needs at least two batches")
    if not 0.0 < confidence < 1.0:
        raise ReproError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(data.mean())
    sem = float(data.std(ddof=1) / np.sqrt(data.size))
    half = float(
        scipy_stats.t.ppf(0.5 + confidence / 2.0, df=data.size - 1) * sem
    )
    centred = data - mean
    denom = float(centred @ centred)
    if denom <= 0:
        rho1 = 0.0
    else:
        rho1 = float((centred[:-1] @ centred[1:]) / denom)
    return mean, half, rho1


def loss_rate_batch_means(
    topology: Topology,
    capacities: Dict[str, int],
    total_duration: float = 50_000.0,
    num_batches: int = 20,
    warmup_fraction: float = 0.05,
    seed: int = 0,
    confidence: float = 0.95,
) -> BatchMeansEstimate:
    """Batch-means estimate of the system's total loss rate.

    Runs one long simulation, discards the warmup, slices the remainder
    into ``num_batches`` equal windows and intervals the per-window loss
    rates.
    """
    if num_batches < 2:
        raise ReproError(f"need at least 2 batches, got {num_batches}")
    if total_duration <= 0:
        raise ReproError("total_duration must be > 0")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ReproError("warmup_fraction must be in [0, 1)")
    system = CommunicationSystem(topology, capacities, seed=seed)
    for source in system.sources:
        source.start()
    warmup = total_duration * warmup_fraction
    if warmup > 0:
        system.simulator.run_until(warmup)
    batch_length = (total_duration - warmup) / num_batches
    losses = np.empty(num_batches)
    previous = system.monitor.total_lost()
    for b in range(num_batches):
        system.simulator.run_until(warmup + (b + 1) * batch_length)
        current = system.monitor.total_lost()
        losses[b] = (current - previous) / batch_length
        previous = current
    mean, half, rho1 = batch_means(losses, confidence)
    return BatchMeansEstimate(
        mean=mean,
        half_width=half,
        num_batches=num_batches,
        batch_length=batch_length,
        lag1_autocorrelation=rho1,
    )
