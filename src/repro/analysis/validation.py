"""Cross-validation of the simulator against the analytic substrate.

The simulator and the queueing formulas implement the same stochastic
model through entirely different code paths; this module runs them
against each other and reports the discrepancies.  The test suite pins
these discrepancies to statistical tolerance, which guards both sides —
a disagreement means one of them is wrong.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.arch.topology import Topology
from repro.errors import ReproError
from repro.queueing.mm1k import MM1KQueue
from repro.sim.runner import simulate


@dataclass(frozen=True)
class ValidationPoint:
    """One analytic-vs-simulated comparison."""

    description: str
    analytic: float
    simulated: float

    @property
    def relative_error(self) -> float:
        """``|simulated - analytic| / max(analytic, tiny)``."""
        scale = max(abs(self.analytic), 1e-12)
        return abs(self.simulated - self.analytic) / scale


def _single_queue_topology(lam: float, mu: float) -> Topology:
    topo = Topology("validation")
    topo.add_bus("x")
    topo.add_processor("src", "x", service_rate=mu)
    topo.add_processor("dst", "x", service_rate=mu)
    topo.add_poisson_flow("f", "src", "dst", lam)
    return topo


def validate_mm1k_blocking(
    lam: float = 2.0,
    mu: float = 3.0,
    capacity: int = 4,
    duration: float = 50_000.0,
    seed: int = 0,
) -> ValidationPoint:
    """Simulated vs closed-form blocking of a single M/M/1/K queue."""
    if capacity < 1:
        raise ReproError(f"capacity must be >= 1, got {capacity}")
    topo = _single_queue_topology(lam, mu)
    result = simulate(
        topo,
        {"src": capacity, "dst": 1},
        duration=duration,
        seed=seed,
        warmup=duration * 0.02,
    )
    simulated = result.lost["src"] / max(result.offered["src"], 1)
    analytic = MM1KQueue(lam, mu, capacity).blocking_probability()
    return ValidationPoint(
        description=f"M/M/1/{capacity} blocking (lam={lam}, mu={mu})",
        analytic=analytic,
        simulated=simulated,
    )


def validate_mm1k_occupancy(
    lam: float = 1.5,
    mu: float = 2.5,
    capacity: int = 5,
    duration: float = 50_000.0,
    seed: int = 1,
) -> ValidationPoint:
    """Simulated vs closed-form mean occupancy of a single M/M/1/K queue."""
    from repro.sim.system import CommunicationSystem

    topo = _single_queue_topology(lam, mu)
    system = CommunicationSystem(
        topo, {"src": capacity, "dst": 1}, seed=seed
    )
    system.run(duration)
    simulated = system.buffer("src").mean_occupancy(duration)
    analytic = MM1KQueue(lam, mu, capacity).mean_number_in_system()
    return ValidationPoint(
        description=f"M/M/1/{capacity} mean occupancy (lam={lam}, mu={mu})",
        analytic=analytic,
        simulated=simulated,
    )


def validate_carried_rate(
    lam: float = 2.0,
    mu: float = 3.0,
    capacity: int = 3,
    duration: float = 50_000.0,
    seed: int = 2,
) -> ValidationPoint:
    """Simulated vs analytic carried (delivered) rate."""
    topo = _single_queue_topology(lam, mu)
    result = simulate(
        topo,
        {"src": capacity, "dst": 1},
        duration=duration,
        seed=seed,
        warmup=duration * 0.02,
    )
    simulated = result.delivered["src"] / duration
    analytic = MM1KQueue(lam, mu, capacity).carried_rate()
    return ValidationPoint(
        description=f"M/M/1/{capacity} carried rate (lam={lam}, mu={mu})",
        analytic=analytic,
        simulated=simulated,
    )


def full_validation_suite(duration: float = 30_000.0) -> List[ValidationPoint]:
    """Run the standard battery; returns all points for reporting."""
    return [
        validate_mm1k_blocking(duration=duration),
        validate_mm1k_blocking(lam=3.0, mu=2.0, capacity=6, duration=duration),
        validate_mm1k_occupancy(duration=duration),
        validate_carried_rate(duration=duration),
    ]
