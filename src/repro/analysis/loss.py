"""Policy comparison harness: size, simulate, aggregate losses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.arch.topology import Topology
from repro.core.sizing import BufferAllocation
from repro.errors import ReproError
from repro.exec import ExecutionContext
from repro.sim.runner import ReplicationSummary, replicate


@dataclass
class PolicyComparison:
    """Replicated simulation results for several allocation policies.

    Attributes
    ----------
    topology:
        The architecture simulated.
    allocations:
        Policy name -> the allocation it produced.
    summaries:
        Policy name -> replication summary of the simulations.
    processors:
        Processor names in report order.
    """

    topology: Topology
    allocations: Dict[str, BufferAllocation]
    summaries: Dict[str, ReplicationSummary]
    processors: List[str]

    def mean_total_loss(self, policy: str) -> float:
        """Mean total loss count of one policy."""
        try:
            return self.summaries[policy].mean_total_loss()
        except KeyError:
            raise ReproError(f"unknown policy {policy!r}") from None

    def per_processor(self, policy: str) -> Dict[str, float]:
        """Mean per-processor loss counts of one policy."""
        try:
            summary = self.summaries[policy]
        except KeyError:
            raise ReproError(f"unknown policy {policy!r}") from None
        return summary.mean_loss_by_processor(self.processors)

    def improvement_over(self, baseline: str, policy: str) -> float:
        """Fractional total-loss reduction of ``policy`` vs ``baseline``."""
        from repro.analysis.stats import relative_improvement

        return relative_improvement(
            self.mean_total_loss(baseline), self.mean_total_loss(policy)
        )


def compare_policies(
    topology: Topology,
    allocations: Dict[str, BufferAllocation],
    replications: int = 10,
    duration: float = 3_000.0,
    base_seed: int = 0,
    timeout_thresholds: Optional[Dict[str, float]] = None,
    arbiter_kind: str = "longest_queue",
    processors: Optional[List[str]] = None,
    context: Optional[ExecutionContext] = None,
) -> PolicyComparison:
    """Simulate every allocation under identical seeds and horizons.

    Parameters
    ----------
    allocations:
        Policy name -> allocation to simulate.
    timeout_thresholds:
        Optional per-policy timeout threshold (policies absent from the
        map run without timeouts).
    processors:
        Report order; defaults to sorted processor names.
    context:
        Execution runtime (parallel replications, result cache); the
        default is the serial, uncached reference behaviour.
    """
    if not allocations:
        raise ReproError("no allocations to compare")
    if processors is None:
        processors = sorted(topology.processors)
    if context is None:
        context = ExecutionContext()
    summaries: Dict[str, ReplicationSummary] = {}
    for name, allocation in allocations.items():
        threshold = (timeout_thresholds or {}).get(name)
        summaries[name] = context.replicate(
            topology,
            allocation.as_capacities(),
            replications=replications,
            duration=duration,
            base_seed=base_seed,
            arbiter_kind=arbiter_kind,
            timeout_threshold=threshold,
        )
    return PolicyComparison(
        topology=topology,
        allocations=dict(allocations),
        summaries=summaries,
        processors=list(processors),
    )
