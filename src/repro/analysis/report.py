"""ASCII rendering of tables and Figure 3-style bar charts.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ReproError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width ASCII table.

    Floats are shown with two decimals; everything else via ``str``.
    """
    if not headers:
        raise ReproError("table needs headers")
    rendered_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row {row!r} has {len(row)} cells for "
                f"{len(headers)} headers"
            )
        rendered_rows.append(
            [
                f"{cell:.2f}" if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered_rows))
        if rendered_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def bar_chart(
    series: Dict[str, Dict[str, float]],
    categories: Sequence[str],
    width: int = 40,
    title: str = "",
) -> str:
    """Horizontal grouped bar chart (Figure 3 in ASCII).

    Parameters
    ----------
    series:
        ``series name -> {category -> value}`` (e.g. policy -> processor
        -> mean loss).
    categories:
        Category order (e.g. processors p1..p17).
    width:
        Character width of the longest bar.
    """
    if not series:
        raise ReproError("bar chart needs at least one series")
    if width < 1:
        raise ReproError(f"width must be >= 1, got {width}")
    peak = max(
        (values.get(cat, 0.0) for values in series.values() for cat in categories),
        default=0.0,
    )
    scale = width / peak if peak > 0 else 0.0
    label_width = max((len(c) for c in categories), default=0)
    series_width = max(len(s) for s in series)
    lines: List[str] = []
    if title:
        lines.append(title)
    for cat in categories:
        for i, (name, values) in enumerate(series.items()):
            value = values.get(cat, 0.0)
            bar = "#" * int(round(value * scale))
            prefix = cat.ljust(label_width) if i == 0 else " " * label_width
            lines.append(
                f"{prefix} {name.ljust(series_width)} |{bar} {value:.1f}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
