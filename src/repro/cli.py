"""Command-line interface for the buffer-sizing toolkit.

Usage (module form; also installed as ``repro-size`` via the console
script entry point)::

    python -m repro.cli scenarios list
    python -m repro.cli size ARCH.soc --budget 32
    python -m repro.cli size --scenario amba --budget 18
    python -m repro.cli simulate ARCH.soc --budget 32 --policy ctmdp
    python -m repro.cli simulate --scenario fig1 --budget 28
    python -m repro.cli inspect ARCH.soc
    python -m repro.cli figure3 --budget 160 --duration 1000 --reps 3
    python -m repro.cli figure3 --scenario coreconnect --reps 3
    python -m repro.cli table1 --duration 800 --reps 3
    python -m repro.cli table1 --jobs 4 --cache-dir .repro-cache
    python -m repro.cli dist serve --port 7070
    python -m repro.cli dist worker HOST:7070 --cache-dir .repro-cache
    python -m repro.cli dist run --dist HOST:7070 --scenario amba \
        --scenario fig1 --reps 5 --verify-local

``ARCH.soc`` files use the textual DSL of :mod:`repro.arch.dsl`; the
``--scenario`` flag resolves a named scenario from the
:mod:`repro.scenarios` registry instead (``repro scenarios list``
enumerates them).  The runtime flags ``--jobs`` / ``--cache-dir`` /
``--cache-max-mb`` / ``--no-warm-start`` / ``--sim-backend`` control
the :mod:`repro.exec` execution runtime; none of them changes any
reported number, except that the simulation backends are only
statistically equivalent under randomised arbitration (the default is
the batched array lane; ``--sim-backend heap`` selects the reference
event loop — see ``docs/execution.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro import obs, scenarios
from repro.obs import log
from repro.arch.dsl import parse_topology
from repro.arch.validate import cluster_loads
from repro.core.sizing import BufferSizer
from repro.errors import ReproError
from repro.exec import ExecutionContext
from repro.policies.analytic import AnalyticGreedySizing
from repro.policies.ctmdp_policy import CTMDPSizing
from repro.policies.proportional import ProportionalSizing
from repro.policies.uniform import UniformSizing

_POLICIES = {
    "uniform": UniformSizing,
    "proportional": ProportionalSizing,
    "analytic": AnalyticGreedySizing,
    "ctmdp": CTMDPSizing,
}


def _load_topology(path: str):
    text = Path(path).read_text()
    return parse_topology(text)


def _resolve_architecture(args: argparse.Namespace):
    """``(topology, spec_or_None, budget)`` from one subcommand's args.

    A subcommand that sizes or simulates takes either a ``.soc`` file
    (positional) or a registered scenario name — exactly one of the
    two.  ``--budget`` falls back to a scenario's declared default and
    is mandatory for architecture files.
    """
    arch = getattr(args, "architecture", None)
    name = getattr(args, "scenario", None)
    if arch and name:
        raise ReproError(
            "pass either an architecture file or --scenario, not both"
        )
    budget = getattr(args, "budget", None)
    if name:
        spec = scenarios.get(name)
        return spec.topology(), spec, (
            spec.default_budget if budget is None else budget
        )
    if not arch:
        raise ReproError(
            "an architecture file or --scenario NAME is required"
        )
    if budget is None:
        raise ReproError("--budget is required for architecture files")
    return _load_topology(arch), None, budget


def _progress_printer():
    """A ``progress(kind, key)`` observer logging one stderr line each."""

    def emit(kind, key):
        log.info(f"progress: {kind} {key} done")

    return emit


def _context_from_args(
    args: argparse.Namespace, spec=None
) -> ExecutionContext:
    """Build the execution runtime from the shared runtime flags.

    ``spec`` (a resolved scenario) scopes the context's cache keys.
    """
    context = ExecutionContext.create(
        jobs=getattr(args, "jobs", 1),
        cache_dir=getattr(args, "cache_dir", None),
        warm_start=not getattr(args, "no_warm_start", False),
        sim_backend=getattr(args, "sim_backend", "batched"),
        cache_max_mb=getattr(args, "cache_max_mb", None),
        dist=getattr(args, "dist", None),
        dist_authkey=getattr(args, "authkey", None),
        dist_schedule=getattr(args, "schedule", None),
        progress=(
            _progress_printer()
            if getattr(args, "progress", False)
            else None
        ),
    )
    return context.scoped(spec) if spec is not None else context


def _add_runtime_flags(
    parser: argparse.ArgumentParser, warm_start: bool = False
) -> None:
    """Attach the execution-runtime flags to one subcommand."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for replication batches (1 = serial, "
        "0 = all cores); sweep sizings additionally fan out when solved "
        "cold (--no-warm-start); results are identical for any value",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache directory "
        "(repeat runs and overlapping sweeps skip recomputation)",
    )
    parser.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        help="bound the cache directory to this many MiB with "
        "least-recently-used eviction (requires --cache-dir)",
    )
    parser.add_argument(
        "--sim-backend",
        choices=("heap", "batched", "megabatch"),
        default="batched",
        help="simulation engine for replication batches: 'batched' "
        "(default) is the array-native lane, 'heap' the reference "
        "event loop, 'megabatch' the replication-stacked kernel "
        "(one array program per cell; bitwise-identical fixed-seed "
        "metrics for deterministic arbiters, statistically "
        "equivalent for randomised ones)",
    )
    parser.add_argument(
        "--sim-jit",
        action="store_true",
        help="prefer the numba-jitted mega-batch kernel when numba is "
        "importable (sets REPRO_SIM_JIT=1; falls back to the C or "
        "numpy engine otherwise — never changes any number)",
    )
    parser.add_argument(
        "--dist",
        default=None,
        metavar="HOST:PORT",
        help="fan replication batches (and cold sweep points) over the "
        "'repro dist serve' broker at this address instead of the "
        "local pool; results are identical (see docs/distributed.md)",
    )
    parser.add_argument(
        "--authkey",
        default=None,
        help="shared fleet secret for --dist (must match 'repro dist "
        "serve'; default: the fleet default)",
    )
    parser.add_argument(
        "--schedule",
        choices=("fifo", "cost"),
        default=None,
        help="fleet dispatch policy for --dist: 'cost' = cost-model "
        "longest-predicted-first with sized leases, 'fifo' = arrival "
        "order (default: the broker's own policy); cannot change any "
        "result",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one stderr line per completed replication / sweep "
        "point (long local sweeps, fleet runs)",
    )
    if warm_start:
        parser.add_argument(
            "--no-warm-start",
            action="store_true",
            help="solve every sweep budget cold instead of chaining "
            "bridge-rate/LP warm starts (results are identical)",
        )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the observability flags to one subcommand.

    Attached per-subcommand (not on the root parser) so they read
    naturally where users type them: ``repro dist run --trace out.json``.
    """
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        dest="verbose",
        help="more stderr detail (per-item progress, worker chatter)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        dest="quiet",
        help="suppress stderr progress/summary lines (warnings only); "
        "stdout artifacts (reports, JSON) are unaffected",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="enable the in-process metrics registry (counters shipped "
        "to the broker on fleet runs; see 'repro obs dump')",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record spans and write a Chrome trace_event JSON here on "
        "exit (open in chrome://tracing or Perfetto); implies --metrics",
    )


def _apply_obs_args(args: argparse.Namespace) -> Optional[str]:
    """Configure logging/metrics/tracing from parsed flags.

    Returns the trace output path (export happens in :func:`main`'s
    ``finally`` so a failing command still leaves its trace behind).
    Also mirrors the choices into the environment so worker processes
    this command spawns (chaos fleets, pool children on spawn-start
    platforms) inherit them, the same channel fault plans use.
    """
    if getattr(args, "quiet", False):
        log.set_level(log.QUIET)
    elif getattr(args, "verbose", 0):
        log.set_level(log.DETAIL)
    trace_path = getattr(args, "trace", None)
    if trace_path:
        obs.enable_tracing()
        os.environ[obs.ENV_TRACE] = "1"
    if trace_path or getattr(args, "metrics", False):
        obs.enable_metrics()
        os.environ[obs.ENV_METRICS] = "1"
    return trace_path


def _add_scenario_flag(parser: argparse.ArgumentParser, default=None) -> None:
    """Attach ``--scenario`` to one subcommand."""
    parser.add_argument(
        "--scenario",
        default=default,
        metavar="NAME",
        help="named scenario from the registry (see 'repro scenarios "
        "list'); parametric families like random-mesh-<clusters>-<seed> "
        "resolve on demand",
    )


def _cmd_inspect(args: argparse.Namespace) -> int:
    topology = _load_topology(args.architecture)
    print(f"{topology!r}")
    print("clusters:")
    for load in cluster_loads(topology):
        print(
            f"  {sorted(load.cluster)}: offered {load.offered_rate:.3f}, "
            f"utilisation {load.utilisation:.3f}"
        )
    print("flows:")
    for name, flow in sorted(topology.flows.items()):
        route = topology.route(name)
        bridges = " -> ".join(route.bridges) if route.bridges else "(local)"
        print(
            f"  {name}: {flow.source} -> {flow.destination} "
            f"rate {flow.rate:.3f} via {bridges}"
        )
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    """List the scenario registry (fixed names + parametric families)."""
    print("registered scenarios:")
    for name in scenarios.names():
        spec = scenarios.get(name)
        topology = spec.topology()
        print(
            f"  {name:14s} {len(topology.processors):3d} processors, "
            f"{len(topology.buses)} buses, {len(topology.bridges)} "
            f"bridge(s), default budget {spec.default_budget}"
        )
        print(f"  {'':14s} {spec.description}")
    print("parametric families:")
    for family in scenarios.families():
        print(f"  {family.pattern}")
        print(f"      {family.description}")
        if family.grammar:
            print(f"      parameters: {family.grammar}")
        if family.example:
            # Resolve the example live so the listing shows a real
            # member (and breaks loudly if the example ever rots).
            spec = scenarios.get(family.example)
            print(
                f"      example: {spec.name} — {spec.description} "
                f"(default budget {spec.default_budget})"
            )
    return 0


def _cmd_size(args: argparse.Namespace) -> int:
    topology, spec, budget = _resolve_architecture(args)
    sizer_kwargs = dict(spec.sizer_kwargs) if spec is not None else {}
    sizer = BufferSizer(total_budget=budget, **sizer_kwargs)
    result = sizer.size(topology)
    print(f"# allocation (budget {budget})")
    for name in sorted(result.allocation.sizes):
        print(f"{name} {result.allocation.sizes[name]}")
    print(f"# expected loss rate {result.expected_loss_rate:.6f}")
    print(
        f"# bridge fixed point: {result.fixed_point_iterations} iteration(s)"
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    topology, spec, budget = _resolve_architecture(args)
    if args.policy == "ctmdp" and spec is not None:
        # The scenario's declared sizer knobs apply to every sizing run
        # of that scenario — keep `simulate` consistent with `size`.
        policy = CTMDPSizing(**spec.sizer_kwargs)
    else:
        policy = _POLICIES[args.policy]()
    allocation = policy.allocate(topology, budget)
    context = _context_from_args(args, spec)
    summary = context.replicate(
        topology,
        allocation.as_capacities(),
        replications=args.reps,
        duration=args.duration,
        base_seed=args.seed,
        seed_scheme=args.seed_scheme,
    )
    print(f"policy {args.policy}, budget {budget}:")
    print(f"  mean total loss {summary.mean_total_loss():.1f} "
          f"(+/- {summary.std_total_loss():.1f}) over {args.reps} runs")
    for proc in sorted(topology.processors):
        print(f"  {proc}: {summary.mean_loss(proc):.1f}")
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    from repro.experiments.figure3 import run_figure3

    result = run_figure3(
        budget=args.budget,
        duration=args.duration,
        replications=args.reps,
        context=_context_from_args(args),
        scenario=args.scenario,
    )
    print(result.render())
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import run_table1

    result = run_table1(
        duration=args.duration,
        replications=args.reps,
        context=_context_from_args(args),
        scenario=args.scenario,
    )
    print(result.render())
    return 0


def _cmd_dist_serve(args: argparse.Namespace) -> int:
    """Run the broker (work-stealing queue + shared cache store)."""
    from repro.dist import BrokerServer

    server_kwargs = {}
    if args.lease_target is not None:
        server_kwargs["lease_target"] = args.lease_target
    server = BrokerServer(
        host=args.host,
        port=args.port,
        authkey=args.authkey.encode("utf-8"),
        lease_timeout=args.lease_timeout,
        cache_max_bytes=int(args.cache_max_mb * 1024 * 1024),
        schedule=args.schedule,
        cost_model_path=args.cost_model,
        **server_kwargs,
    )
    host, port = server.address
    log.info(f"repro dist broker listening on {host}:{port}")
    http_server = None
    if args.http is not None:
        from repro.obs.server import LocalBrokerSource, ObsServer

        http_server = ObsServer(
            LocalBrokerSource(server.broker),
            host=args.http_host,
            port=args.http,
            interval=args.http_interval,
        ).start_in_thread()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if http_server is not None:
            http_server.stop()
        server.stop()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Standalone observability service against a remote broker."""
    from repro.obs.server import ObsServer, RemoteBrokerSource
    from repro.retry import RetryPolicy

    source = RemoteBrokerSource(
        args.broker,
        authkey=args.authkey.encode("utf-8"),
        retry=RetryPolicy(attempts=args.retry_attempts),
    )
    server = ObsServer(
        source,
        host=args.host,
        port=args.port,
        interval=args.interval,
        stale_after=args.stale_after,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _cmd_dist_worker(args: argparse.Namespace) -> int:
    """Serve jobs from a broker until idle-timeout (or forever)."""
    from repro.dist import worker_loop

    cache_max_bytes = (
        int(args.cache_max_mb * 1024 * 1024)
        if args.cache_max_mb is not None
        else None
    )
    if cache_max_bytes is not None and args.cache_dir is None:
        raise ReproError("--cache-max-mb requires --cache-dir")
    executed = worker_loop(
        args.address,
        authkey=args.authkey.encode("utf-8"),
        cache_dir=args.cache_dir,
        cache_max_bytes=cache_max_bytes,
        prefetch=args.prefetch,
        poll_interval=args.poll_interval,
        max_idle=args.max_idle,
        upload_batch=args.upload_batch,
        compress_threshold=(
            int(args.compress_kb * 1024)
            if args.compress_kb is not None
            else None
        ),
    )
    log.info(f"worker exiting after {executed} job(s)")
    return 0


def _parse_budgets(text):
    if not text:
        return None
    try:
        return [int(part) for part in text.split(",")]
    except ValueError:
        raise ReproError(
            f"invalid --budgets value {text!r}; expected "
            f"comma-separated integers like 8,16,24"
        )


def _cmd_dist_run(args: argparse.Namespace) -> int:
    """Run a scenario×budget×replication matrix (fleet or local)."""
    from repro.dist import DistExecutor, RunJournal, run_matrix

    scenario_names = args.scenario or [scenarios.DEFAULT_SCENARIO]
    budgets = _parse_budgets(args.budgets)
    if args.resume and not args.journal:
        raise ReproError("--resume requires --journal PATH")
    journal = (
        RunJournal(args.journal, resume=args.resume)
        if args.journal
        else None
    )
    executor = None
    if args.dist:
        executor = DistExecutor(
            args.dist,
            authkey=args.authkey.encode("utf-8"),
            timeout=args.timeout,
            on_broker_loss=args.on_broker_loss,
            schedule=args.schedule,
        )
    if executor is not None and journal is not None:
        # Warm-start the broker's cost model from the journal: a
        # resumed (or repeated) run schedules with the runtimes the
        # first attempt observed.  Advisory only — a missing or stale
        # file costs predictions, never results.
        model_path = journal.costmodel_path()
        if model_path.exists():
            import json as json_module

            try:
                with open(model_path) as fh:
                    executor.cost_seed(json_module.load(fh))
            except (OSError, ValueError) as exc:
                log.info(f"# cost model at {model_path} unreadable ({exc})")

    def stream(index, block):
        log.info(
            f"progress: block {index} done "
            f"({block.scenario} budget {block.budget} "
            f"reps {block.start}..{block.stop - 1})"
        )

    matrix_kwargs = dict(
        budgets=budgets,
        replications=args.reps,
        duration=args.duration,
        base_seed=args.seed,
        seed_scheme=args.seed_scheme,
        sim_backend=args.sim_backend,
        block_reps=args.block_reps,
    )
    # Broker counters are lifetime-cumulative (the broker is long-
    # lived and shared); snapshot them so the summary reports *this
    # run's* jobs/steals/cache traffic, not history.
    stats_before = executor.stats() if executor is not None else None
    cache_before = executor.cache_stats() if executor is not None else None
    outcome = run_matrix(
        scenario_names,
        jobs=args.jobs,
        executor=executor,
        on_result=stream if args.progress else None,
        journal=journal,
        **matrix_kwargs,
    )
    if journal is not None:
        log.info(
            f"# journal: {journal.hits} block(s) resumed, "
            f"{journal.records} recorded"
            + (
                f", {journal.quarantined} quarantined"
                if journal.quarantined
                else ""
            )
        )
    if executor is not None and journal is not None:
        # Snapshot the refined model back so the next run (or a
        # resume after a kill) warm-starts its schedule.
        import json as json_module

        try:
            state = executor.cost_snapshot()
            journal.costmodel_path().write_text(
                json_module.dumps(state, sort_keys=True) + "\n"
            )
        except OSError as exc:
            log.info(f"# cost model snapshot failed ({exc})")
    if args.verify_local:
        # The acceptance contract, end to end: the distributed (or
        # pooled) run must merge bitwise-identically to the serial
        # reference loop.
        reference = run_matrix(scenario_names, jobs=1, **matrix_kwargs)
        if outcome.to_jsonable() != reference.to_jsonable():
            raise ReproError(
                "distributed matrix result differs from the serial "
                "reference — determinism contract violated"
            )
        log.info("verify-local: merged results bitwise-identical to serial")
    print(outcome.render())
    if executor is not None:
        stats = executor.stats()
        cache_stats = executor.cache_stats()
        log.info(
            f"# fleet: "
            f"{stats['completed'] - stats_before['completed']} job(s) "
            f"completed, {stats['steals'] - stats_before['steals']} "
            f"steal(s), "
            f"{stats['reaped_jobs'] - stats_before['reaped_jobs']} "
            f"re-enqueued; shared cache "
            f"{cache_stats['hits'] - cache_before['hits']}/"
            f"{cache_stats['gets'] - cache_before['gets']} hit(s), "
            f"{cache_stats['entries']} entr(ies)"
        )
    if args.json:
        outcome.write_json(args.json)
        log.info(f"# wrote {args.json}")
    return 0


def _cmd_dist_chaos(args: argparse.Namespace) -> int:
    """Run the fault-injection matrix; non-zero exit on any mismatch."""
    import json as json_module

    from repro.faults.chaos import run_chaos_matrix
    from repro.faults.plan import standard_plans

    scenario_names = args.scenario or [scenarios.DEFAULT_SCENARIO]
    plans = standard_plans(seed=args.seed)
    if args.fault:
        unknown = sorted(set(args.fault) - set(plans))
        if unknown:
            raise ReproError(
                f"unknown fault plan(s) {unknown}; available: "
                f"{sorted(plans)}"
            )
        plans = {name: plans[name] for name in args.fault}
    report = run_chaos_matrix(
        scenario_names,
        budgets=_parse_budgets(args.budgets),
        replications=args.reps,
        duration=args.duration,
        base_seed=args.seed,
        sim_backend=args.sim_backend,
        block_reps=args.block_reps,
        plans=plans,
        modes=tuple(args.mode) if args.mode else ("serial", "jobs", "dist"),
        jobs=args.jobs,
        workers=args.workers,
        log_dir=args.log_dir,
        schedule=args.schedule,
    )
    print(report.render())
    if args.json:
        with open(args.json, "w") as fh:
            json_module.dump(
                {
                    "all_match": report.all_match,
                    "cases": [vars(case) for case in report.cases],
                },
                fh,
                sort_keys=True,
                indent=2,
            )
            fh.write("\n")
        log.info(f"# wrote {args.json}")
    return 0 if report.all_match else 1


def _wait_for_quit(interval: float) -> bool:
    """Sleep ``interval`` seconds; ``True`` if the user pressed ``q``.

    On a real TTY the terminal goes into cbreak mode for the wait so a
    single unbuffered keypress is enough; redirected stdin just sleeps
    (the console is then driven by SIGINT or ``--once``).
    """
    if not sys.stdin.isatty():
        time.sleep(interval)
        return False
    import select
    import termios
    import tty

    fd = sys.stdin.fileno()
    saved = termios.tcgetattr(fd)
    try:
        tty.setcbreak(fd)
        ready, _, _ = select.select([sys.stdin], [], [], interval)
        if ready:
            return sys.stdin.read(1) in ("q", "Q")
    finally:
        termios.tcsetattr(fd, termios.TCSADRAIN, saved)
    return False


def _cmd_dist_top(args: argparse.Namespace) -> int:
    """Live fleet console: queue, workers, caches, refreshing in place."""
    from repro.dist import DistExecutor
    from repro.obs.console import CLEAR_SCREEN, render_top

    executor = DistExecutor(
        args.address, authkey=args.authkey.encode("utf-8")
    )
    if args.once:
        sys.stdout.write(
            render_top(executor.obs_snapshot(), None, args.interval)
        )
        sys.stdout.flush()
        return 0
    previous = None
    try:
        while True:
            snapshot = executor.obs_snapshot()
            frame = render_top(
                snapshot, previous, args.interval if previous else None
            )
            sys.stdout.write(CLEAR_SCREEN + frame)
            sys.stdout.flush()
            previous = snapshot
            if _wait_for_quit(args.interval):
                break
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_obs_dump(args: argparse.Namespace) -> int:
    """One JSON telemetry snapshot on stdout (scripting-friendly).

    With ``--dist`` the snapshot is the broker's consistent fleet view
    (same data ``dist top`` renders); without it, this process's local
    registry — useful at the end of an instrumented in-process run.
    """
    import json as json_module

    if args.dist:
        from repro.dist import DistExecutor

        snapshot = DistExecutor(
            args.dist, authkey=args.authkey.encode("utf-8")
        ).obs_snapshot()
    else:
        snapshot = obs.snapshot()
    json_module.dump(snapshot, sys.stdout, sort_keys=True, indent=2)
    sys.stdout.write("\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "CTMDP buffer insertion and sizing for SoC communication "
            "sub-systems (DATE 2005 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_scen = sub.add_parser(
        "scenarios", help="list the registered evaluation scenarios"
    )
    p_scen.add_argument(
        "action",
        nargs="?",
        choices=("list",),
        default="list",
        help="what to do (only 'list' for now)",
    )
    p_scen.set_defaults(func=_cmd_scenarios)

    p_inspect = sub.add_parser(
        "inspect", help="validate and summarise an architecture file"
    )
    p_inspect.add_argument("architecture", help="path to a .soc DSL file")
    p_inspect.set_defaults(func=_cmd_inspect)

    p_size = sub.add_parser("size", help="run the CTMDP sizing pipeline")
    p_size.add_argument(
        "architecture", nargs="?", default=None,
        help="path to a .soc DSL file (or use --scenario)",
    )
    _add_scenario_flag(p_size)
    p_size.add_argument(
        "--budget", type=int, default=None,
        help="total buffer budget (defaults to the scenario's declared "
        "budget; required with an architecture file)",
    )
    _add_obs_flags(p_size)
    p_size.set_defaults(func=_cmd_size)

    p_sim = sub.add_parser(
        "simulate", help="size with a policy and simulate the result"
    )
    p_sim.add_argument(
        "architecture", nargs="?", default=None,
        help="path to a .soc DSL file (or use --scenario)",
    )
    _add_scenario_flag(p_sim)
    p_sim.add_argument(
        "--budget", type=int, default=None,
        help="total buffer budget (defaults to the scenario's declared "
        "budget; required with an architecture file)",
    )
    p_sim.add_argument(
        "--policy", choices=sorted(_POLICIES), default="ctmdp"
    )
    p_sim.add_argument("--duration", type=float, default=5_000.0)
    p_sim.add_argument("--reps", type=int, default=5)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--seed-scheme",
        choices=("legacy", "spawn"),
        default="legacy",
        help="per-replication seed derivation (spawn = collision-free "
        "SeedSequence children; legacy = base_seed + 1000*r)",
    )
    _add_runtime_flags(p_sim)
    _add_obs_flags(p_sim)
    p_sim.set_defaults(func=_cmd_simulate)

    p_fig3 = sub.add_parser(
        "figure3", help="regenerate the paper's Figure 3"
    )
    _add_scenario_flag(p_fig3)
    p_fig3.add_argument(
        "--budget", type=int, default=None,
        help="total buffer budget (defaults to the scenario's declared "
        "budget, 160 for netproc)",
    )
    p_fig3.add_argument(
        "--duration", type=float, default=1_500.0,
        help="simulated horizon per replication (quick-run default; "
        "the Python API falls back to the scenario's declared "
        "paper-grade horizon instead)",
    )
    p_fig3.add_argument("--reps", type=int, default=5)
    _add_runtime_flags(p_fig3)
    _add_obs_flags(p_fig3)
    p_fig3.set_defaults(func=_cmd_figure3)

    p_dist = sub.add_parser(
        "dist",
        help="distributed execution: broker, workers, fleet matrix runs",
    )
    dist_sub = p_dist.add_subparsers(dest="dist_command", required=True)

    p_serve = dist_sub.add_parser(
        "serve", help="run the work-stealing broker + shared cache store"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7070,
        help="TCP port (0 = ephemeral; the bound address is printed)",
    )
    p_serve.add_argument(
        "--authkey", default="repro-dist",
        help="shared fleet secret (must match workers and drivers)",
    )
    p_serve.add_argument(
        "--lease-timeout", type=float, default=10.0,
        help="seconds without a heartbeat before a worker is declared "
        "dead and its jobs are re-enqueued",
    )
    p_serve.add_argument(
        "--cache-max-mb", type=float, default=256.0,
        help="bound of the broker's in-memory shared cache store (MiB)",
    )
    p_serve.add_argument(
        "--schedule", choices=("fifo", "cost"), default="fifo",
        help="default dispatch policy: 'fifo' = arrival order, "
        "'cost' = cost-model longest-predicted-first with sized "
        "leases (drivers can override per batch)",
    )
    p_serve.add_argument(
        "--lease-target", type=float, default=None,
        help="predicted seconds of work granted per lease under "
        "'cost' (default 0.5)",
    )
    p_serve.add_argument(
        "--cost-model", default=None, metavar="PATH",
        help="persist/warm-start the runtime cost model at this JSON "
        "path (loaded on start, saved periodically and on shutdown)",
    )
    p_serve.add_argument(
        "--http", type=int, default=None, metavar="PORT",
        help="also serve the HTTP observability service on this port "
        "(/healthz, /snapshot, /metrics, /events, and the live "
        "dashboard at /) next to the broker",
    )
    p_serve.add_argument(
        "--http-host", default="127.0.0.1",
        help="bind address of the --http service",
    )
    p_serve.add_argument(
        "--http-interval", type=float, default=2.0,
        help="snapshot sampling cadence of the --http service (seconds)",
    )
    _add_obs_flags(p_serve)
    p_serve.set_defaults(func=_cmd_dist_serve)

    p_worker = dist_sub.add_parser(
        "worker", help="serve jobs from a broker on this host"
    )
    p_worker.add_argument("address", help="broker address (host:port)")
    p_worker.add_argument("--authkey", default="repro-dist")
    p_worker.add_argument(
        "--cache-dir", default=None,
        help="optional local disk tier under the shared cache",
    )
    p_worker.add_argument(
        "--cache-max-mb", type=float, default=None,
        help="LRU bound of the local tier (requires --cache-dir)",
    )
    p_worker.add_argument(
        "--prefetch", type=int, default=2,
        help="jobs leased per pull (the surplus is stealable by idle "
        "peers)",
    )
    p_worker.add_argument("--poll-interval", type=float, default=0.1)
    p_worker.add_argument(
        "--upload-batch", type=int, default=8,
        help="completions buffered per complete_many() upload RPC "
        "(1 = legacy one-RPC-per-job wire shape)",
    )
    p_worker.add_argument(
        "--compress-kb", type=float, default=None,
        help="zlib-compress result envelopes above this size (KiB; "
        "default: never compress)",
    )
    p_worker.add_argument(
        "--max-idle", type=float, default=None,
        help="exit after this many seconds without work (default: "
        "serve forever)",
    )
    _add_obs_flags(p_worker)
    p_worker.set_defaults(func=_cmd_dist_worker)

    p_run = dist_sub.add_parser(
        "run",
        help="run a scenario×budget×replication matrix on a fleet "
        "(or locally without --dist)",
    )
    p_run.add_argument(
        "--dist", default=None, metavar="HOST:PORT",
        help="broker to fan the matrix over (omit to run locally)",
    )
    p_run.add_argument("--authkey", default="repro-dist")
    p_run.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="scenario to include (repeatable; default: netproc)",
    )
    p_run.add_argument(
        "--budgets", default=None,
        help="comma-separated budget axis applied to every scenario "
        "(default: each scenario's declared axis)",
    )
    p_run.add_argument("--reps", type=int, default=3)
    p_run.add_argument("--duration", type=float, default=500.0)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--seed-scheme", choices=("legacy", "spawn"), default="legacy"
    )
    p_run.add_argument(
        "--sim-backend",
        choices=("heap", "batched", "megabatch"),
        default="batched",
    )
    p_run.add_argument("--sim-jit", action="store_true")
    p_run.add_argument(
        "--block-reps", type=int, default=1,
        help="replications per job block (smaller = more stealable "
        "blocks sharing each cell's cached sizing)",
    )
    p_run.add_argument(
        "--jobs", type=int, default=1,
        help="local pool width when --dist is omitted",
    )
    p_run.add_argument(
        "--timeout", type=float, default=None,
        help="overall bound on the fleet run (error instead of hanging "
        "when no worker is connected)",
    )
    p_run.add_argument(
        "--verify-local", action="store_true",
        help="re-run the matrix serially in-process and assert the "
        "merged results are bitwise-identical (the determinism "
        "contract, end to end)",
    )
    p_run.add_argument(
        "--progress", action="store_true",
        help="stream one stderr line per completed block",
    )
    p_run.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the canonical JSON artifact of the run",
    )
    p_run.add_argument(
        "--journal", default=None, metavar="DIR",
        help="record every completed block in this journal directory "
        "(atomic, checksummed) so a killed run can be resumed",
    )
    p_run.add_argument(
        "--resume", action="store_true",
        help="continue an existing --journal: journaled blocks are "
        "reused without recomputing (the matrix configuration must "
        "be identical)",
    )
    p_run.add_argument(
        "--schedule", choices=("fifo", "cost"), default=None,
        help="fleet dispatch policy: 'cost' = cost-model "
        "longest-predicted-first with sized leases, 'fifo' = arrival "
        "order (default: the broker's own policy); by the determinism "
        "contract this cannot change any result",
    )
    p_run.add_argument(
        "--on-broker-loss", choices=("fallback", "fail"),
        default="fallback",
        help="when the broker dies mid-run: 'fallback' finishes the "
        "unfinished blocks on the local pool (same results), 'fail' "
        "raises (default: fallback)",
    )
    _add_obs_flags(p_run)
    p_run.set_defaults(func=_cmd_dist_run)

    p_top = dist_sub.add_parser(
        "top",
        help="live fleet console: queue depth, per-worker throughput, "
        "steal/reap/retry/fault counters, cache hit rates (press q to "
        "quit)",
    )
    p_top.add_argument("address", help="broker address (host:port)")
    p_top.add_argument("--authkey", default="repro-dist")
    p_top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes (rates are computed over this "
        "window)",
    )
    p_top.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (scripting, CI)",
    )
    p_top.set_defaults(func=_cmd_dist_top)

    p_chaos = dist_sub.add_parser(
        "chaos",
        help="run the deterministic fault-injection matrix and assert "
        "every outcome is bitwise-identical to the fault-free serial "
        "run",
    )
    p_chaos.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="scenario to include (repeatable; default: netproc)",
    )
    p_chaos.add_argument(
        "--budgets", default=None,
        help="comma-separated budget axis applied to every scenario",
    )
    p_chaos.add_argument("--reps", type=int, default=2)
    p_chaos.add_argument("--duration", type=float, default=60.0)
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument(
        "--sim-backend",
        choices=("heap", "batched", "megabatch"),
        default="batched",
    )
    p_chaos.add_argument("--sim-jit", action="store_true")
    p_chaos.add_argument("--block-reps", type=int, default=1)
    p_chaos.add_argument(
        "--fault", action="append", default=None, metavar="PLAN",
        help="fault plan to run (repeatable; default: the full "
        "standard set — see repro.faults.plan.standard_plans)",
    )
    p_chaos.add_argument(
        "--mode", action="append", default=None,
        choices=("serial", "jobs", "dist"),
        help="execution mode to cover (repeatable; default: all three)",
    )
    p_chaos.add_argument(
        "--jobs", type=int, default=2,
        help="pool width of the 'jobs' mode",
    )
    p_chaos.add_argument(
        "--workers", type=int, default=2,
        help="fleet size of the 'dist' mode (the first worker gets "
        "the fault plan)",
    )
    p_chaos.add_argument(
        "--schedule", choices=("fifo", "cost"), default=None,
        help="dispatch policy of the 'dist' mode (determinism must "
        "hold under either; default: the broker's own policy)",
    )
    p_chaos.add_argument(
        "--log-dir", default=None, metavar="DIR",
        help="collect one fault-injection log per (plan, mode) case",
    )
    p_chaos.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the case table as JSON",
    )
    _add_obs_flags(p_chaos)
    p_chaos.set_defaults(func=_cmd_dist_chaos)

    p_http = sub.add_parser(
        "serve",
        help="standalone HTTP observability service scraping a remote "
        "broker (/healthz, /snapshot, /metrics, /events, live "
        "dashboard at /)",
    )
    p_http.add_argument(
        "--broker", required=True, metavar="HOST:PORT",
        help="broker whose fleet telemetry to serve",
    )
    p_http.add_argument("--authkey", default="repro-dist")
    p_http.add_argument(
        "--host", default="127.0.0.1", help="HTTP bind address"
    )
    p_http.add_argument(
        "--port", type=int, default=8080,
        help="HTTP port (0 = ephemeral)",
    )
    p_http.add_argument(
        "--interval", type=float, default=2.0,
        help="broker sampling cadence (seconds); also the SSE cadence",
    )
    p_http.add_argument(
        "--stale-after", type=float, default=None,
        help="mark served data stale after this many seconds without "
        "a successful sample (default: 3x --interval); the service "
        "keeps serving the last snapshot and recovers on its own",
    )
    p_http.add_argument(
        "--retry-attempts", type=int, default=4,
        help="retry attempts per broker sample before degrading to "
        "stale mode",
    )
    p_http.set_defaults(func=_cmd_serve)

    p_obs = sub.add_parser(
        "obs", help="observability: telemetry snapshots"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_dump = obs_sub.add_parser(
        "dump",
        help="print one JSON telemetry snapshot (broker fleet view "
        "with --dist, else this process's registry)",
    )
    p_dump.add_argument(
        "--dist", default=None, metavar="HOST:PORT",
        help="broker whose fleet-wide snapshot to dump",
    )
    p_dump.add_argument("--authkey", default="repro-dist")
    _add_obs_flags(p_dump)
    p_dump.set_defaults(func=_cmd_obs_dump)

    p_tab1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    _add_scenario_flag(p_tab1)
    p_tab1.add_argument(
        "--duration", type=float, default=1_000.0,
        help="simulated horizon per replication (quick-run default; "
        "the Python API falls back to the scenario's declared "
        "paper-grade horizon instead)",
    )
    p_tab1.add_argument("--reps", type=int, default=3)
    _add_runtime_flags(p_tab1, warm_start=True)
    _add_obs_flags(p_tab1)
    p_tab1.set_defaults(func=_cmd_table1)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "sim_jit", False):
        os.environ["REPRO_SIM_JIT"] = "1"
    trace_path = _apply_obs_args(args)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        # Export even when the command failed: the trace of a broken
        # run is the one worth reading.
        if trace_path and obs.tracing_enabled():
            try:
                count = obs.export_trace(trace_path)
            except OSError as exc:
                log.warn(f"could not write trace to {trace_path}: {exc}")
            else:
                log.info(f"# trace: wrote {count} span(s) to {trace_path}")


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
