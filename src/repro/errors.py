"""Exception hierarchy shared by every ``repro`` subpackage.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subpackages raise the most specific subclass that
applies; none of them raise bare ``ValueError``/``RuntimeError`` for
domain-level failures.

The distributed runtime additionally needs a *transient-vs-fatal*
taxonomy: a broker connection reset is worth retrying (the broker may
be restarting, the network may be flaky), a wrong authkey or a
malformed scenario never is.  :class:`TransientError` marks the
retryable family, :func:`is_transient` classifies arbitrary exceptions
(including the stdlib connection errors the manager protocol raises),
and :class:`repro.retry.RetryPolicy` consumes the classification.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ModelError(ReproError):
    """A stochastic model (CTMC, CTMDP, queue) is malformed.

    Examples: a generator matrix whose rows do not sum to zero, a negative
    rate, an empty action set for some state.
    """


class TopologyError(ReproError):
    """A communication architecture description is structurally invalid.

    Examples: a processor attached to no bus, a bridge whose two endpoints
    are the same bus, duplicate component names.
    """


class SolverError(ReproError):
    """An optimisation backend failed to produce a usable solution.

    Carries the backend status message so benches can report *why* the
    quadratic formulation failed, as the paper does for Matlab 6.1.
    """

    def __init__(self, message: str, status: str = ""):
        super().__init__(message)
        self.status = status


class InfeasibleError(SolverError):
    """The optimisation problem has no feasible point.

    Raised, for instance, when the buffer budget is smaller than the number
    of clients that must each receive at least one slot.
    """


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class PolicyError(ReproError):
    """A sizing or arbitration policy was given arguments it cannot honour."""


class TransientError(ReproError):
    """A failure that may succeed on retry (infrastructure, not logic).

    Raised (or wrapped) by the distributed runtime for conditions a
    :class:`repro.retry.RetryPolicy` should absorb: a broker that is
    momentarily unreachable, a dropped connection mid-RPC, a cache-tier
    round-trip that timed out.  Deterministic *job* failures are never
    transient — a pure job that raised once would raise again.
    """


class BrokerUnavailableError(TransientError):
    """The broker cannot be reached (refused, reset, or mid-restart)."""


class CacheCorruptionError(ReproError):
    """A cache entry's bytes fail their integrity check.

    Never retried and never deserialised: the entry is quarantined and
    the value recomputed — corruption is a data problem, not a
    transport problem (see :mod:`repro.exec.cache`).
    """


#: Exception types the stdlib networking / manager stack raises for
#: conditions that are plausibly temporary.  ``OSError`` covers
#: ``ConnectionRefusedError`` (broker restarting) and kin; ``EOFError``
#: is the manager protocol's torn-connection signature.
TRANSIENT_EXCEPTIONS = (
    TransientError,
    ConnectionError,
    EOFError,
    TimeoutError,
    OSError,
)

#: Exceptions that look transient by type but are definitively fatal —
#: retrying a wrong authkey can never help (``AuthenticationError``
#: subclasses ``ProcessError`` -> ``Exception``, but guard anyway).
_FATAL_NAMES = frozenset({"AuthenticationError"})


def is_transient(exc: BaseException) -> bool:
    """Whether retrying the operation that raised ``exc`` makes sense.

    The classifier the :class:`repro.retry.RetryPolicy` default uses:
    transient library errors and torn-connection stdlib errors are
    retryable; authentication failures, corruption, and every
    domain-level :class:`ReproError` are not.
    """
    if type(exc).__name__ in _FATAL_NAMES:
        return False
    if isinstance(exc, TransientError):
        return True
    if isinstance(exc, ReproError):
        return False
    return isinstance(exc, TRANSIENT_EXCEPTIONS)
