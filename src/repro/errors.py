"""Exception hierarchy shared by every ``repro`` subpackage.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subpackages raise the most specific subclass that
applies; none of them raise bare ``ValueError``/``RuntimeError`` for
domain-level failures.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ModelError(ReproError):
    """A stochastic model (CTMC, CTMDP, queue) is malformed.

    Examples: a generator matrix whose rows do not sum to zero, a negative
    rate, an empty action set for some state.
    """


class TopologyError(ReproError):
    """A communication architecture description is structurally invalid.

    Examples: a processor attached to no bus, a bridge whose two endpoints
    are the same bus, duplicate component names.
    """


class SolverError(ReproError):
    """An optimisation backend failed to produce a usable solution.

    Carries the backend status message so benches can report *why* the
    quadratic formulation failed, as the paper does for Matlab 6.1.
    """

    def __init__(self, message: str, status: str = ""):
        super().__init__(message)
        self.status = status


class InfeasibleError(SolverError):
    """The optimisation problem has no feasible point.

    Raised, for instance, when the buffer budget is smaller than the number
    of clients that must each receive at least one slot.
    """


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class PolicyError(ReproError):
    """A sizing or arbitration policy was given arguments it cannot honour."""
