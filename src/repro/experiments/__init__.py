"""Experiment drivers regenerating every table and figure of the paper.

* :mod:`repro.experiments.figure3` — Figure 3: per-processor loss before
  sizing, after CTMDP sizing, and under the timeout policy.
* :mod:`repro.experiments.table1` — Table 1: pre/post losses at total
  budgets 160, 320 and 640.
* :mod:`repro.experiments.headline` — the Section 3 aggregate claims
  (~20% total-loss reduction vs constant sizing, ~50% vs timeout).
* :mod:`repro.experiments.ablations` — split-vs-quadratic, solver
  agreement, and the policy/load sweep.

Every driver is scenario-generic: ``scenario=`` accepts any name from
the :mod:`repro.scenarios` registry (default: ``netproc``, the paper's
testbed), and the execution runtime scopes its cache keys per scenario.
"""

from repro.experiments.common import NetprocExperiment, ScenarioExperiment
from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.headline import HeadlineResult, run_headline
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.ablations import (
    PolicySweepResult,
    SolverAgreementResult,
    SplitVsQuadraticResult,
    run_policy_sweep,
    run_solver_agreement,
    run_split_vs_quadratic,
)
from repro.experiments.extensions import (
    BurstinessResult,
    WeightedLossResult,
    run_burstiness,
    run_weighted_loss,
)

__all__ = [
    "BurstinessResult",
    "Figure3Result",
    "HeadlineResult",
    "NetprocExperiment",
    "PolicySweepResult",
    "ScenarioExperiment",
    "SolverAgreementResult",
    "SplitVsQuadraticResult",
    "Table1Result",
    "WeightedLossResult",
    "run_burstiness",
    "run_figure3",
    "run_headline",
    "run_policy_sweep",
    "run_solver_agreement",
    "run_split_vs_quadratic",
    "run_table1",
    "run_weighted_loss",
]
