"""Shared setup for the network-processor experiments.

Every paper experiment uses the same three configurations:

``pre``
    Constant buffer sizing — every buffer the same size (the paper's
    "constant buffer sizing policy"), the before-resizing bars.
``post``
    CTMDP sizing via split subsystems — the paper's after-resizing bars.
``timeout``
    The pre-sizing allocation with the timeout dropping policy, whose
    threshold is calibrated from the measured average buffer waiting
    time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.arch.netproc import network_processor, processor_names
from repro.arch.topology import Topology
from repro.core.sizing import BufferAllocation
from repro.errors import ReproError
from repro.exec import ExecutionContext
from repro.policies.timeout import calibrate_timeout_threshold
from repro.policies.uniform import UniformSizing

#: Configuration names used across all experiments.
PRE, POST, TIMEOUT = "pre", "post", "timeout"


@dataclass
class NetprocExperiment:
    """One sized network-processor instance ready to simulate.

    Attributes
    ----------
    topology:
        The 17-processor testbed.
    allocations:
        ``pre`` / ``post`` / ``timeout`` allocations (timeout shares the
        pre allocation).
    timeout_threshold:
        Calibrated mean buffer waiting time.
    processors:
        p1..p17 in numeric order.
    """

    topology: Topology
    allocations: Dict[str, BufferAllocation]
    timeout_threshold: float
    processors: list

    #: Default timeout-threshold multiplier.  The paper fixes the
    #: threshold at "the average time spent by a request in a buffer"
    #: without saying how the average was measured; this value places
    #: the timeout policy's total loss at roughly twice the CTMDP
    #: configuration, the regime the paper's 50% claim implies.
    TIMEOUT_MULTIPLIER = 6.0

    @classmethod
    def build(
        cls,
        budget: int,
        arch_seed: int = 2005,
        load_scale: float = 1.0,
        calibration_duration: float = 3_000.0,
        sizer_kwargs: Optional[dict] = None,
        timeout_multiplier: Optional[float] = None,
        context: Optional[ExecutionContext] = None,
    ) -> "NetprocExperiment":
        """Size all three configurations for one budget.

        ``context`` routes the expensive CTMDP sizing run through the
        execution runtime (content-addressed cache); the default is the
        uncached direct call.
        """
        if budget < 1:
            raise ReproError(f"budget must be >= 1, got {budget}")
        if context is None:
            context = ExecutionContext()
        topology = network_processor(seed=arch_seed, load_scale=load_scale)
        pre_alloc = UniformSizing().allocate(topology, budget)
        post_alloc = context.size(
            topology, budget, sizer_kwargs=sizer_kwargs
        ).allocation
        threshold = calibrate_timeout_threshold(
            topology,
            pre_alloc.as_capacities(),
            duration=calibration_duration,
            seed=arch_seed,
            multiplier=(
                cls.TIMEOUT_MULTIPLIER
                if timeout_multiplier is None
                else timeout_multiplier
            ),
        )
        return cls(
            topology=topology,
            allocations={
                PRE: pre_alloc,
                POST: post_alloc,
                TIMEOUT: pre_alloc,
            },
            timeout_threshold=threshold,
            processors=processor_names(topology),
        )

    def timeout_thresholds(self) -> Dict[str, float]:
        """Per-configuration thresholds for the comparison harness."""
        return {TIMEOUT: self.timeout_threshold}
