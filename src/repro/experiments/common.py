"""Shared setup for the paper experiments, scenario-generically.

Every paper experiment uses the same three configurations:

``pre``
    Constant buffer sizing — every buffer the same size (the paper's
    "constant buffer sizing policy"), the before-resizing bars.
``post``
    CTMDP sizing via split subsystems — the paper's after-resizing bars.
``timeout``
    The pre-sizing allocation with the timeout dropping policy, whose
    threshold is calibrated from the measured average buffer waiting
    time.

:class:`ScenarioExperiment` builds the three configurations for any
registered scenario (see :mod:`repro.scenarios`); the paper's testbed is
just the default registry entry (``netproc``), and
:class:`NetprocExperiment` remains as the netproc-pinned alias the
original drivers were written against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.arch.topology import Topology, processor_names
from repro.core.sizing import BufferAllocation
from repro.errors import ReproError
from repro.exec import ExecutionContext
from repro.policies.timeout import calibrate_timeout_threshold
from repro.policies.uniform import UniformSizing
from repro.scenarios import ScenarioSpec, resolve

#: Configuration names used across all experiments.
PRE, POST, TIMEOUT = "pre", "post", "timeout"


def scenario_setup(
    scenario: Union[str, ScenarioSpec, None],
    context: Optional[ExecutionContext],
    sizer_kwargs: Optional[dict] = None,
):
    """Shared driver prologue: ``(spec, scoped context, merged sizer)``.

    Resolves the scenario, scopes the execution context to its cache
    keys (building a default context when the caller passed none) and
    merges the caller's sizer arguments over the scenario's own
    (``None`` when the merge is empty, so downstream ``BufferSizer``
    calls see no kwargs at all).  Every scenario-generic driver starts
    here, so the resolution rules cannot drift between them.
    """
    spec = resolve(scenario)
    context = (context or ExecutionContext()).scoped(spec)
    merged = {**spec.sizer_kwargs, **(sizer_kwargs or {})}
    return spec, context, (merged or None)


@dataclass
class ScenarioExperiment:
    """One sized scenario instance ready to simulate.

    Attributes
    ----------
    scenario:
        The resolved :class:`~repro.scenarios.ScenarioSpec`.
    topology:
        The scenario's built topology.
    allocations:
        ``pre`` / ``post`` / ``timeout`` allocations (timeout shares the
        pre allocation).
    timeout_threshold:
        Calibrated mean buffer waiting time, scaled by the scenario's
        ``timeout_multiplier``.
    processors:
        Processor names in report order (numeric where names carry
        numbers, lexicographic otherwise).
    """

    scenario: ScenarioSpec
    topology: Topology
    allocations: Dict[str, BufferAllocation]
    timeout_threshold: float
    processors: list

    @classmethod
    def build(
        cls,
        scenario: Union[str, ScenarioSpec, None] = None,
        budget: Optional[int] = None,
        arch_seed: Optional[int] = None,
        load_scale: float = 1.0,
        calibration_duration: Optional[float] = None,
        sizer_kwargs: Optional[dict] = None,
        timeout_multiplier: Optional[float] = None,
        context: Optional[ExecutionContext] = None,
    ) -> "ScenarioExperiment":
        """Size all three configurations of one scenario at one budget.

        Every ``None`` argument falls back to the scenario's declared
        default (budget, arch seed, calibration horizon, timeout
        multiplier); ``sizer_kwargs`` are merged over the scenario's
        own.  ``context`` routes the expensive CTMDP sizing run through
        the execution runtime, scoped to the scenario's cache keys; the
        default is an uncached direct call.
        """
        spec, context, merged_sizer = scenario_setup(
            scenario, context, sizer_kwargs
        )
        budget = spec.default_budget if budget is None else budget
        if budget < 1:
            raise ReproError(f"budget must be >= 1, got {budget}")
        seed = spec.arch_seed if arch_seed is None else arch_seed
        topology = spec.topology(arch_seed=seed, load_scale=load_scale)
        pre_alloc = UniformSizing().allocate(topology, budget)
        post_alloc = context.size(
            topology, budget, sizer_kwargs=merged_sizer
        ).allocation
        threshold = calibrate_timeout_threshold(
            topology,
            pre_alloc.as_capacities(),
            duration=(
                spec.calibration_duration
                if calibration_duration is None
                else calibration_duration
            ),
            seed=seed,
            multiplier=(
                spec.timeout_multiplier
                if timeout_multiplier is None
                else timeout_multiplier
            ),
            backend=context.sim_backend,
        )
        return cls(
            scenario=spec,
            topology=topology,
            allocations={
                PRE: pre_alloc,
                POST: post_alloc,
                TIMEOUT: pre_alloc,
            },
            timeout_threshold=threshold,
            processors=processor_names(topology),
        )

    def timeout_thresholds(self) -> Dict[str, float]:
        """Per-configuration thresholds for the comparison harness."""
        return {TIMEOUT: self.timeout_threshold}


class NetprocExperiment(ScenarioExperiment):
    """The 17-processor testbed experiment (netproc-pinned alias).

    The historical entry point: ``build`` keeps its original signature
    (``budget`` first) and always resolves the ``netproc`` scenario.
    The timeout-threshold multiplier that used to live here as a class
    constant is now the netproc :class:`~repro.scenarios.ScenarioSpec`'s
    ``timeout_multiplier``.
    """

    @classmethod
    def build(  # type: ignore[override]
        cls,
        budget: int,
        arch_seed: int = 2005,
        load_scale: float = 1.0,
        calibration_duration: float = 3_000.0,
        sizer_kwargs: Optional[dict] = None,
        timeout_multiplier: Optional[float] = None,
        context: Optional[ExecutionContext] = None,
    ) -> "NetprocExperiment":
        """Size the three netproc configurations for one budget."""
        return super().build(
            scenario="netproc",
            budget=budget,
            arch_seed=arch_seed,
            load_scale=load_scale,
            calibration_duration=calibration_duration,
            sizer_kwargs=sizer_kwargs,
            timeout_multiplier=timeout_multiplier,
            context=context,
        )
