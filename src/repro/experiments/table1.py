"""Table 1: loss before/after sizing under varying total buffer size.

The paper reports pre/post loss counts for processors 1, 4, 15 and 16 at
total buffer budgets 160, 320 and 640, observing that (a) with very
limited space (160) redistribution helps little and some processors get
worse, and (b) post-sizing losses fall with budget and reach zero at 640.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.loss import PolicyComparison, compare_policies
from repro.analysis.report import format_table
from repro.errors import ReproError
from repro.experiments.common import POST, PRE, NetprocExperiment

#: The processors the paper's table displays.
PAPER_PROCESSORS = ("p1", "p4", "p15", "p16")
#: The paper's budget axis.
PAPER_BUDGETS = (160, 320, 640)


@dataclass
class Table1Result:
    """The reproduced Table 1."""

    budgets: List[int]
    comparisons: Dict[int, PolicyComparison]
    processors: List[str]

    def cell(self, budget: int, processor: str, config: str) -> float:
        """Mean loss count for one (budget, processor, pre/post) cell."""
        if budget not in self.comparisons:
            raise ReproError(f"budget {budget} was not swept")
        return self.comparisons[budget].per_processor(config).get(
            processor, 0.0
        )

    def total(self, budget: int, config: str) -> float:
        """System-wide mean loss at one budget."""
        if budget not in self.comparisons:
            raise ReproError(f"budget {budget} was not swept")
        return self.comparisons[budget].mean_total_loss(config)

    def render(self, processors: Sequence[str] = PAPER_PROCESSORS) -> str:
        """ASCII reproduction of Table 1 (pre/post per budget)."""
        headers = ["PROCESSOR"]
        for budget in self.budgets:
            headers += [f"Buf {budget} pre", f"Buf {budget} post"]
        rows = []
        for proc in processors:
            row: List[object] = [proc]
            for budget in self.budgets:
                row.append(self.cell(budget, proc, PRE))
                row.append(self.cell(budget, proc, POST))
            rows.append(row)
        total_row: List[object] = ["TOTAL"]
        for budget in self.budgets:
            total_row.append(self.total(budget, PRE))
            total_row.append(self.total(budget, POST))
        rows.append(total_row)
        return format_table(
            headers, rows, title="Table 1 — loss under varying total buffer size"
        )


def run_table1(
    budgets: Sequence[int] = PAPER_BUDGETS,
    duration: float = 3_000.0,
    replications: int = 10,
    arch_seed: int = 2005,
    base_seed: int = 0,
    sizer_kwargs: dict | None = None,
) -> Table1Result:
    """Sweep the total budget and compare pre/post losses."""
    if not budgets:
        raise ReproError("table 1 needs at least one budget")
    comparisons: Dict[int, PolicyComparison] = {}
    processors: List[str] = []
    for budget in budgets:
        experiment = NetprocExperiment.build(
            budget=int(budget), arch_seed=arch_seed, sizer_kwargs=sizer_kwargs
        )
        processors = experiment.processors
        comparisons[int(budget)] = compare_policies(
            experiment.topology,
            {
                PRE: experiment.allocations[PRE],
                POST: experiment.allocations[POST],
            },
            replications=replications,
            duration=duration,
            base_seed=base_seed,
            processors=experiment.processors,
        )
    return Table1Result(
        budgets=[int(b) for b in budgets],
        comparisons=comparisons,
        processors=processors,
    )
