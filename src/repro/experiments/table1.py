"""Table 1: loss before/after sizing under varying total buffer size.

The paper reports pre/post loss counts for processors 1, 4, 15 and 16 at
total buffer budgets 160, 320 and 640, observing that (a) with very
limited space (160) redistribution helps little and some processors get
worse, and (b) post-sizing losses fall with budget and reach zero at 640.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.loss import PolicyComparison, compare_policies
from repro.analysis.report import format_table
from repro.arch.topology import processor_names
from repro.errors import ReproError
from repro.exec import ExecutionContext
from repro.experiments.common import POST, PRE, scenario_setup
from repro.policies.uniform import UniformSizing
from repro.scenarios import ScenarioSpec

#: The processors the paper's table displays.
PAPER_PROCESSORS = ("p1", "p4", "p15", "p16")
#: The paper's budget axis (the netproc scenario's declared axis).
PAPER_BUDGETS = (160, 320, 640)


@dataclass
class Table1Result:
    """The reproduced Table 1."""

    budgets: List[int]
    comparisons: Dict[int, PolicyComparison]
    processors: List[str]
    scenario: str = "netproc"

    def cell(self, budget: int, processor: str, config: str) -> float:
        """Mean loss count for one (budget, processor, pre/post) cell."""
        if budget not in self.comparisons:
            raise ReproError(f"budget {budget} was not swept")
        return self.comparisons[budget].per_processor(config).get(
            processor, 0.0
        )

    def total(self, budget: int, config: str) -> float:
        """System-wide mean loss at one budget."""
        if budget not in self.comparisons:
            raise ReproError(f"budget {budget} was not swept")
        return self.comparisons[budget].mean_total_loss(config)

    def render(self, processors: Optional[Sequence[str]] = None) -> str:
        """ASCII reproduction of Table 1 (pre/post per budget).

        The paper's four-processor row subset applies only to the
        netproc scenario it was written about; every other scenario
        shows all of its processors by default (name collisions like
        fig1's p1/p4 must not silently truncate the table).
        """
        if processors is None:
            processors = (
                PAPER_PROCESSORS
                if self.scenario == "netproc"
                else self.processors
            )
        headers = ["PROCESSOR"]
        for budget in self.budgets:
            headers += [f"Buf {budget} pre", f"Buf {budget} post"]
        rows = []
        for proc in processors:
            row: List[object] = [proc]
            for budget in self.budgets:
                row.append(self.cell(budget, proc, PRE))
                row.append(self.cell(budget, proc, POST))
            rows.append(row)
        total_row: List[object] = ["TOTAL"]
        for budget in self.budgets:
            total_row.append(self.total(budget, PRE))
            total_row.append(self.total(budget, POST))
        rows.append(total_row)
        return format_table(
            headers, rows, title="Table 1 — loss under varying total buffer size"
        )


def run_table1(
    budgets: Optional[Sequence[int]] = None,
    duration: Optional[float] = None,
    replications: Optional[int] = None,
    arch_seed: Optional[int] = None,
    base_seed: int = 0,
    sizer_kwargs: dict | None = None,
    context: Optional[ExecutionContext] = None,
    scenario: Union[str, ScenarioSpec, None] = None,
) -> Table1Result:
    """Sweep the total budget and compare pre/post losses.

    ``scenario`` selects the architecture (default: netproc, whose
    declared budget axis is the paper's 160/320/640); ``budgets``,
    ``duration``, ``replications`` and ``arch_seed`` default to the
    scenario's values.  The CTMDP sizings run through the execution
    runtime's budget-sweep scheduler: consecutive budgets warm-start
    each other's bridge fixed point (disable via the context's
    ``warm_start=False``), results are memoised in the context's cache
    under scenario-scoped keys, and the replication batches of every
    budget fan out over the context's process pool.
    """
    spec, context, sizer_kwargs = scenario_setup(
        scenario, context, sizer_kwargs
    )
    if budgets is None:
        budgets = spec.budgets
    if not budgets:
        raise ReproError("table 1 needs at least one budget")
    duration = spec.default_duration if duration is None else duration
    replications = (
        spec.default_replications if replications is None else replications
    )
    topology = spec.topology(arch_seed=arch_seed)
    processors = processor_names(topology)
    budget_list = [int(b) for b in budgets]
    sweep = context.sweep(topology, budget_list, sizer_kwargs=sizer_kwargs)
    comparisons: Dict[int, PolicyComparison] = {}
    for budget in budget_list:
        comparisons[budget] = compare_policies(
            topology,
            {
                PRE: UniformSizing().allocate(topology, budget),
                POST: sweep.result_for(budget).allocation,
            },
            replications=replications,
            duration=duration,
            base_seed=base_seed,
            processors=processors,
            context=context,
        )
    return Table1Result(
        budgets=budget_list,
        comparisons=comparisons,
        processors=processors,
        scenario=spec.name,
    )
