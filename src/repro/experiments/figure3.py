"""Figure 3: per-processor loss before sizing, after sizing, timeout.

The paper plots three bars per processor (17 processors, 10 iterations):
loss before buffer sizing (constant allocation), after CTMDP resizing,
and under the timeout policy.  The expected *shape*: post-sizing bars
mostly below pre-sizing, a few processors slightly worse (the paper's
processor 1), the timeout policy worst in aggregate.

The driver is scenario-generic: ``scenario=`` regenerates the same
figure on any registered scenario (the default is the paper's netproc
testbed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.analysis.loss import PolicyComparison, compare_policies
from repro.analysis.report import bar_chart, format_table
from repro.analysis.stats import relative_improvement
from repro.exec import ExecutionContext
from repro.experiments.common import (
    POST,
    PRE,
    TIMEOUT,
    ScenarioExperiment,
    scenario_setup,
)
from repro.scenarios import ScenarioSpec


@dataclass
class Figure3Result:
    """The reproduced Figure 3."""

    experiment: ScenarioExperiment
    comparison: PolicyComparison
    budget: int

    def per_processor(self) -> Dict[str, Dict[str, float]]:
        """``config -> processor -> mean loss count``."""
        return {
            name: self.comparison.per_processor(name)
            for name in (PRE, POST, TIMEOUT)
        }

    def improvement_vs_pre(self) -> float:
        """Fractional total-loss reduction of post vs pre (paper: ~0.2)."""
        return self.comparison.improvement_over(PRE, POST)

    def improvement_vs_timeout(self) -> float:
        """Fractional total-loss reduction of post vs timeout (paper: ~0.5)."""
        return self.comparison.improvement_over(TIMEOUT, POST)

    def render(self, width: int = 40) -> str:
        """ASCII reproduction of the figure plus the aggregate numbers."""
        data = self.per_processor()
        chart = bar_chart(
            {name: data[name] for name in (PRE, POST, TIMEOUT)},
            categories=self.experiment.processors,
            width=width,
            title=(
                f"Figure 3 [{self.experiment.scenario.name}] — "
                f"per-processor mean loss "
                f"(budget={self.budget}, "
                f"{self.comparison.summaries[PRE].num_replications} reps)"
            ),
        )
        rows = [
            (
                "total loss",
                self.comparison.mean_total_loss(PRE),
                self.comparison.mean_total_loss(POST),
                self.comparison.mean_total_loss(TIMEOUT),
            )
        ]
        table = format_table(
            ["metric", "pre", "post", "timeout"], rows, title=""
        )
        summary = (
            f"post vs pre improvement:     {self.improvement_vs_pre():6.1%}\n"
            f"post vs timeout improvement: {self.improvement_vs_timeout():6.1%}"
        )
        return "\n\n".join([chart, table, summary])


def run_figure3(
    budget: Optional[int] = None,
    duration: Optional[float] = None,
    replications: Optional[int] = None,
    arch_seed: Optional[int] = None,
    base_seed: int = 0,
    sizer_kwargs: dict | None = None,
    context: Optional[ExecutionContext] = None,
    scenario: Union[str, ScenarioSpec, None] = None,
) -> Figure3Result:
    """Regenerate Figure 3 on one scenario (default: netproc).

    ``budget``/``duration``/``replications``/``arch_seed`` default to
    the scenario's declared values (netproc: 160, 3000, 10, 2005 — the
    paper configuration).  ``context`` routes the sizing run and the
    three replication batches through the execution runtime (process
    pool + result cache), with cache keys scoped to the scenario.
    """
    # build() re-runs the same prologue on the resolved spec/scoped
    # context/merged sizer; scenario_setup is idempotent on its own
    # outputs, so both call sites stay in lockstep by construction.
    spec, context, sizer_kwargs = scenario_setup(
        scenario, context, sizer_kwargs
    )
    experiment = ScenarioExperiment.build(
        scenario=spec,
        budget=budget,
        arch_seed=arch_seed,
        sizer_kwargs=sizer_kwargs,
        context=context,
    )
    duration = spec.default_duration if duration is None else duration
    replications = (
        spec.default_replications if replications is None else replications
    )
    comparison = compare_policies(
        experiment.topology,
        experiment.allocations,
        replications=replications,
        duration=duration,
        base_seed=base_seed,
        timeout_thresholds=experiment.timeout_thresholds(),
        processors=experiment.processors,
        context=context,
    )
    return Figure3Result(
        experiment=experiment,
        comparison=comparison,
        budget=experiment.allocations[PRE].total,
    )
