"""The Section 3 headline claims.

"We repeated these experiments for 10 iterations and found that though
the loss may increase for some processors the overall loss of the system
decreases by about 20% as compared to the constant buffer sizing policy
and 50% for the timeout policy."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.experiments.common import POST, PRE, TIMEOUT
from repro.experiments.figure3 import Figure3Result, run_figure3


@dataclass
class HeadlineResult:
    """Aggregate improvements over the two baselines."""

    figure3: Figure3Result
    improvement_vs_constant: float
    improvement_vs_timeout: float
    some_processor_got_worse: bool

    def render(self) -> str:
        """Aggregate table plus the paper's qualitative observations."""
        comparison = self.figure3.comparison
        rows = [
            ("pre (constant sizing)", comparison.mean_total_loss(PRE)),
            ("post (CTMDP sizing)", comparison.mean_total_loss(POST)),
            ("timeout policy", comparison.mean_total_loss(TIMEOUT)),
        ]
        table = format_table(
            ["configuration", "mean total loss"], rows,
            title="Headline — overall loss across 10 iterations",
        )
        lines = [
            table,
            "",
            f"reduction vs constant sizing: {self.improvement_vs_constant:6.1%}"
            "  (paper: ~20%)",
            f"reduction vs timeout policy:  {self.improvement_vs_timeout:6.1%}"
            "  (paper: ~50%)",
            "some processor's loss increased after resizing: "
            f"{self.some_processor_got_worse}  (paper: yes, e.g. processor 1)",
        ]
        return "\n".join(lines)


def run_headline(
    budget: int | None = None,
    duration: float | None = None,
    replications: int | None = None,
    arch_seed: int | None = None,
    base_seed: int = 0,
    sizer_kwargs: dict | None = None,
    scenario=None,
) -> HeadlineResult:
    """Compute the aggregate improvements on one scenario (default netproc)."""
    figure3 = run_figure3(
        budget=budget,
        duration=duration,
        replications=replications,
        arch_seed=arch_seed,
        base_seed=base_seed,
        sizer_kwargs=sizer_kwargs,
        scenario=scenario,
    )
    pre = figure3.comparison.per_processor(PRE)
    post = figure3.comparison.per_processor(POST)
    worse = any(
        post[p] > pre[p] + 1e-9 for p in figure3.experiment.processors
    )
    return HeadlineResult(
        figure3=figure3,
        improvement_vs_constant=figure3.improvement_vs_pre(),
        improvement_vs_timeout=figure3.improvement_vs_timeout(),
        some_processor_got_worse=worse,
    )
