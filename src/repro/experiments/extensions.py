"""Extension experiments beyond the paper's tables.

The paper's own discussion motivates both:

* **Burstiness (E7)** — "We feel the difference before and after
  resizing could be improved with better profiling": size under the
  Poisson assumption, then drive the same architecture with bursty
  on-off traffic of identical mean rate and measure how the sizing
  degrades, alongside the GI/M/1 two-moment prediction of the buffer
  inflation that would be needed.
* **Weighted losses (E8)** — "allowing some losses to be more important
  than the others": mark a subset of processors as critical and verify
  the CTMDP allocation shifts buffers toward them and reduces the
  *weighted* loss relative to an unweighted allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.report import format_table
from repro.arch.topology import (
    Topology,
    processor_names,
    rebuilt_topology,
)
from repro.arch.traffic import OnOffTraffic
from repro.errors import ReproError
from repro.exec import ExecutionContext
from repro.experiments.common import scenario_setup
from repro.queueing.mg1 import gim1_tail_decay
from repro.scenarios import ScenarioSpec


def _burstify(topology: Topology, scv_target: float) -> Topology:
    """Replace every Poisson flow with an on-off flow of equal mean rate.

    For an on-off source with peak ``p``, on-fraction ``f`` the
    interarrival SCV grows with ``p / mean - 1``; we pick the on-fraction
    that hits approximately the requested interarrival SCV using the
    standard IPP (interrupted Poisson) moment relation.
    """
    if scv_target <= 1.0:
        raise ReproError(
            f"on-off burstification needs target SCV > 1, got {scv_target}"
        )

    def burstify_flow(flow):
        mean = flow.rate
        # Interrupted Poisson: SCV = 1 + 2 peak/(1/on + 1/off)/... use the
        # simple construction: peak = scv * mean, on-fraction = 1/scv.
        peak = scv_target * mean
        on_fraction = 1.0 / scv_target
        mean_on = 1.0  # time units; burst length scale
        mean_off = mean_on * (1.0 - on_fraction) / on_fraction
        return OnOffTraffic(
            peak_rate=peak, mean_on=mean_on, mean_off=mean_off
        )

    return rebuilt_topology(
        topology,
        name=f"{topology.name}-scv{scv_target:g}",
        flow_traffic=burstify_flow,
    )


@dataclass
class BurstinessResult:
    """E7: loss inflation under burstiness for a Poisson-sized allocation."""

    scv_levels: List[float]
    losses: List[float]
    poisson_loss: float
    predicted_buffer_inflation: List[float]

    def render(self) -> str:
        rows: List[Tuple[object, ...]] = [
            ("1.0 (Poisson)", self.poisson_loss, 1.0)
        ]
        for scv, loss, inflation in zip(
            self.scv_levels, self.losses, self.predicted_buffer_inflation
        ):
            rows.append((f"{scv:.1f}", loss, inflation))
        return format_table(
            ["interarrival SCV", "mean total loss", "predicted buffer x"],
            rows,
            title="E7 — Poisson-sized allocation under bursty traffic",
        )


def run_burstiness(
    scv_levels: Sequence[float] = (2.0, 4.0),
    budget: Optional[int] = None,
    replications: int = 3,
    duration: float = 1_000.0,
    arch_seed: Optional[int] = None,
    sizer_kwargs: dict | None = None,
    context: Optional[ExecutionContext] = None,
    scenario: Union[str, ScenarioSpec, None] = None,
) -> BurstinessResult:
    """E7: size Poisson, simulate bursty, report the degradation."""
    if not scv_levels:
        raise ReproError("need at least one SCV level")
    spec, context, sizer_kwargs = scenario_setup(
        scenario, context, sizer_kwargs
    )
    topology = spec.topology(arch_seed=arch_seed)
    budget = spec.default_budget if budget is None else budget
    allocation = context.size(
        topology, budget, sizer_kwargs=sizer_kwargs
    ).allocation
    poisson_loss = context.replicate(
        topology,
        allocation.as_capacities(),
        replications=replications,
        duration=duration,
    ).mean_total_loss()
    losses: List[float] = []
    inflations: List[float] = []
    # Representative utilisation for the tail-decay prediction: mean
    # client rho across the testbed.
    rhos = [
        topology.processor_offered_rate(p.name) / p.service_rate
        for p in topology.processors.values()
        if topology.processor_offered_rate(p.name) > 0
    ]
    rho = sum(rhos) / len(rhos)
    base_decay = gim1_tail_decay(1.0, rho)
    for scv in scv_levels:
        bursty = _burstify(topology, scv)
        loss = context.replicate(
            bursty,
            allocation.as_capacities(),
            replications=replications,
            duration=duration,
        ).mean_total_loss()
        losses.append(loss)
        # Buffers needed to hold the same tail mass scale with the ratio
        # of log decay rates.
        import math

        decay = gim1_tail_decay(scv, rho)
        inflations.append(math.log(base_decay) / math.log(decay))
    return BurstinessResult(
        scv_levels=list(scv_levels),
        losses=losses,
        poisson_loss=poisson_loss,
        predicted_buffer_inflation=inflations,
    )


@dataclass
class WeightedLossResult:
    """E8: weighted sizing + weighted arbitration protect critical clients.

    A noteworthy reproduction finding: when critical processors' losses
    are up-weighted, the optimal CTMDP *policy* protects them primarily
    through **arbitration priority** (serve them first, keeping their
    queues near-empty) rather than through extra buffer slots — their
    marginals lighten, so the K-switching translation may even *reduce*
    their buffer shares.  The experiment therefore deploys the full
    policy: the weighted configuration simulates with service priority
    for the critical clients (the stochastic arbitration the CTMDP
    solution implies) plus its allocation, against the neutral
    configuration (longest-queue arbitration, unweighted allocation).
    """

    critical: List[str]
    weight: float
    weighted_alloc_sizes: Dict[str, int]
    unweighted_alloc_sizes: Dict[str, int]
    critical_loss_weighted: float
    critical_loss_unweighted: float
    total_loss_weighted: float
    total_loss_unweighted: float

    def render(self) -> str:
        rows = []
        for proc in self.critical:
            rows.append(
                (
                    proc,
                    self.unweighted_alloc_sizes.get(proc, 0),
                    self.weighted_alloc_sizes.get(proc, 0),
                )
            )
        table = format_table(
            ["critical processor", "slots (neutral)", "slots (weighted)"],
            rows,
            title=f"E8 — loss weighting (w={self.weight:g}) on critical "
            "processors",
        )
        return (
            table
            + f"\ncritical-processor loss: neutral "
            f"{self.critical_loss_unweighted:.1f} -> weighted "
            f"{self.critical_loss_weighted:.1f}"
            + f"\ntotal system loss:       neutral "
            f"{self.total_loss_unweighted:.1f} -> weighted "
            f"{self.total_loss_weighted:.1f} (the price of protection)"
        )


def run_weighted_loss(
    critical: Optional[Sequence[str]] = None,
    weight: float = 8.0,
    budget: Optional[int] = None,
    replications: int = 3,
    duration: float = 1_000.0,
    arch_seed: Optional[int] = None,
    sizer_kwargs: dict | None = None,
    context: Optional[ExecutionContext] = None,
    scenario: Union[str, ScenarioSpec, None] = None,
) -> WeightedLossResult:
    """E8: weighted vs neutral CTMDP configurations (see class docstring).

    ``critical`` defaults to the scenario's declared critical set
    (netproc: p1 and p16), falling back to the first and last processor
    in report order for scenarios that declare none.
    """
    if weight <= 1.0:
        raise ReproError(f"critical weight should exceed 1, got {weight}")
    spec, context, sizer_kwargs = scenario_setup(
        scenario, context, sizer_kwargs
    )
    base = spec.topology(arch_seed=arch_seed)
    budget = spec.default_budget if budget is None else budget
    if critical is None:
        if spec.critical_processors is not None:
            critical = spec.critical_processors
        else:
            order = processor_names(base)
            critical = tuple(dict.fromkeys((order[0], order[-1])))
    unknown = [p for p in critical if p not in base.processors]
    if unknown:
        raise ReproError(
            f"critical processors {unknown} not in scenario "
            f"{spec.name!r}"
        )
    unweighted_alloc = context.size(
        base, budget, sizer_kwargs=sizer_kwargs
    ).allocation
    # Rebuild with elevated loss weights on the critical processors.
    weighted = rebuilt_topology(
        base,
        name=f"{base.name}-weighted",
        processor_loss_weight=lambda proc: (
            weight if proc.name in critical else proc.loss_weight
        ),
    )
    weighted_alloc = context.size(
        weighted, budget, sizer_kwargs=sizer_kwargs
    ).allocation

    neutral_summary = context.replicate(
        base,
        unweighted_alloc.as_capacities(),
        replications=replications,
        duration=duration,
    )
    # The weighted configuration deploys the policy's arbitration too:
    # critical clients get service priority proportional to their weight.
    arbiter_weights = {
        name: weight if name in critical else 1.0
        for name in weighted_alloc.sizes
    }
    weighted_summary = context.replicate(
        base,
        weighted_alloc.as_capacities(),
        replications=replications,
        duration=duration,
        arbiter_kind="weighted_random",
        arbiter_weights=arbiter_weights,
    )
    critical_list = list(critical)
    return WeightedLossResult(
        critical=critical_list,
        weight=weight,
        weighted_alloc_sizes=dict(weighted_alloc.sizes),
        unweighted_alloc_sizes=dict(unweighted_alloc.sizes),
        critical_loss_weighted=sum(
            weighted_summary.mean_loss(p) for p in critical_list
        ),
        critical_loss_unweighted=sum(
            neutral_summary.mean_loss(p) for p in critical_list
        ),
        total_loss_weighted=weighted_summary.mean_total_loss(),
        total_loss_unweighted=neutral_summary.mean_total_loss(),
    )
