"""Ablations: the experiments DESIGN.md adds beyond the paper's tables.

* :func:`run_split_vs_quadratic` — E4: the naive coupled formulation
  (Matlab's failure in the paper) against the split + joint-LP method on
  the Figure 1 architecture.
* :func:`run_solver_agreement` — E5: LP vs relative value iteration vs
  policy iteration on random unconstrained bus models.
* :func:`run_policy_sweep` — E6: allocation policies across load levels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.sweep import SweepPoint, load_sweep
from repro.arch.templates import paper_figure1
from repro.arch.topology import Topology
from repro.core.bus_model import BusClient, build_joint_bus_ctmdp
from repro.core.dp import policy_iteration, relative_value_iteration
from repro.core.lp import AverageCostLP
from repro.core.quadratic import QuadraticCoupledSizer, QuadraticDiagnostics
from repro.core.sizing import BufferSizer, SizingResult
from repro.core.splitting import quadratic_coupling_count
from repro.errors import ReproError
from repro.exec import ExecutionContext
from repro.policies.analytic import AnalyticGreedySizing
from repro.policies.ctmdp_policy import CTMDPSizing
from repro.policies.proportional import ProportionalSizing
from repro.policies.uniform import UniformSizing


@dataclass
class SplitVsQuadraticResult:
    """E4: the naive coupled formulation vs the split method.

    The paper could not solve the coupled quadratic system with Matlab
    6.1 at all.  Modern SLSQP *can* solve tiny instances, but the
    variable count is exponential in the per-client buffer depth (the
    full joint lattice), so wall time explodes immediately — the
    quantitative form of the paper's negative result.  The split method
    solves per-cluster *linear* programs whose size is polynomial in the
    depth, and is unaffected.
    """

    quadratic_by_capacity: Dict[int, QuadraticDiagnostics]
    split_result: SizingResult
    split_wall_time: float
    coupling_count: int

    def render(self) -> str:
        rows = []
        for cap, diag in sorted(self.quadratic_by_capacity.items()):
            rows.append(
                (
                    f"naive coupled, depth {cap}",
                    str(diag.success),
                    diag.wall_time_seconds,
                    f"{diag.num_variables} vars, "
                    f"{diag.num_bilinear_terms} bilinear terms",
                )
            )
        rows.append(
            (
                "split + joint LP (paper)",
                "True",
                self.split_wall_time,
                f"{self.coupling_count} bridge couplings removed",
            )
        )
        table = format_table(
            ["formulation", "solved", "wall_time_s", "problem size"],
            rows,
            title="E4 — naive coupled formulation vs bridge splitting "
            "(paper Figure 1)",
        )
        detail = (
            f"split expected loss: {self.split_result.expected_loss_rate:.4f} "
            f"(fixed point in {self.split_result.fixed_point_iterations} "
            "iterations)"
        )
        return table + "\n" + detail


def run_split_vs_quadratic(
    budget: int = 24,
    quadratic_capacities: Sequence[int] = (1, 2),
    quadratic_max_iter: int = 50,
) -> SplitVsQuadraticResult:
    """E4 on the paper's Figure 1 architecture.

    Runs the naive solver at increasing buffer depths to expose its
    exponential scaling, then the split pipeline at full budget.
    """
    topology = paper_figure1()
    quadratic_by_capacity = {}
    for cap in quadratic_capacities:
        quadratic_by_capacity[int(cap)] = QuadraticCoupledSizer(
            capacity=int(cap), max_iter=quadratic_max_iter
        ).solve(topology)
    start = time.perf_counter()
    split_result = BufferSizer(total_budget=budget).size(topology)
    split_time = time.perf_counter() - start
    return SplitVsQuadraticResult(
        quadratic_by_capacity=quadratic_by_capacity,
        split_result=split_result,
        split_wall_time=split_time,
        coupling_count=quadratic_coupling_count(topology),
    )


@dataclass
class SolverAgreementResult:
    """E5: max deviation between LP, VI and PI average costs."""

    instances: int
    max_lp_vi_gap: float
    max_lp_pi_gap: float

    def render(self) -> str:
        return format_table(
            ["pair", "max |gap|"],
            [
                ("LP vs value iteration", self.max_lp_vi_gap),
                ("LP vs policy iteration", self.max_lp_pi_gap),
            ],
            title=f"E5 — solver agreement over {self.instances} random buses",
        )


def run_solver_agreement(
    instances: int = 10, seed: int = 0
) -> SolverAgreementResult:
    """E5: three solvers on random small unconstrained bus models."""
    if instances < 1:
        raise ReproError(f"instances must be >= 1, got {instances}")
    rng = np.random.default_rng(seed)
    max_vi = 0.0
    max_pi = 0.0
    for _ in range(instances):
        clients = [
            BusClient(
                f"c{i}",
                arrival_rate=float(rng.uniform(0.3, 2.0)),
                service_rate=float(rng.uniform(1.0, 3.5)),
                capacity=int(rng.integers(1, 4)),
                loss_weight=float(rng.uniform(0.5, 3.0)),
            )
            for i in range(2)
        ]
        model = build_joint_bus_ctmdp(clients)
        lp = AverageCostLP(model).solve().objective
        vi = relative_value_iteration(model, tol=1e-11).average_cost_rate
        pi = policy_iteration(model).average_cost_rate
        max_vi = max(max_vi, abs(lp - vi))
        max_pi = max(max_pi, abs(lp - pi))
    return SolverAgreementResult(
        instances=instances, max_lp_vi_gap=max_vi, max_lp_pi_gap=max_pi
    )


@dataclass
class PolicySweepResult:
    """E6: total losses per policy per load level."""

    points: List[SweepPoint]
    policy_names: List[str]

    def totals(self) -> Dict[str, List[float]]:
        """``policy -> total loss per sweep point``."""
        return {
            name: [p.comparison.mean_total_loss(name) for p in self.points]
            for name in self.policy_names
        }

    def render(self) -> str:
        headers = ["load scale"] + self.policy_names
        rows = []
        for point in self.points:
            row: List[object] = [f"{point.parameter:.2f}"]
            for name in self.policy_names:
                row.append(point.comparison.mean_total_loss(name))
            rows.append(row)
        return format_table(
            headers, rows,
            title="E6 — mean total loss per allocation policy across load",
        )


def run_policy_sweep(
    load_scales: Sequence[float] = (0.6, 1.0, 1.4),
    budget: Optional[int] = None,
    replications: int = 5,
    duration: float = 1_500.0,
    arch_seed: Optional[int] = None,
    sizer_kwargs: dict | None = None,
    context: Optional[ExecutionContext] = None,
    scenario=None,
) -> PolicySweepResult:
    """E6: uniform / proportional / analytic / CTMDP across load levels.

    ``scenario`` selects the architecture family (default netproc); the
    load axis rebuilds the scenario's topology at each scale, and
    ``budget`` defaults to the scenario's declared budget.
    """
    from repro.experiments.common import scenario_setup

    spec, context, merged_sizer = scenario_setup(
        scenario, context, sizer_kwargs
    )
    budget = spec.default_budget if budget is None else budget
    factories = {
        "uniform": UniformSizing,
        "proportional": ProportionalSizing,
        "analytic": AnalyticGreedySizing,
        "ctmdp": lambda: CTMDPSizing(**(merged_sizer or {})),
    }
    points = load_sweep(
        topology_factory=lambda scale: spec.topology(
            arch_seed=arch_seed, load_scale=scale
        ),
        load_scales=load_scales,
        budget=budget,
        policy_factories=factories,
        replications=replications,
        duration=duration,
        context=context,
    )
    return PolicySweepResult(
        points=points, policy_names=list(factories)
    )
