"""A small leveled logger for CLI and fleet runtime output.

The CLI's dist paths used raw ``print`` for progress and summaries,
which made fleet runs unscriptable without stdout scraping.  This
module is the replacement: everything human-oriented goes to *stderr*
through :func:`info`/:func:`detail`/:func:`warn`, levels are set once
from ``--quiet``/``-v``, and stdout stays reserved for machine output
(JSON artifacts, ``obs dump``).

Not :mod:`logging`: no handlers, no formatters, no global config
surface — three levels and a stream is all the runtime needs, and a
flat module keeps import cost nil for library users who never log.
"""

from __future__ import annotations

import sys
from typing import Any, Optional, TextIO

__all__ = [
    "QUIET",
    "INFO",
    "DETAIL",
    "set_level",
    "get_level",
    "info",
    "detail",
    "warn",
]

QUIET = 0  # warnings only
INFO = 1  # default: progress summaries, fleet/journal lines
DETAIL = 2  # -v: per-item progress, worker chatter

_level = INFO
#: None means "whatever sys.stderr currently is" — resolved per call so
#: pytest's capture (which swaps sys.stderr) sees the output.
_stream: Optional[TextIO] = None


def set_level(level: int) -> None:
    global _level
    _level = level


def get_level() -> int:
    return _level


def set_stream(stream: Optional[TextIO]) -> None:
    """Redirect log output; ``None`` restores the live-stderr default."""
    global _stream
    _stream = stream


def _emit(message: str) -> None:
    stream = _stream if _stream is not None else sys.stderr
    print(message, file=stream, flush=True)


def info(message: str, *args: Any) -> None:
    """Default-level output: summaries, one-line results."""
    if _level >= INFO:
        _emit(message % args if args else message)


def detail(message: str, *args: Any) -> None:
    """Verbose output (``-v``): per-item progress, worker chatter."""
    if _level >= DETAIL:
        _emit(message % args if args else message)


def warn(message: str, *args: Any) -> None:
    """Always shown, even under ``--quiet``."""
    if _level >= QUIET:
        _emit("warning: " + (message % args if args else message))
