"""The fleet observatory: a stdlib asyncio HTTP service over ``obs``.

One :class:`ObsServer` exposes the broker's existing telemetry — the
very same :meth:`~repro.dist.queue.Broker.obs_snapshot` dict that
``repro dist top`` and ``repro obs dump`` render — to anything that
speaks HTTP:

========== ==========================================================
``/``          the single-file live dashboard (``obs.dashboard``)
``/healthz``   liveness + broker reachability (200 ok / 503 stale)
``/snapshot``  the latest full fleet snapshot as JSON
``/metrics``   Prometheus text exposition v0.0.4 (``obs.promexport``)
``/events``    Server-Sent Events: one ``snapshot`` event per sample,
               with counter deltas, backfilled from the broker-side
               history ring via ``Last-Event-ID`` or ``?since=N``
========== ==========================================================

Two deployment modes, same server:

* **in-process** (``repro dist serve --http PORT``) — a
  :class:`LocalBrokerSource` calls the :class:`Broker` object directly,
  no extra sockets between sampler and queue.
* **standalone** (``repro serve --broker host:port``) — a
  :class:`RemoteBrokerSource` samples over the manager RPC through a
  :class:`~repro.dist.executor.DistExecutor`, inheriting its
  ``RetryPolicy``-wrapped reconnects.  When the broker stays gone the
  service *degrades instead of dying*: ``/healthz`` flips to 503,
  ``/snapshot`` and ``/metrics`` keep serving the last snapshot marked
  ``stale`` (``repro_scrape_stale 1``), SSE clients get a ``status``
  event — and everything recovers by itself once sampling succeeds
  again.

The HTTP side is deliberately minimal (GET only, ``Connection:
close`` except for the event stream) — it is an observability
endpoint, not a web framework.  Broker RPCs never run on the event
loop: they are funneled through a dedicated single-thread executor,
both to keep the loop responsive and because manager proxies must not
be shared across concurrently calling threads.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import ReproError
from repro.obs import log
from repro.obs.dashboard import DASHBOARD_HTML
from repro.obs.history import counter_deltas
from repro.obs.promexport import render_prometheus

__all__ = ["ObsServer", "LocalBrokerSource", "RemoteBrokerSource"]

#: Sampling cadence default (seconds) — also the dashboard's refresh.
DEFAULT_INTERVAL = 2.0

#: SSE keepalive comment cadence: detects dead client connections.
_KEEPALIVE = 15.0


class LocalBrokerSource:
    """Sample a :class:`~repro.dist.queue.Broker` living in-process."""

    def __init__(self, broker) -> None:
        self._broker = broker

    def describe(self) -> str:
        return "in-process broker"

    def sample(self) -> Dict[str, Any]:
        return self._broker.obs_sample()

    def history(
        self, since: int = 0, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        return self._broker.obs_history(since, limit)


class RemoteBrokerSource:
    """Sample a remote broker over the manager RPC.

    Built on :class:`~repro.dist.executor.DistExecutor`, so every
    sample inherits its retry policy: transient refusals are retried
    with backoff and a torn connection is re-dialed from scratch.  A
    broker that stays gone raises
    :class:`~repro.errors.BrokerUnavailableError`, which the server
    translates into stale-data mode rather than an exit.
    """

    def __init__(self, address, authkey=None, retry=None) -> None:
        from repro.dist.executor import DistExecutor
        from repro.dist.queue import DEFAULT_AUTHKEY

        kwargs: Dict[str, Any] = {
            "authkey": DEFAULT_AUTHKEY if authkey is None else authkey,
        }
        if retry is not None:
            kwargs["retry"] = retry
        self._executor = DistExecutor(address, **kwargs)

    def describe(self) -> str:
        host, port = self._executor.address
        return "broker at %s:%s" % (host, port)

    def sample(self) -> Dict[str, Any]:
        return self._executor.obs_sample()

    def history(
        self, since: int = 0, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        return self._executor.obs_history(since, limit)


class ObsServer:
    """The HTTP observability service (see module docstring).

    Parameters
    ----------
    source:
        A :class:`LocalBrokerSource` or :class:`RemoteBrokerSource`.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (tests), the
        real one is :attr:`address` after start.
    interval:
        Sampling cadence in seconds; also the SSE event cadence.
    stale_after:
        Age (seconds) past which the served data is marked stale and
        ``/healthz`` degrades; default ``max(3 * interval, 5)``.
    """

    def __init__(
        self,
        source,
        host: str = "127.0.0.1",
        port: int = 0,
        interval: float = DEFAULT_INTERVAL,
        stale_after: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ReproError(f"interval must be > 0, got {interval}")
        self.source = source
        self.host = host
        self.port = port
        self.interval = float(interval)
        self.stale_after = (
            float(stale_after)
            if stale_after is not None
            else max(3.0 * self.interval, 5.0)
        )
        self.address: Optional[Tuple[str, int]] = None
        # Sampler state, guarded by _state_lock (the sampler thread pool
        # and request handlers both read it).
        self._state_lock = threading.Lock()
        self._latest: Optional[Dict[str, Any]] = None
        self._previous: Optional[Dict[str, Any]] = None
        self._sampled_at: Optional[float] = None
        self._broker_ok = False
        self._samples = 0
        self._failures = 0
        # Local mirror of sampled entries: SSE backfill that works even
        # when the broker (and its ring) is unreachable.
        self._mirror: List[Dict[str, Any]] = []
        self._mirror_cap = 512
        self._subscribers: List[asyncio.Queue] = []
        # All broker RPCs go through this one thread (manager proxies
        # are not safe under concurrent multi-thread use, and a slow
        # RPC must not stall the accept loop).
        self._rpc_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-obs-rpc"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._sampler_task: Optional[asyncio.Task] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle ------------------------------------------------------

    def start_in_thread(self) -> "ObsServer":
        """Run the service on a daemon thread; returns ``self``."""
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-obs-http", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise ReproError(
                f"observability server failed to start on "
                f"{self.host}:{self.port}: {self._startup_error!r}"
            )
        if self.address is None:
            raise ReproError(
                "observability server did not start within 10s"
            )
        return self

    def serve_forever(self) -> None:
        """Run the service in this thread (blocks until stopped)."""
        self._run_loop()
        if self._startup_error is not None:
            raise ReproError(
                f"observability server failed to start on "
                f"{self.host}:{self.port}: {self._startup_error!r}"
            )

    def stop(self) -> None:
        """Stop sampling, close the listener, end the thread."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._begin_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._rpc_pool.shutdown(wait=False)

    def _begin_shutdown(self) -> None:
        if self._sampler_task is not None:
            self._sampler_task.cancel()
        for queue in list(self._subscribers):
            queue.put_nowait(None)  # wake handlers so they close
        if self._server is not None:
            self._server.close()
        assert self._loop is not None
        self._loop.stop()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            try:
                self._server = loop.run_until_complete(
                    asyncio.start_server(
                        self._handle_connection, self.host, self.port
                    )
                )
            except OSError as exc:
                self._startup_error = exc
                return
            sockets = self._server.sockets or ()
            for sock in sockets:
                self.address = sock.getsockname()[:2]
                break
            self._sampler_task = loop.create_task(self._sampler())
            self._started.set()
            log.info(
                "obs server listening on http://%s:%s/ (%s)",
                self.address[0],
                self.address[1],
                self.source.describe(),
            )
            loop.run_forever()
        finally:
            self._started.set()
            try:
                if self._server is not None:
                    self._server.close()
                    loop.run_until_complete(self._server.wait_closed())
                pending = [
                    t for t in asyncio.all_tasks(loop) if not t.done()
                ]
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                loop.close()
                self._loop = None

    # -- sampling -------------------------------------------------------

    async def _sampler(self) -> None:
        """Sample the broker forever, fanning events to subscribers."""
        while True:
            await self._sample_once()
            await asyncio.sleep(self.interval)

    async def _sample_once(self) -> bool:
        assert self._loop is not None
        try:
            snapshot = await self._loop.run_in_executor(
                self._rpc_pool, self.source.sample
            )
        except Exception as exc:  # broker gone: degrade, never die
            transitioned = False
            with self._state_lock:
                if self._broker_ok or self._samples == 0:
                    transitioned = self._broker_ok
                self._broker_ok = False
                self._failures += 1
            if transitioned:
                log.info(
                    "obs server: %s unreachable (%r); serving stale data",
                    self.source.describe(),
                    exc,
                )
                self._publish(
                    {
                        "event": "status",
                        "data": {"broker": "unreachable"},
                        "id": None,
                    }
                )
            return False
        with self._state_lock:
            previous = self._latest
            self._previous = previous
            self._latest = snapshot
            self._sampled_at = time.monotonic()
            self._broker_ok = True
            self._samples += 1
            self._mirror.append(snapshot)
            if len(self._mirror) > self._mirror_cap:
                del self._mirror[: -self._mirror_cap]
        payload = dict(snapshot)
        payload["stale"] = False
        payload["delta"] = counter_deltas(previous, snapshot)
        self._publish(
            {
                "event": "snapshot",
                "data": payload,
                "id": snapshot.get("seq"),
            }
        )
        return True

    def _publish(self, event: Dict[str, Any]) -> None:
        for queue in list(self._subscribers):
            queue.put_nowait(event)

    def _current(self) -> Tuple[Optional[Dict[str, Any]], bool, float]:
        """``(snapshot, stale, age_seconds)`` of the served view."""
        with self._state_lock:
            snapshot = self._latest
            sampled_at = self._sampled_at
            broker_ok = self._broker_ok
        if snapshot is None or sampled_at is None:
            return None, True, float("inf")
        age = time.monotonic() - sampled_at
        stale = (not broker_ok) or age > self.stale_after
        return snapshot, stale, age

    # -- HTTP plumbing --------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            request = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=10.0
            )
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            asyncio.TimeoutError,
            ConnectionError,
        ):
            writer.close()
            return
        try:
            head = request.decode("latin-1").split("\r\n")
            method, target, _version = head[0].split(" ", 2)
            headers = {}
            for line in head[1:]:
                if ":" in line:
                    key, _, value = line.partition(":")
                    headers[key.strip().lower()] = value.strip()
        except ValueError:
            await self._respond(
                writer, 400, "text/plain; charset=utf-8", b"bad request\n"
            )
            return
        if method != "GET":
            await self._respond(
                writer,
                405,
                "text/plain; charset=utf-8",
                b"only GET is supported\n",
            )
            return
        parts = urlsplit(target)
        try:
            await self._route(writer, parts.path, parts.query, headers)
        except ConnectionError:
            pass
        finally:
            if not writer.is_closing():
                writer.close()

    async def _route(self, writer, path, query, headers) -> None:
        if path == "/":
            await self._respond(
                writer,
                200,
                "text/html; charset=utf-8",
                DASHBOARD_HTML.encode("utf-8"),
            )
        elif path == "/healthz":
            await self._serve_healthz(writer)
        elif path == "/snapshot":
            await self._serve_snapshot(writer)
        elif path == "/metrics":
            await self._serve_metrics(writer)
        elif path == "/events":
            await self._serve_events(writer, query, headers)
        else:
            await self._respond(
                writer,
                404,
                "text/plain; charset=utf-8",
                b"unknown path; try /, /healthz, /snapshot, /metrics, "
                b"/events\n",
            )

    async def _respond(
        self, writer, status: int, content_type: str, body: bytes
    ) -> None:
        reasons = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            503: "Service Unavailable",
        }
        head = (
            "HTTP/1.1 %d %s\r\n"
            "Content-Type: %s\r\n"
            "Content-Length: %d\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n"
            "\r\n" % (status, reasons[status], content_type, len(body))
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- endpoints ------------------------------------------------------

    async def _serve_healthz(self, writer) -> None:
        snapshot, stale, age = self._current()
        with self._state_lock:
            body = {
                "status": "ok" if (snapshot and not stale) else "stale",
                "broker": "ok" if self._broker_ok else "unreachable",
                "source": self.source.describe(),
                "age_seconds": None if snapshot is None else age,
                "samples": self._samples,
                "failures": self._failures,
            }
        await self._respond(
            writer,
            200 if body["status"] == "ok" else 503,
            "application/json",
            (json.dumps(body) + "\n").encode("utf-8"),
        )

    async def _serve_snapshot(self, writer) -> None:
        await self._sample_once()  # serve this instant when reachable
        snapshot, stale, age = self._current()
        if snapshot is None:
            await self._respond(
                writer,
                503,
                "application/json",
                b'{"error": "no snapshot sampled yet"}\n',
            )
            return
        payload = dict(snapshot)
        payload["stale"] = stale
        payload["age_seconds"] = age
        await self._respond(
            writer,
            200,
            "application/json",
            (json.dumps(payload) + "\n").encode("utf-8"),
        )

    async def _serve_metrics(self, writer) -> None:
        await self._sample_once()  # a scrape reads this instant's truth
        snapshot, stale, age = self._current()
        if snapshot is None:
            await self._respond(
                writer,
                503,
                "text/plain; charset=utf-8",
                b"# no snapshot sampled yet\n",
            )
            return
        text = render_prometheus(snapshot, stale=stale, age_seconds=age)
        await self._respond(
            writer,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            text.encode("utf-8"),
        )

    async def _serve_events(self, writer, query, headers) -> None:
        """The SSE stream: ring backfill, then live samples."""
        params = parse_qs(query)
        since: Optional[int] = None
        if "since" in params:
            try:
                since = int(params["since"][0])
            except ValueError:
                since = None
        elif "last-event-id" in headers:
            try:
                since = int(headers["last-event-id"])
            except ValueError:
                since = None
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: keep-alive\r\n"
            b"\r\n"
        )
        await writer.drain()
        queue: asyncio.Queue = asyncio.Queue()
        # Subscribe *before* backfilling so no sample lands between the
        # backfill read and the live tail; duplicates are filtered by
        # seq below.
        self._subscribers.append(queue)
        last_seq = 0
        try:
            if since is not None:
                for entry in await self._backfill(since):
                    seq = entry.get("seq", 0)
                    payload = dict(entry)
                    payload["stale"] = False
                    payload.setdefault("delta", {})
                    await self._write_event(
                        writer, "snapshot", payload, seq
                    )
                    last_seq = max(last_seq, seq)
            while True:
                try:
                    event = await asyncio.wait_for(
                        queue.get(), timeout=_KEEPALIVE
                    )
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    continue
                if event is None:  # server shutting down
                    break
                seq = event.get("id")
                if (
                    event["event"] == "snapshot"
                    and seq is not None
                    and seq <= last_seq
                ):
                    continue  # already delivered by the backfill
                await self._write_event(
                    writer, event["event"], event["data"], seq
                )
                if seq is not None:
                    last_seq = max(last_seq, seq)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                self._subscribers.remove(queue)
            except ValueError:
                pass

    async def _backfill(self, since: int) -> List[Dict[str, Any]]:
        """History entries after ``since`` — ring first, mirror second."""
        assert self._loop is not None
        try:
            return await self._loop.run_in_executor(
                self._rpc_pool, lambda: self.source.history(since)
            )
        except Exception:
            with self._state_lock:
                return [
                    s for s in self._mirror if s.get("seq", 0) > since
                ]

    async def _write_event(self, writer, event, data, seq) -> None:
        lines = []
        if seq is not None:
            lines.append("id: %s" % seq)
        lines.append("event: %s" % event)
        lines.append("data: %s" % json.dumps(data))
        writer.write(("\n".join(lines) + "\n\n").encode("utf-8"))
        await writer.drain()
