"""The single-file live dashboard the HTTP service serves at ``/``.

One HTML string, zero build step, zero external assets: the page is
plain HTML + CSS custom properties + a vanilla-JS ``EventSource``
against ``/events`` (with ``?since=0`` so the broker-side history ring
backfills the sparklines before the first live sample arrives; browser
reconnects resume via the standard ``Last-Event-ID`` header).

Design notes (kept deliberately boring): stat tiles with 2px-line
sparklines, one series each (so no legends), text in ink tokens rather
than series colors, light/dark from ``prefers-color-scheme`` off the
same custom-property block, and a status banner — icon plus label,
never color alone — when the stream drops or the service reports the
broker unreachable.  Fleet counters are cumulative by contract (reaped
workers keep their totals), so rates are derived from deltas between
consecutive samples and the tiles never animate backwards.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro fleet</title>
<style>
  :root {
    color-scheme: light;
    --surface-1: #fcfcfb;
    --page: #f9f9f7;
    --ink-primary: #0b0b0b;
    --ink-secondary: #52514e;
    --ink-muted: #898781;
    --grid: #e1e0d9;
    --baseline: #c3c2b7;
    --border: rgba(11, 11, 11, 0.10);
    --series-1: #2a78d6;
    --status-critical: #d03b3b;
    --status-good: #0ca30c;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --page: #0d0d0d;
      --ink-primary: #ffffff;
      --ink-secondary: #c3c2b7;
      --ink-muted: #898781;
      --grid: #2c2c2a;
      --baseline: #383835;
      --border: rgba(255, 255, 255, 0.10);
      --series-1: #3987e5;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0;
    background: var(--page);
    color: var(--ink-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  header {
    display: flex;
    align-items: baseline;
    gap: 12px;
    padding: 16px 20px 8px;
  }
  header h1 { font-size: 16px; font-weight: 600; margin: 0; }
  #status {
    font-size: 13px;
    color: var(--ink-secondary);
  }
  #status.bad { color: var(--status-critical); font-weight: 600; }
  .tiles {
    display: grid;
    grid-template-columns: repeat(auto-fill, minmax(220px, 1fr));
    gap: 12px;
    padding: 8px 20px 20px;
  }
  .tile {
    background: var(--surface-1);
    border: 1px solid var(--border);
    border-radius: 8px;
    padding: 12px 14px 10px;
  }
  .tile .label { font-size: 12px; color: var(--ink-secondary); }
  .tile .value {
    font-size: 26px;
    font-weight: 600;
    margin: 2px 0 0;
  }
  .tile .sub {
    font-size: 11.5px;
    color: var(--ink-muted);
    min-height: 16px;
  }
  .tile canvas { display: block; width: 100%; height: 36px; margin-top: 6px; }
  table#workers {
    border-collapse: collapse;
    margin: 0 20px 24px;
    font-variant-numeric: tabular-nums;
  }
  #workers th, #workers td {
    text-align: left;
    padding: 4px 14px 4px 0;
    border-bottom: 1px solid var(--grid);
    font-size: 13px;
  }
  #workers th { color: var(--ink-muted); font-weight: 500; }
  #workers td.dead { color: var(--ink-muted); }
  .section-label {
    margin: 4px 20px 6px;
    font-size: 12px;
    color: var(--ink-secondary);
  }
</style>
</head>
<body>
<header>
  <h1>repro fleet</h1>
  <span id="status">connecting&hellip;</span>
</header>
<div class="tiles" id="tiles"></div>
<div class="section-label">Workers</div>
<table id="workers">
  <thead>
    <tr><th>worker</th><th>state</th><th>jobs</th><th>failed</th></tr>
  </thead>
  <tbody></tbody>
</table>
<script>
"use strict";
var MAX_POINTS = 120;

// Tile registry: each derives one number per snapshot; "rate" tiles
// also keep the cumulative source so deltas are computed, never raw
// counters (fleet totals are cumulative and must not read as levels).
var TILES = [
  {id: "jobsps", label: "Jobs / s",
   kind: "rate", source: function (s) {
     return (s.fleet.counters["worker.jobs"] || 0);
   }},
  {id: "depth", label: "Queue depth",
   kind: "level", source: function (s) {
     return (s.queue.pending || 0) + (s.queue.leased || 0);
   }},
  {id: "hitrate", label: "Cache hit rate",
   kind: "ratio", num: function (s) { return s.cache.hits || 0; },
   den: function (s) { return s.cache.gets || 0; }},
  {id: "steals", label: "Steals",
   kind: "counter", source: function (s) { return s.queue.steals || 0; }},
  {id: "reaped", label: "Reaped jobs",
   kind: "counter", source: function (s) {
     return s.queue.reaped_jobs || 0;
   }},
  {id: "workersup", label: "Workers alive",
   kind: "level", source: function (s) { return s.queue.workers || 0; }}
];

var state = {prev: null, points: {}, last: {}};
TILES.forEach(function (t) { state.points[t.id] = []; });

function fmt(value) {
  if (value === null || value === undefined || isNaN(value)) return "\\u2013";
  if (Math.abs(value) >= 1e6) return (value / 1e6).toFixed(1) + "M";
  if (Math.abs(value) >= 1e4) return (value / 1e3).toFixed(1) + "K";
  if (value !== Math.round(value)) return value.toFixed(2);
  return String(value);
}

function buildTiles() {
  var host = document.getElementById("tiles");
  TILES.forEach(function (t) {
    var tile = document.createElement("div");
    tile.className = "tile";
    tile.innerHTML =
      '<div class="label">' + t.label + '</div>' +
      '<div class="value" id="v-' + t.id + '">\\u2013</div>' +
      '<div class="sub" id="s-' + t.id + '"></div>' +
      '<canvas id="c-' + t.id + '" width="220" height="36"></canvas>';
    host.appendChild(tile);
    var canvas = tile.querySelector("canvas");
    canvas.addEventListener("mousemove", function (ev) {
      var pts = state.points[t.id];
      if (!pts.length) return;
      var rect = canvas.getBoundingClientRect();
      var i = Math.min(pts.length - 1, Math.max(0, Math.round(
        (ev.clientX - rect.left) / rect.width * (pts.length - 1))));
      document.getElementById("s-" + t.id).textContent =
        fmt(pts[i]) + " (sample " + (i + 1 - pts.length) + ")";
    });
    canvas.addEventListener("mouseleave", function () {
      document.getElementById("s-" + t.id).textContent = "";
    });
  });
}

function css(name) {
  return getComputedStyle(document.documentElement)
    .getPropertyValue(name).trim();
}

function drawSpark(id) {
  var canvas = document.getElementById("c-" + id);
  var pts = state.points[id];
  var ctx = canvas.getContext("2d");
  var w = canvas.width = canvas.clientWidth || 220;
  var h = canvas.height;
  ctx.clearRect(0, 0, w, h);
  ctx.strokeStyle = css("--baseline");
  ctx.lineWidth = 1;
  ctx.beginPath();
  ctx.moveTo(0, h - 0.5);
  ctx.lineTo(w, h - 0.5);
  ctx.stroke();
  if (pts.length < 2) return;
  var max = Math.max.apply(null, pts), min = Math.min.apply(null, pts);
  if (max === min) { max += 1; }
  var pad = 4;
  function x(i) { return pad + (w - 2 * pad) * i / (pts.length - 1); }
  function y(v) {
    return pad + (h - 2 * pad) * (1 - (v - min) / (max - min));
  }
  ctx.strokeStyle = css("--series-1");
  ctx.lineWidth = 2;
  ctx.lineJoin = "round";
  ctx.lineCap = "round";
  ctx.beginPath();
  pts.forEach(function (v, i) {
    if (i === 0) ctx.moveTo(x(i), y(v)); else ctx.lineTo(x(i), y(v));
  });
  ctx.stroke();
  // End marker: >=8px dot with a 2px surface ring so it stays legible
  // where it sits on the line.
  var lastX = x(pts.length - 1), lastY = y(pts[pts.length - 1]);
  ctx.fillStyle = css("--surface-1");
  ctx.beginPath();
  ctx.arc(lastX, lastY, 6, 0, 2 * Math.PI);
  ctx.fill();
  ctx.fillStyle = css("--series-1");
  ctx.beginPath();
  ctx.arc(lastX, lastY, 4, 0, 2 * Math.PI);
  ctx.fill();
}

function tileValue(t, snap) {
  if (t.kind === "ratio") {
    var num = t.num(snap), den = t.den(snap);
    var pn = state.prev ? t.num(state.prev) : 0;
    var pd = state.prev ? t.den(state.prev) : 0;
    // Windowed hit rate when traffic moved, cumulative otherwise.
    if (den - pd > 0) return (num - pn) / (den - pd) * 100;
    return den > 0 ? num / den * 100 : null;
  }
  if (t.kind === "rate") {
    if (!state.prev) return null;
    var dt = snap.time.wall - state.prev.time.wall;
    if (dt <= 0) return null;
    var delta = t.source(snap) - t.source(state.prev);
    return delta >= 0 ? delta / dt : null;
  }
  return t.source(snap);
}

function renderWorkers(snap, nowMono) {
  var body = document.querySelector("#workers tbody");
  var rows = Object.keys(snap.workers || {}).sort().map(function (id) {
    var rec = snap.workers[id];
    var dead = !rec.alive;
    var age = rec.last_beat ? (nowMono - rec.last_beat) : null;
    var cls = dead ? ' class="dead"' : "";
    var stateText = dead
      ? "\\u26a0 gone" + (age !== null ? " " + age.toFixed(0) + "s" : "")
      : "up";
    return "<tr>" +
      "<td" + cls + ">" + id + "</td>" +
      "<td" + cls + ">" + stateText + "</td>" +
      "<td" + cls + ">" + fmt(rec.counters["worker.jobs"] || 0) + "</td>" +
      "<td" + cls + ">" + fmt(rec.counters["worker.failed"] || 0) + "</td>" +
      "</tr>";
  });
  body.innerHTML = rows.join("");
}

function onSnapshot(snap) {
  TILES.forEach(function (t) {
    var value = tileValue(t, snap);
    if (value !== null) {
      var pts = state.points[t.id];
      pts.push(value);
      if (pts.length > MAX_POINTS) pts.shift();
      state.last[t.id] = value;
    }
    var el = document.getElementById("v-" + t.id);
    var shown = state.last[t.id];
    el.textContent = t.kind === "ratio" && shown !== undefined
      ? fmt(shown) + "%" : fmt(shown);
    drawSpark(t.id);
  });
  renderWorkers(snap, snap.time.monotonic);
  state.prev = snap;
}

function setStatus(text, bad) {
  var el = document.getElementById("status");
  el.textContent = text;
  el.className = bad ? "bad" : "";
}

buildTiles();
var source = new EventSource("/events?since=0");
source.addEventListener("snapshot", function (ev) {
  var snap = JSON.parse(ev.data);
  if (snap.stale) {
    setStatus("\\u26a0 stale \\u2014 broker unreachable", true);
  } else {
    setStatus("live \\u00b7 seq " + (snap.seq || 0), false);
  }
  onSnapshot(snap);
});
source.addEventListener("status", function (ev) {
  var info = JSON.parse(ev.data);
  if (info.broker === "unreachable") {
    setStatus("\\u26a0 stale \\u2014 broker unreachable", true);
  }
});
source.onerror = function () {
  setStatus("\\u26a0 stream lost \\u2014 reconnecting\\u2026", true);
};
</script>
</body>
</html>
"""
