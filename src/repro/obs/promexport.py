"""Prometheus text exposition (v0.0.4) rendered from ``obs_snapshot()``.

One function, one direction: :func:`render_prometheus` turns the fleet
snapshot dict — the *same* dict ``repro dist top`` and ``repro obs
dump`` consume — into the plain-text format every Prometheus-compatible
scraper speaks.  Per the ROADMAP's "one metrics path" rule there is no
separate collector registry: whatever ``obs_snapshot()`` says at scrape
time is what the exposition says.

Naming scheme (documented in ``docs/observability.md``):

* ``repro_queue_*`` / ``repro_cache_*`` — broker queue and shared-cache
  stats; monotone counts carry the ``_total`` suffix, levels are gauges.
* ``repro_scheduler_*`` — cost-scheduler gauges (lease sizing etc.).
* ``repro_worker_alive{worker=}`` and
  ``repro_worker_counter_total{worker=,counter=}`` /
  ``repro_worker_gauge{worker=,gauge=}`` — the per-worker fleet view;
  the source counter/gauge name rides in a label so new worker metrics
  never mint new exposition families.
* ``repro_fleet_counter_total{counter=}`` — fleet-wide sums (dead
  workers included, so totals never shrink), with
  ``scenario.replications.<name>`` / ``scenario.blocks.<name>``
  counters split out as
  ``repro_fleet_scenario_replications_total{scenario=}``.
* ``repro_broker_*`` summaries — broker histograms with p50/p95/p99
  ``quantile`` samples plus ``_sum``/``_count``.
* ``repro_scrape_stale`` / ``repro_scrape_age_seconds`` — set by the
  HTTP service when it is serving a cached snapshot because the broker
  stopped answering.

:func:`parse_prometheus` is the strict counterpart used by the
conformance tests (and handy for scripting against ``/metrics``): it
rejects malformed names, labels, escapes, type lines, and duplicate
samples rather than guessing.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["render_prometheus", "parse_prometheus", "PromFormatError"]

#: Queue/cache keys that are monotone counts (``_total`` counters);
#: every other numeric key in those sections is a level (gauge).
_QUEUE_COUNTERS = (
    "completed",
    "steals",
    "reaped_jobs",
    "dropped_batches",
    "lease_grants",
    "lease_jobs",
    "lease_resizes",
    "pinned_leases",
    "batched_uploads",
    "batched_jobs",
)
_CACHE_COUNTERS = ("gets", "hits", "puts", "evictions")

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")

_SCENARIO_PREFIXES = (
    ("scenario.replications.", "repro_fleet_scenario_replications_total"),
    ("scenario.blocks.", "repro_fleet_scenario_blocks_total"),
)


class PromFormatError(ValueError):
    """A ``/metrics`` body that violates the text exposition format."""


def _sanitize(name: str) -> str:
    """A snapshot key as a legal metric-name fragment."""
    return _SANITIZE_RE.sub("_", name)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: Any) -> str:
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if math.isnan(number):
        return "NaN"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class _Writer:
    """Accumulates families in order, one HELP/TYPE block each."""

    def __init__(self) -> None:
        self._lines: List[str] = []
        self._seen: set = set()

    def family(self, name: str, kind: str, help_text: str) -> None:
        if name in self._seen:
            return
        self._seen.add(name)
        self._lines.append("# HELP %s %s" % (name, help_text))
        self._lines.append("# TYPE %s %s" % (name, kind))

    def sample(
        self,
        name: str,
        value: Any,
        labels: Optional[Dict[str, str]] = None,
        suffix: str = "",
    ) -> None:
        if labels:
            rendered = ",".join(
                '%s="%s"' % (key, _escape_label(str(labels[key])))
                for key in labels
            )
            self._lines.append(
                "%s%s{%s} %s" % (name, suffix, rendered, _format_value(value))
            )
        else:
            self._lines.append(
                "%s%s %s" % (name, suffix, _format_value(value))
            )

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"


def render_prometheus(
    snapshot: Dict[str, Any],
    stale: bool = False,
    age_seconds: Optional[float] = None,
) -> str:
    """The fleet snapshot as Prometheus text exposition v0.0.4.

    ``stale``/``age_seconds`` describe the *sample*, not the fleet: the
    standalone HTTP service sets them when the broker has stopped
    answering and the snapshot being exposed is the last one it saw.
    """
    out = _Writer()

    for key, value in snapshot.get("queue", {}).items():
        if not _is_number(value):
            continue
        name = "repro_queue_%s" % _sanitize(key)
        if key in _QUEUE_COUNTERS:
            out.family(
                name + "_total", "counter", "Broker queue counter: %s." % key
            )
            out.sample(name + "_total", value)
        else:
            out.family(name, "gauge", "Broker queue level: %s." % key)
            out.sample(name, value)

    for key, value in snapshot.get("cache", {}).items():
        if not _is_number(value):
            continue
        name = "repro_cache_%s" % _sanitize(key)
        if key in _CACHE_COUNTERS:
            out.family(
                name + "_total", "counter", "Shared cache counter: %s." % key
            )
            out.sample(name + "_total", value)
        else:
            out.family(name, "gauge", "Shared cache level: %s." % key)
            out.sample(name, value)

    for key, value in snapshot.get("scheduler", {}).items():
        if not _is_number(value):
            continue  # schedule strings, None ratios, the cost sub-dict
        name = "repro_scheduler_%s" % _sanitize(key)
        out.family(name, "gauge", "Cost scheduler gauge: %s." % key)
        out.sample(name, value)

    workers = snapshot.get("workers", {})
    if workers:
        out.family(
            "repro_worker_alive",
            "gauge",
            "1 while the worker heartbeats, 0 once reaped.",
        )
        for worker_id in sorted(workers):
            out.sample(
                "repro_worker_alive",
                1 if workers[worker_id].get("alive") else 0,
                {"worker": worker_id},
            )
        out.family(
            "repro_worker_counter_total",
            "counter",
            "Per-worker shipped counter totals (name in the counter label).",
        )
        for worker_id in sorted(workers):
            counters = workers[worker_id].get("counters", {})
            for counter_name in sorted(counters):
                if not _is_number(counters[counter_name]):
                    continue
                out.sample(
                    "repro_worker_counter_total",
                    counters[counter_name],
                    {"worker": worker_id, "counter": counter_name},
                )
        out.family(
            "repro_worker_gauge",
            "gauge",
            "Per-worker shipped gauge levels (name in the gauge label).",
        )
        for worker_id in sorted(workers):
            gauges = workers[worker_id].get("gauges", {})
            for gauge_name in sorted(gauges):
                if not _is_number(gauges[gauge_name]):
                    continue
                out.sample(
                    "repro_worker_gauge",
                    gauges[gauge_name],
                    {"worker": worker_id, "gauge": gauge_name},
                )

    fleet_counters = snapshot.get("fleet", {}).get("counters", {})
    plain: Dict[str, Any] = {}
    scenario_rows: List[Tuple[str, str, Any]] = []
    for counter_name in sorted(fleet_counters):
        value = fleet_counters[counter_name]
        if not _is_number(value):
            continue
        for prefix, family in _SCENARIO_PREFIXES:
            if counter_name.startswith(prefix):
                scenario_rows.append(
                    (family, counter_name[len(prefix):], value)
                )
                break
        else:
            plain[counter_name] = value
    if plain:
        out.family(
            "repro_fleet_counter_total",
            "counter",
            "Fleet-wide counter sums; reaped workers keep contributing.",
        )
        for counter_name, value in plain.items():
            out.sample(
                "repro_fleet_counter_total",
                value,
                {"counter": counter_name},
            )
    for family, _scenario, _value in scenario_rows:
        out.family(
            family,
            "counter",
            "Fleet work completed, split by scenario.",
        )
    for family, scenario, value in scenario_rows:
        out.sample(family, value, {"scenario": scenario})

    histograms = snapshot.get("broker", {}).get("histograms", {})
    for hist_name in sorted(histograms):
        summary = histograms[hist_name]
        name = "repro_%s" % _sanitize(hist_name)
        out.family(
            name,
            "summary",
            "Streaming log-bucket quantiles of %s." % hist_name,
        )
        for quantile in ("p50", "p95", "p99"):
            if summary.get(quantile) is None:
                continue
            out.sample(
                name,
                summary[quantile],
                {"quantile": "0.%s" % quantile[1:]},
            )
        out.sample(name, summary.get("sum", 0.0), suffix="_sum")
        out.sample(name, summary.get("count", 0), suffix="_count")

    out.family(
        "repro_scrape_stale",
        "gauge",
        "1 when this exposition is a cached snapshot (broker unreachable).",
    )
    out.sample("repro_scrape_stale", 1 if stale else 0)
    if age_seconds is not None:
        out.family(
            "repro_scrape_age_seconds",
            "gauge",
            "Seconds since the exposed snapshot was sampled.",
        )
        out.sample("repro_scrape_age_seconds", max(age_seconds, 0.0))

    return out.text()


# ----------------------------------------------------------------------
# The strict parser (conformance tests, scripting against /metrics).

_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _parse_labels(body: str, line_no: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    position = 0
    while position < len(body):
        match = re.match(r"\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*\"", body[position:])
        if match is None:
            raise PromFormatError(
                "line %d: malformed label pair at %r" % (line_no, body[position:])
            )
        label_name = match.group(1)
        if label_name in labels:
            raise PromFormatError(
                "line %d: duplicate label %r" % (line_no, label_name)
            )
        position += match.end()
        value_chars: List[str] = []
        while True:
            if position >= len(body):
                raise PromFormatError(
                    "line %d: unterminated label value" % line_no
                )
            char = body[position]
            if char == "\\":
                if position + 1 >= len(body):
                    raise PromFormatError(
                        "line %d: dangling escape" % line_no
                    )
                escape = body[position + 1]
                if escape == "\\":
                    value_chars.append("\\")
                elif escape == '"':
                    value_chars.append('"')
                elif escape == "n":
                    value_chars.append("\n")
                else:
                    raise PromFormatError(
                        "line %d: invalid escape \\%s" % (line_no, escape)
                    )
                position += 2
            elif char == '"':
                position += 1
                break
            else:
                value_chars.append(char)
                position += 1
        labels[label_name] = "".join(value_chars)
        remainder = body[position:].lstrip()
        if remainder.startswith(","):
            position = len(body) - len(remainder) + 1
        elif remainder:
            raise PromFormatError(
                "line %d: junk after label value: %r" % (line_no, remainder)
            )
        else:
            break
    return labels


def _parse_value(token: str, line_no: int) -> float:
    if token in ("+Inf", "Inf"):
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    try:
        return float(token)
    except ValueError:
        raise PromFormatError(
            "line %d: invalid sample value %r" % (line_no, token)
        )


def parse_prometheus(text: str) -> Dict[str, Dict[str, Any]]:
    """Strictly parse a text exposition v0.0.4 body.

    Returns ``{family: {"type", "help", "samples"}}`` where ``samples``
    is a list of ``(sample_name, labels_dict, value)``.  Raises
    :class:`PromFormatError` on any violation: bad metric/label names,
    invalid escapes, a ``TYPE`` line after samples of its family, an
    unknown type, duplicate samples, or unparsable values.  Samples
    with no preceding ``TYPE`` land in an ``untyped`` family of their
    own name (legal per the format, so not an error).
    """
    families: Dict[str, Dict[str, Any]] = {}
    seen_samples: set = set()

    def family_for(sample_name: str) -> str:
        for family_name, family in families.items():
            if family["type"] == "summary" and sample_name in (
                family_name + "_sum",
                family_name + "_count",
            ):
                return family_name
            if family["type"] == "histogram" and sample_name in (
                family_name + "_bucket",
                family_name + "_sum",
                family_name + "_count",
            ):
                return family_name
            if sample_name == family_name:
                return family_name
        families[sample_name] = {
            "type": "untyped",
            "help": None,
            "samples": [],
        }
        return sample_name

    for line_no, raw_line in enumerate(text.split("\n"), start=1):
        line = raw_line.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                continue  # plain comment, legal
            if len(parts) < 3:
                raise PromFormatError(
                    "line %d: %s without a metric name" % (line_no, parts[1])
                )
            name = parts[2]
            if not _NAME_RE.match(name):
                raise PromFormatError(
                    "line %d: invalid metric name %r" % (line_no, name)
                )
            if parts[1] == "HELP":
                entry = families.setdefault(
                    name, {"type": None, "help": None, "samples": []}
                )
                if entry["help"] is not None:
                    raise PromFormatError(
                        "line %d: duplicate HELP for %s" % (line_no, name)
                    )
                entry["help"] = parts[3] if len(parts) > 3 else ""
            else:
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in _VALID_TYPES:
                    raise PromFormatError(
                        "line %d: invalid TYPE %r for %s"
                        % (line_no, kind, name)
                    )
                entry = families.setdefault(
                    name, {"type": None, "help": None, "samples": []}
                )
                if entry["type"] is not None:
                    raise PromFormatError(
                        "line %d: duplicate TYPE for %s" % (line_no, name)
                    )
                if entry["samples"]:
                    raise PromFormatError(
                        "line %d: TYPE for %s after its samples"
                        % (line_no, name)
                    )
                entry["type"] = kind
            continue

        # A sample line: name[{labels}] value [timestamp]
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)", line)
        if match is None:
            raise PromFormatError(
                "line %d: invalid sample line %r" % (line_no, line)
            )
        sample_name = match.group(1)
        rest = line[match.end():]
        labels: Dict[str, str] = {}
        if rest.startswith("{"):
            closing = rest.rfind("}")
            if closing < 0:
                raise PromFormatError(
                    "line %d: unterminated label set" % line_no
                )
            labels = _parse_labels(rest[1:closing], line_no)
            rest = rest[closing + 1:]
        tokens = rest.split()
        if len(tokens) not in (1, 2):
            raise PromFormatError(
                "line %d: expected value [timestamp], got %r"
                % (line_no, rest)
            )
        value = _parse_value(tokens[0], line_no)
        if len(tokens) == 2:
            try:
                int(tokens[1])
            except ValueError:
                raise PromFormatError(
                    "line %d: invalid timestamp %r" % (line_no, tokens[1])
                )
        key = (sample_name, tuple(sorted(labels.items())))
        if key in seen_samples:
            raise PromFormatError(
                "line %d: duplicate sample %s%s"
                % (line_no, sample_name, dict(labels))
            )
        seen_samples.add(key)
        family_name = family_for(sample_name)
        entry = families[family_name]
        if entry["type"] is None:
            entry["type"] = "untyped"
        families[family_name]["samples"].append(
            (sample_name, labels, value)
        )

    for family_name, entry in families.items():
        if entry["type"] is None:
            entry["type"] = "untyped"
    return families
