"""repro.obs — unified metrics, tracing, and fleet telemetry.

The observability layer for the whole runtime: a process-global
:class:`~repro.obs.metrics.MetricsRegistry` (counters/gauges/
histograms), span tracing into a bounded
:class:`~repro.obs.trace.FlightRecorder` with Chrome ``trace_event``
export, and a leveled logger (:mod:`repro.obs.log`).  Workers ship
metric deltas to the broker on heartbeats so ``repro dist top`` and
``repro obs dump`` see a live fleet-wide view.

Design contract — observation only:

* **Disabled is free.** ``span(...)`` returns a shared no-op singleton
  and ``counter(...)`` a shared no-op stub when the corresponding
  facility is off; the hot paths allocate nothing and take no locks
  (``tests/test_obs.py`` asserts zero allocations in the sim drain
  loop with obs off, and ``bench_obs_overhead`` tracks the cost).
* **Never load-bearing.** Metric values and spans must not feed cache
  keys, merge order, RNG state, or any other result-affecting input.
  The bitwise-determinism and chaos suites run with tracing enabled to
  enforce this.

Typical use at an instrumentation site::

    from repro import obs

    with obs.span("solver.lp_solve", scenario=name):
        solution = program.solve_adaptive(bound)
    obs.counter("solver.lp_solves").inc()
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, Optional

from . import log
from .metrics import (
    MetricsRegistry,
    NOOP_COUNTER,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
)
from .trace import DEFAULT_CAPACITY, NOOP_SPAN, FlightRecorder, Span

__all__ = [
    "counter",
    "gauge",
    "histogram",
    "span",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "enabled",
    "registry",
    "recorder",
    "snapshot",
    "export_trace",
    "install_from_env",
    "reset",
    "log",
    "MetricsRegistry",
    "FlightRecorder",
]

#: Environment knobs — workers inherit observability from the process
#: that spawned them the same way fault plans propagate
#: (``repro.faults.install_from_env``).
ENV_METRICS = "REPRO_OBS_METRICS"
ENV_TRACE = "REPRO_OBS_TRACE"

_lock = threading.Lock()

# Registries are swapped whole on enable/disable rather than toggled in
# place: a disabled registry *is* the no-op implementation, so the hot
# path never tests a flag.
_registry = MetricsRegistry(enabled=False)
_recorder: Optional[FlightRecorder] = None


# -- metrics ------------------------------------------------------------


def enable_metrics() -> MetricsRegistry:
    """Turn on metrics for this process (idempotent)."""
    global _registry
    with _lock:
        if not _registry.enabled:
            _registry = MetricsRegistry(enabled=True)
        return _registry


def disable_metrics() -> None:
    global _registry
    with _lock:
        _registry = MetricsRegistry(enabled=False)


def metrics_enabled() -> bool:
    return _registry.enabled


def registry() -> MetricsRegistry:
    """The live process registry (no-op flavoured when disabled)."""
    return _registry


def counter(name: str):
    return _registry.counter(name)


def gauge(name: str):
    return _registry.gauge(name)


def histogram(name: str):
    return _registry.histogram(name)


# -- tracing ------------------------------------------------------------


def enable_tracing(capacity: int = DEFAULT_CAPACITY) -> FlightRecorder:
    """Turn on span recording for this process (idempotent)."""
    global _recorder
    with _lock:
        if _recorder is None:
            _recorder = FlightRecorder(capacity=capacity)
        return _recorder


def disable_tracing() -> None:
    global _recorder
    with _lock:
        _recorder = None


def tracing_enabled() -> bool:
    return _recorder is not None


def recorder() -> Optional[FlightRecorder]:
    return _recorder


def span(name: str, **args: Any):
    """A timed region; the shared no-op singleton when tracing is off.

    Keyword arguments become the span's ``args`` annotations in the
    exported trace.  Sites on hot paths should pass no kwargs (the
    disabled call is then argument-free and allocation-free) and use
    ``span.set(...)`` for annotations instead.
    """
    rec = _recorder
    if rec is None:
        return NOOP_SPAN
    return Span(name, rec, args or None)


def export_trace(path: str) -> int:
    """Write recorded spans as Chrome trace JSON; returns event count."""
    rec = _recorder
    if rec is None:
        raise RuntimeError("tracing is not enabled; nothing to export")
    return rec.export(path)


# -- combined helpers ---------------------------------------------------


def enabled() -> bool:
    return metrics_enabled() or tracing_enabled()


def snapshot() -> Dict[str, Any]:
    """Local process telemetry as one JSON-compatible dict."""
    snap = _registry.snapshot()
    rec = _recorder
    snap["tracing"] = {
        "enabled": rec is not None,
        "recorded": rec.recorded if rec is not None else 0,
        "dropped": rec.dropped() if rec is not None else 0,
    }
    return snap


def install_from_env(environ: Optional[Dict[str, str]] = None) -> None:
    """Enable observability from environment variables.

    Workers are separate processes: the CLI sets :data:`ENV_METRICS` /
    :data:`ENV_TRACE` before spawning so the fleet inherits the parent's
    observability choices.  ``REPRO_OBS_TRACE`` may be ``1`` or a span
    capacity.
    """
    env = os.environ if environ is None else environ
    if env.get(ENV_METRICS, "") not in ("", "0"):
        enable_metrics()
    raw = env.get(ENV_TRACE, "")
    if raw not in ("", "0"):
        try:
            capacity = int(raw)
        except ValueError:
            capacity = DEFAULT_CAPACITY
        enable_tracing(capacity if capacity > 1 else DEFAULT_CAPACITY)


def reset() -> None:
    """Disable everything and drop recorded state (test isolation)."""
    global _registry, _recorder
    with _lock:
        _registry = MetricsRegistry(enabled=False)
        _recorder = None
    log.set_level(log.INFO)
    log.set_stream(None)
