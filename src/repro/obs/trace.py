"""Span tracing with a bounded flight recorder and Chrome export.

``span(name, **args)`` is a context manager around a timed region.
When tracing is disabled the module-level helpers in :mod:`repro.obs`
hand back the shared :data:`NOOP_SPAN` singleton — entering and
exiting it does nothing and allocates nothing, which is what keeps the
instrumented hot paths free when observability is off.

Completed spans land in a :class:`FlightRecorder`: a fixed-capacity
ring (``collections.deque(maxlen=...)``) that keeps the most recent
spans and counts how many it dropped, so a week-long fleet run cannot
grow memory without bound.  :meth:`FlightRecorder.to_chrome` renders
the ring as Chrome ``trace_event`` JSON — complete ("ph": "X") events
with microsecond timestamps — loadable directly in ``chrome://tracing``
or Perfetto.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["Span", "NOOP_SPAN", "FlightRecorder"]

DEFAULT_CAPACITY = 50_000


class _NoopSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass

    def set(self, key: str, value: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed region; records itself into a recorder on exit."""

    __slots__ = ("name", "args", "_recorder", "_start_ns")

    def __init__(
        self,
        name: str,
        recorder: "FlightRecorder",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.args = args
        self._recorder = recorder
        self._start_ns = 0

    def set(self, key: str, value: Any) -> None:
        """Attach an annotation discovered mid-span (e.g. iteration count)."""
        if self.args is None:
            self.args = {}
        self.args[key] = value

    def __enter__(self) -> "Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: Any) -> None:
        end_ns = time.perf_counter_ns()
        self._recorder.record(
            self.name, self._start_ns, end_ns - self._start_ns, self.args
        )


class FlightRecorder:
    """Bounded in-memory ring of completed spans.

    ``recorded`` counts every span ever recorded; ``len(recorder)`` is
    what the ring still holds, so ``dropped()`` is the overflow.  The
    lock only guards the deque append + counter pair (deque.append is
    itself thread-safe, but the recorded counter must move with it).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self.recorded = 0
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._spans)

    def record(
        self,
        name: str,
        start_ns: int,
        dur_ns: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        with self._lock:
            self.recorded += 1
            self._spans.append((name, start_ns, dur_ns, args))

    def dropped(self) -> int:
        return self.recorded - len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.recorded = 0

    def spans(self) -> List[tuple]:
        with self._lock:
            return list(self._spans)

    # -- export ---------------------------------------------------------

    def to_chrome(self) -> Dict[str, Any]:
        """Render the ring as a Chrome ``trace_event`` JSON document.

        Complete events ("ph": "X") with microsecond ``ts``/``dur``;
        pid/tid identify the recording process so multi-process traces
        (broker + workers each exporting) can be concatenated by merging
        their ``traceEvents`` lists.
        """
        pid = os.getpid()
        tid = threading.get_ident() & 0xFFFF
        events = []
        for name, start_ns, dur_ns, args in self.spans():
            event: Dict[str, Any] = {
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "X",
                "ts": start_ns / 1000.0,
                "dur": dur_ns / 1000.0,
                "pid": pid,
                "tid": tid,
            }
            if args:
                event["args"] = args
            events.append(event)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "recorded": self.recorded,
                "dropped": self.dropped(),
            },
        }

    def export(self, path: str) -> int:
        """Write the Chrome trace JSON to ``path``; returns event count."""
        doc = self.to_chrome()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        return len(doc["traceEvents"])
