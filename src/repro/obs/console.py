"""Rendering for ``repro dist top`` — a live fleet console.

The renderer is a pure function from broker ``obs_snapshot()`` dicts to
a text frame, so tests (and ``--once`` mode) exercise exactly what the
interactive loop draws.  The loop itself lives in
:func:`repro.cli._cmd_dist_top`; it repaints in place with ANSI
clear-screen codes — no curses dependency, works in any VT100 terminal.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

__all__ = ["render_top", "CLEAR_SCREEN"]

#: ANSI: cursor home + erase below — repaint without scrollback spam.
CLEAR_SCREEN = "\x1b[H\x1b[J"


def _rate(counters: Dict[str, int], hits_key: str, total_key: str) -> str:
    total = counters.get(total_key, 0)
    if not total:
        return "-"
    return "%.0f%%" % (100.0 * counters.get(hits_key, 0) / total)


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return "%.0f%s" % (n, unit) if unit == "B" else "%.1f%s" % (n, unit)
        n /= 1024.0
    return "%.1fGiB" % n


def _fmt_seconds(seconds: float) -> str:
    if seconds < 1.0:
        return "%.0fms" % (seconds * 1000.0)
    if seconds < 120.0:
        return "%.1fs" % seconds
    return "%.0fm" % (seconds / 60.0)


def render_top(
    snapshot: Dict[str, Any],
    previous: Optional[Dict[str, Any]] = None,
    interval: Optional[float] = None,
    now_wall: Optional[float] = None,
) -> str:
    """Render one console frame from a broker ``obs_snapshot()``.

    ``previous`` (the prior frame's snapshot) and ``interval`` (seconds
    between them) turn cumulative per-worker job counts into live
    throughput columns; without them the rate column shows ``-``.
    ``now_wall`` pins "now" for the snapshot-age header (tests);
    default is the actual wall clock.
    """
    queue = snapshot.get("queue", {})
    cache = snapshot.get("cache", {})
    workers: Dict[str, Any] = snapshot.get("workers", {})
    fleet = snapshot.get("fleet", {}).get("counters", {})
    snap_time = snapshot.get("time", {})

    # Data age: how stale is the frame being looked at?  Computed from
    # the broker's wall stamp, so a console left on a dead connection
    # (or fed a cached snapshot) says so instead of posing as live.
    age_text = ""
    if "wall" in snap_time:
        age = max(
            (now_wall if now_wall is not None else time.time())
            - snap_time["wall"],
            0.0,
        )
        age_text = "  age %s" % _fmt_seconds(age)

    lines: List[str] = []
    lines.append(
        "repro dist top — workers %d  pending %d  leased %d  "
        "batches %d  completed %d%s"
        % (
            queue.get("workers", 0),
            queue.get("pending", 0),
            queue.get("leased", 0),
            queue.get("batches", 0),
            queue.get("completed", 0),
            age_text,
        )
    )
    lines.append(
        "queue: steals %d  reaped %d  dropped-batches %d    "
        "faults: injected %d  retries %d"
        % (
            queue.get("steals", 0),
            queue.get("reaped_jobs", 0),
            queue.get("dropped_batches", 0),
            fleet.get("faults.injected", 0),
            fleet.get("retry.retries", 0),
        )
    )
    lines.append(
        "shared cache: %d entries  %s  hit %s (%d/%d)  puts %d  evictions %d"
        % (
            cache.get("entries", 0),
            _fmt_bytes(cache.get("bytes", 0)),
            _rate(cache, "hits", "gets"),
            cache.get("hits", 0),
            cache.get("gets", 0),
            cache.get("puts", 0),
            cache.get("evictions", 0),
        )
    )
    lines.append(
        "worker caches: tier hit %s (local %d + shared %d / %d)  "
        "publishes %d  remote-down %d"
        % (
            _rate(
                {
                    "hits": fleet.get("cachetier.hits", 0),
                    "gets": fleet.get("cachetier.hits", 0)
                    + fleet.get("cachetier.misses", 0),
                },
                "hits",
                "gets",
            ),
            fleet.get("cachetier.local_hits", 0),
            fleet.get("cachetier.shared_hits", 0),
            fleet.get("cachetier.hits", 0) + fleet.get("cachetier.misses", 0),
            fleet.get("cachetier.publishes", 0),
            fleet.get("cachetier.remote_down", 0),
        )
    )
    scheduler = snapshot.get("scheduler")
    if scheduler:
        # Older brokers don't ship this section; the console must keep
        # rendering their snapshots unchanged.
        cost = scheduler.get("cost", {})
        err = cost.get("mean_abs_rel_err")
        mean_lease = scheduler.get("mean_lease_size")
        ratio = scheduler.get("batched_ratio")
        lines.append(
            "scheduler: %s  pred-err %s  mean-lease %s  resizes %d  "
            "pinned %d"
            % (
                scheduler.get("schedule", "?"),
                "%.0f%%" % (100.0 * err) if err is not None else "-",
                "%.1f" % mean_lease if mean_lease is not None else "-",
                scheduler.get("lease_resizes", 0),
                scheduler.get("pinned_leases", 0),
            )
        )
        lines.append(
            "transport: batched uploads %d  jobs/upload %s  "
            "model obs %d entr %d"
            % (
                scheduler.get("batched_uploads", 0),
                "%.1f" % ratio if ratio is not None else "-",
                cost.get("observations", 0),
                cost.get("entries", 0),
            )
        )
    runtime = (
        snapshot.get("broker", {})
        .get("histograms", {})
        .get("broker.job_runtime_seconds")
    )
    if runtime and runtime.get("count"):
        lines.append(
            "latency: job runtime p50 %s  p95 %s  p99 %s  (n=%d)"
            % (
                _fmt_seconds(runtime.get("p50", 0.0)),
                _fmt_seconds(runtime.get("p95", 0.0)),
                _fmt_seconds(runtime.get("p99", 0.0)),
                runtime["count"],
            )
        )
    lines.append("")
    lines.append(
        "%-22s %9s %8s %8s %8s %9s" % ("WORKER", "STATE", "JOBS", "FAILED", "JOBS/S", "TIER-HIT")
    )

    prev_workers: Dict[str, Any] = (previous or {}).get("workers", {})
    for worker_id in sorted(workers):
        info = workers[worker_id]
        alive = info.get("alive", False)
        counters = info.get("counters", {})
        jobs = counters.get("worker.jobs", 0)
        failed = counters.get("worker.jobs_failed", 0)
        rate = "-"
        if alive and interval and worker_id in prev_workers:
            prev_jobs = prev_workers[worker_id].get("counters", {}).get(
                "worker.jobs", 0
            )
            rate = "%.2f" % ((jobs - prev_jobs) / interval)
        tier_hit = _rate(
            {
                "hits": counters.get("cachetier.hits", 0),
                "gets": counters.get("cachetier.hits", 0)
                + counters.get("cachetier.misses", 0),
            },
            "hits",
            "gets",
        )
        # A reaped worker's totals stay (fleet sums must not shrink)
        # but its row must read as history, not telemetry: the state
        # carries how long ago it last beat (broker clock vs the
        # snapshot's own stamp) and the rate column never shows a
        # live-looking number.
        state = "up"
        if not alive:
            beat = info.get("last_beat")
            mono = snap_time.get("monotonic")
            if beat is not None and mono is not None:
                state = "gone %s" % _fmt_seconds(max(mono - beat, 0.0))
            else:
                state = "gone"
        lines.append(
            "%-22s %9s %8d %8d %8s %9s"
            % (
                worker_id[:22],
                state,
                jobs,
                failed,
                rate,
                tier_hit,
            )
        )
    if not workers:
        lines.append("  (no workers have reported metrics yet)")

    lines.append("")
    lines.append("q: quit   refresh: %.1fs" % (interval or 0.0))
    return "\n".join(lines) + "\n"
