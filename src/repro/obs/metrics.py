"""Named counters, gauges and histograms — the metrics half of obs.

A :class:`MetricsRegistry` hands out metric objects by name; callers
fetch them once (at object construction or module import) and call
``inc``/``set``/``observe`` on the hot path.  A registry built with
``enabled=False`` hands out the shared no-op stubs instead, so a
disabled runtime pays one method call on a singleton per site — no
dict lookups, no allocation, no branching at the call site.

Counter values are plain Python ints/floats mutated under the GIL;
:meth:`MetricsRegistry.snapshot` takes the registry lock only to get a
consistent *set* of metrics (new registrations mid-snapshot), the
values themselves are read atomically.  That is exactly the consistency
the fleet aggregation needs: counter deltas shipped from workers are
merged on the broker under its queue lock (see
:meth:`repro.dist.queue.Broker.obs_snapshot`).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_COUNTER",
    "NOOP_GAUGE",
    "NOOP_HISTOGRAM",
]


class Counter:
    """A monotonically increasing count (events, hits, jobs)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level (queue depth, bytes resident)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming count/sum/min/max of an observed quantity.

    Deliberately bucket-free: the runtime's histograms (fixed-point
    iteration counts, span durations) are summarised, not plotted, and
    four scalars keep the snapshot wire format trivial.
    """

    __slots__ = ("name", "count", "sum", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class _NoopCounter:
    """Shared do-nothing counter a disabled registry hands out."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NoopGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NoopHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


#: The stubs every disabled registry shares (identity-comparable, so
#: tests can assert a call site really got the no-op path).
NOOP_COUNTER = _NoopCounter()
NOOP_GAUGE = _NoopGauge()
NOOP_HISTOGRAM = _NoopHistogram()


class MetricsRegistry:
    """A namespace of metrics, snapshot-able as plain dicts.

    Parameters
    ----------
    enabled:
        ``False`` makes every accessor return the shared no-op stub —
        the registry stays empty and costs nothing.  The flag is fixed
        at construction; the *global* runtime registry is swapped, not
        mutated, by :func:`repro.obs.enable_metrics` (call sites fetch
        their metrics at construction time, so objects built before the
        swap keep their stubs — enable observability first, then build
        the runtime, which is the order the CLI guarantees).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- accessors (get-or-create by name) -----------------------------

    def counter(self, name: str):
        if not self.enabled:
            return NOOP_COUNTER
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str):
        if not self.enabled:
            return NOOP_GAUGE
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str):
        if not self.enabled:
            return NOOP_HISTOGRAM
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name)
            return metric

    # -- snapshots ------------------------------------------------------

    def counters_snapshot(self) -> Dict[str, int]:
        """Flat ``name -> value`` of every counter (delta shipping)."""
        with self._lock:
            return {name: c.value for name, c in self._counters.items()}

    def gauges_snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {name: g.value for name, g in self._gauges.items()}

    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as JSON-compatible plain dicts."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in self._counters.items()
                },
                "gauges": {
                    name: g.value for name, g in self._gauges.items()
                },
                "histograms": {
                    name: {
                        "count": h.count,
                        "sum": h.sum,
                        "min": h.min,
                        "max": h.max,
                    }
                    for name, h in self._histograms.items()
                },
            }
