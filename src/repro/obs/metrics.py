"""Named counters, gauges and histograms — the metrics half of obs.

A :class:`MetricsRegistry` hands out metric objects by name; callers
fetch them once (at object construction or module import) and call
``inc``/``set``/``observe`` on the hot path.  A registry built with
``enabled=False`` hands out the shared no-op stubs instead, so a
disabled runtime pays one method call on a singleton per site — no
dict lookups, no allocation, no branching at the call site.

Counter values are plain Python ints/floats mutated under the GIL;
:meth:`MetricsRegistry.snapshot` takes the registry lock only to get a
consistent *set* of metrics (new registrations mid-snapshot), the
values themselves are read atomically.  That is exactly the consistency
the fleet aggregation needs: counter deltas shipped from workers are
merged on the broker under its queue lock (see
:meth:`repro.dist.queue.Broker.obs_snapshot`).
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_COUNTER",
    "NOOP_GAUGE",
    "NOOP_HISTOGRAM",
    "QUANTILES",
]


class Counter:
    """A monotonically increasing count (events, hits, jobs)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level (queue depth, bytes resident)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


#: Log-bucket width: four buckets per factor of two (each bucket spans
#: a ratio of 2**0.25 ~ 1.19), so a quantile estimate is within ~9% of
#: the true value — plenty for latency summaries, at the cost of one
#: small int dict per histogram.
_BUCKET_LOG = math.log(2.0) / 4.0

#: Streaming quantiles every snapshot/exposition surface reports.
QUANTILES = (0.5, 0.95, 0.99)


class Histogram:
    """Streaming count/sum/min/max plus log-bucket quantiles.

    Observations land in geometric buckets (``2**0.25`` wide), so
    :meth:`quantile` answers p50/p95/p99 with bounded relative error
    from a dict that grows with the observed *range*, not the count —
    a histogram spanning nanoseconds to hours holds ~170 buckets.
    Snapshots stay plain scalars: quantiles are computed at snapshot
    time, never shipped as raw buckets.
    """

    __slots__ = ("name", "count", "sum", "min", "max", "_buckets", "_low")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: Dict[int, int] = {}
        self._low = 0  # observations <= 0 (no log bucket exists)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value > 0.0:
            index = int(math.log(value) // _BUCKET_LOG)
            self._buckets[index] = self._buckets.get(index, 0) + 1
        else:
            self._low += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from buckets.

        Returns the geometric midpoint of the bucket holding the
        ``q``-th observation, clamped to the exact observed
        ``[min, max]`` so the extremes are always honest.
        """
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = self._low
        if seen >= rank and self._low:
            # The quantile falls among the <= 0 observations.
            return min(self.min or 0.0, 0.0)
        value = self.max if self.max is not None else 0.0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                value = math.exp((index + 0.5) * _BUCKET_LOG)
                break
        if self.max is not None:
            value = min(value, self.max)
        if self.min is not None:
            value = max(value, self.min)
        return value

    def summary(self) -> Dict[str, float]:
        """The snapshot dict: scalars plus p50/p95/p99 estimates."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            **{
                "p%g" % (100 * q): self.quantile(q)
                for q in QUANTILES
            },
        }


class _NoopCounter:
    """Shared do-nothing counter a disabled registry hands out."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NoopGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NoopHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


#: The stubs every disabled registry shares (identity-comparable, so
#: tests can assert a call site really got the no-op path).
NOOP_COUNTER = _NoopCounter()
NOOP_GAUGE = _NoopGauge()
NOOP_HISTOGRAM = _NoopHistogram()


class MetricsRegistry:
    """A namespace of metrics, snapshot-able as plain dicts.

    Parameters
    ----------
    enabled:
        ``False`` makes every accessor return the shared no-op stub —
        the registry stays empty and costs nothing.  The flag is fixed
        at construction; the *global* runtime registry is swapped, not
        mutated, by :func:`repro.obs.enable_metrics` (call sites fetch
        their metrics at construction time, so objects built before the
        swap keep their stubs — enable observability first, then build
        the runtime, which is the order the CLI guarantees).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- accessors (get-or-create by name) -----------------------------

    def counter(self, name: str):
        if not self.enabled:
            return NOOP_COUNTER
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str):
        if not self.enabled:
            return NOOP_GAUGE
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str):
        if not self.enabled:
            return NOOP_HISTOGRAM
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name)
            return metric

    # -- snapshots ------------------------------------------------------

    def counters_snapshot(self) -> Dict[str, int]:
        """Flat ``name -> value`` of every counter (delta shipping)."""
        with self._lock:
            return {name: c.value for name, c in self._counters.items()}

    def gauges_snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {name: g.value for name, g in self._gauges.items()}

    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as JSON-compatible plain dicts."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in self._counters.items()
                },
                "gauges": {
                    name: g.value for name, g in self._gauges.items()
                },
                "histograms": {
                    name: h.summary()
                    for name, h in self._histograms.items()
                },
            }
