"""Bounded ring of fleet snapshots — backfill for reconnecting clients.

The broker records every :meth:`~repro.dist.queue.Broker.obs_sample`
into a :class:`SnapshotHistory`; the HTTP service (and any SSE client
that reconnects with a ``Last-Event-ID``) replays the tail it missed
via :meth:`SnapshotHistory.since`.  The ring is deliberately small and
value-only: snapshots are plain dicts already built for the wire, and
capacity bounds memory no matter how long a fleet runs.

The module is standalone on purpose — it must be importable from
``repro.dist.queue`` without dragging in the obs facade (which would
create an import cycle through the console/export helpers).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["SnapshotHistory", "counter_deltas"]


class SnapshotHistory:
    """A thread-safe bounded ring of sequence-stamped snapshots.

    :meth:`record` stamps each snapshot with a monotonically increasing
    ``seq`` (starting at 1) and appends it, evicting the oldest entry
    past ``capacity``.  ``seq`` is the SSE event id: a client that saw
    event ``N`` asks for ``since(N)`` and receives exactly the entries
    it missed (or the whole ring, if it fell further behind than the
    ring remembers).
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("history capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0

    def record(self, snapshot: Dict[str, Any]) -> int:
        """Stamp ``snapshot["seq"]`` and append; returns the seq."""
        with self._lock:
            self._seq += 1
            snapshot["seq"] = self._seq
            self._ring.append(snapshot)
            return self._seq

    def since(
        self, seq: int = 0, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Entries with ``seq`` strictly greater than the given seq."""
        with self._lock:
            entries = [s for s in self._ring if s["seq"] > seq]
        if limit is not None and len(entries) > limit:
            entries = entries[-limit:]
        return entries

    def latest(self) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._ring[-1] if self._ring else None

    @property
    def recorded(self) -> int:
        """Total snapshots ever recorded (not just those retained)."""
        with self._lock:
            return self._seq


#: Snapshot sections whose numeric leaves are cumulative counts worth
#: diffing for an SSE delta payload.  Gauges (pending, depth, rates)
#: are levels, not counts — clients read those from the snapshot
#: itself.
_DELTA_SECTIONS = (
    ("queue",),
    ("cache",),
    ("fleet", "counters"),
)


def counter_deltas(
    previous: Optional[Dict[str, Any]], current: Dict[str, Any]
) -> Dict[str, float]:
    """Flat ``section.name -> increase`` between two fleet snapshots.

    Only positive movement is reported: a key that shrank (a worker
    reaped, a registry reset) is simply absent, so consumers summing
    deltas never see fleet totals go backwards.
    """
    deltas: Dict[str, float] = {}
    for path in _DELTA_SECTIONS:
        cur: Any = current
        prev: Any = previous
        for key in path:
            cur = cur.get(key, {}) if isinstance(cur, dict) else {}
            prev = prev.get(key, {}) if isinstance(prev, dict) else {}
        if not isinstance(cur, dict):
            continue
        prefix = ".".join(path)
        for name, value in cur.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            before = prev.get(name, 0) if isinstance(prev, dict) else 0
            if not isinstance(before, (int, float)) or isinstance(before, bool):
                before = 0
            change = value - before
            if change > 0:
                deltas["%s.%s" % (prefix, name)] = change
    return deltas
