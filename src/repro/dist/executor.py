"""``DistExecutor`` — the driver-side handle on a broker fleet.

It implements the one-method executor protocol
:func:`repro.exec.pool.parallel_map` accepts (``map(fn, items)`` with
an ordered merge), so an :class:`~repro.exec.ExecutionContext` built
with ``executor=DistExecutor("host:port")`` (or the CLI's ``--dist``)
fans every replication batch and cold sweep over the fleet with **no
API change anywhere above the pool** — and, by the same contract, no
change to any number: results are merged by submission index, never by
completion order or worker identity.

The map is a poll loop over :meth:`Broker.fetch_ready`: results stream
back as a growing contiguous prefix (firing ``on_result`` in order),
polling drives the broker's dead-worker reaping, and a
:class:`~repro.dist.queue.JobFailure` shipped back by any worker
re-raises here with the worker-side traceback attached.
"""

from __future__ import annotations

import time
import uuid
from multiprocessing import AuthenticationError
from multiprocessing.managers import RemoteError
from typing import Any, Callable, Iterable, List, Optional

from repro.dist.queue import (
    DEFAULT_AUTHKEY,
    BrokerConnection,
    JobFailure,
    JobPayload,
    connect,
    parse_address,
)
from repro.errors import ReproError

__all__ = ["DistExecutor"]


class DistExecutor:
    """Executes job batches on a broker fleet with an ordered merge.

    Parameters
    ----------
    address:
        Broker address (``"host:port"`` or an ``(host, port)`` pair).
    authkey:
        Shared secret of the fleet (must match ``repro dist serve``).
    poll_interval:
        Seconds between result polls while a batch is outstanding.
    timeout:
        Optional overall bound per :meth:`map` call; ``None`` waits as
        long as live workers exist (long fleet runs legitimately take
        hours, so there is no default overall bound).
    no_worker_grace:
        Seconds without progress after which a fleet with **zero** live
        workers is an error instead of an indefinite hang (covers
        workers that were never started and fleets whose last worker
        died mid-run; generous enough for `dist run` issued while the
        workers are still spinning up).
    """

    def __init__(
        self,
        address,
        authkey: bytes = DEFAULT_AUTHKEY,
        poll_interval: float = 0.05,
        timeout: Optional[float] = None,
        no_worker_grace: float = 60.0,
    ) -> None:
        self.address = parse_address(address)
        self.authkey = authkey
        self.poll_interval = float(poll_interval)
        self.timeout = timeout
        self.no_worker_grace = float(no_worker_grace)
        self._connection: Optional[BrokerConnection] = None

    def _broker(self):
        if self._connection is None:
            try:
                self._connection = connect(
                    self.address, authkey=self.authkey
                )
            except (AuthenticationError, OSError, EOFError) as exc:
                host, port = self.address
                raise ReproError(
                    f"cannot connect to broker at {host}:{port} "
                    f"({exc!r}); is 'repro dist serve' running there "
                    f"with a matching --authkey?"
                )
        return self._connection.broker

    def stats(self) -> dict:
        """Queue diagnostics of the connected broker."""
        return self._broker().stats()

    def cache_stats(self) -> dict:
        """Shared-cache-store diagnostics of the connected broker."""
        return self._broker().cache_stats()

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Run ``fn`` over ``items`` on the fleet, merged by index.

        Equivalent to ``[fn(item) for item in items]`` for pure ``fn``
        (the :mod:`repro.exec.pool` determinism contract), for any
        number of workers, steal order, or worker death mid-job.
        ``on_result(index, result)`` fires in index order as the
        completed prefix grows.
        """
        payloads = [JobPayload(fn, item) for item in items]
        if not payloads:
            return []
        broker = self._broker()
        batch_id = uuid.uuid4().hex
        broker.submit(batch_id, payloads)
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        results: List[Any] = []
        last_progress = time.monotonic()
        try:
            while len(results) < len(payloads):
                ready = broker.fetch_ready(batch_id, len(results))
                for result in ready:
                    if isinstance(result, JobFailure):
                        raise ReproError(
                            f"distributed job {len(results)} failed: "
                            f"{result.error}\n--- worker traceback ---\n"
                            f"{result.traceback}"
                        )
                    if on_result is not None:
                        on_result(len(results), result)
                    results.append(result)
                if len(results) >= len(payloads):
                    break
                now = time.monotonic()
                # The overall bound applies on *every* iteration — a
                # slow fleet trickling one result per poll must not
                # dodge it indefinitely.
                if deadline is not None and now > deadline:
                    done, total = broker.batch_status(batch_id)
                    stats = broker.stats()
                    raise ReproError(
                        f"distributed batch timed out after "
                        f"{self.timeout:.1f}s with {done}/{total} jobs "
                        f"done ({stats['workers']} live worker(s)); is "
                        f"a 'repro dist worker' connected?"
                    )
                if ready:
                    last_progress = now
                    continue  # keep draining while results flow
                if now - last_progress > self.no_worker_grace:
                    # Stalled: fine while live workers grind a long
                    # job, an error once nobody is left to make
                    # progress — hanging forever helps no one.
                    if broker.stats()["workers"] == 0:
                        done, total = broker.batch_status(batch_id)
                        raise ReproError(
                            f"no live workers for "
                            f"{self.no_worker_grace:.0f}s with "
                            f"{done}/{total} jobs done; start "
                            f"'repro dist worker' processes against "
                            f"this broker"
                        )
                    last_progress = now
                time.sleep(self.poll_interval)
        except RemoteError as exc:
            # A broker-side rejection (e.g. the batch was TTL-dropped
            # after this driver stalled for longer than the broker's
            # batch_ttl) arrives as a pickled remote traceback; surface
            # it as a clean, actionable error.
            raise ReproError(
                f"broker rejected batch {batch_id}: the batch was "
                f"likely dropped (driver stalled past the broker's "
                f"batch TTL, or the broker restarted) — rerun the "
                f"map.\n{exc}"
            )
        finally:
            # Best-effort: if the broker is gone (or already dropped
            # the batch), failing the cleanup RPC must not mask the
            # propagating error — the TTL reaps undropped batches.
            try:
                broker.drop_batch(batch_id)
            except Exception:
                pass
        return results
