"""``DistExecutor`` — the driver-side handle on a broker fleet.

It implements the one-method executor protocol
:func:`repro.exec.pool.parallel_map` accepts (``map(fn, items)`` with
an ordered merge), so an :class:`~repro.exec.ExecutionContext` built
with ``executor=DistExecutor("host:port")`` (or the CLI's ``--dist``)
fans every replication batch and cold sweep over the fleet with **no
API change anywhere above the pool** — and, by the same contract, no
change to any number: results are merged by submission index, never by
completion order or worker identity.

The map is a poll loop over :meth:`Broker.fetch_ready`: results stream
back as a growing contiguous prefix (firing ``on_result`` in order),
polling drives the broker's dead-worker reaping, and a
:class:`~repro.dist.queue.JobFailure` shipped back by any worker
re-raises here with the worker-side traceback attached.

Robustness: every broker RPC runs under a
:class:`~repro.retry.RetryPolicy` — a dropped connection tears down
the cached proxy and reconnects on the next attempt, so transient
transport blips are invisible above the executor.  A broker that stays
gone (or that restarted and forgot the batch) is *broker loss*; what
happens then is the ``on_broker_loss`` policy:

* ``"fallback"`` (default) — the unfinished tail of the batch is
  re-run on the **local process pool** with the same submission-order
  merge, so the combined results are bitwise-identical to what the
  fleet would have produced (jobs are pure; completed prefix + locally
  computed tail = the serial answer).  Degraded, not dead.
* ``"fail"`` — raise a :class:`~repro.errors.ReproError` describing
  the loss, for callers that must not silently absorb a fleet outage.

Fault plans (:mod:`repro.faults`) inject at the ``executor.submit``
and ``executor.fetch_ready`` hooks.
"""

from __future__ import annotations

import time
import uuid
from multiprocessing import AuthenticationError
from multiprocessing.managers import RemoteError
from typing import Any, Callable, Iterable, List, Optional

from repro import obs
from repro.dist.costmodel import job_features
from repro.dist.queue import (
    DEFAULT_AUTHKEY,
    BrokerConnection,
    JobFailure,
    JobPayload,
    connect,
    parse_address,
    wire_pack,
    wire_unpack,
)
from repro.errors import BrokerUnavailableError, ReproError
from repro.faults import injector as faults
from repro.retry import DEFAULT_RETRY, RetryPolicy

__all__ = ["DistExecutor"]

#: Transport errors meaning "the broker went away mid-conversation".
_BROKER_GONE = (ConnectionError, EOFError, OSError)


class DistExecutor:
    """Executes job batches on a broker fleet with an ordered merge.

    Parameters
    ----------
    address:
        Broker address (``"host:port"`` or an ``(host, port)`` pair).
    authkey:
        Shared secret of the fleet (must match ``repro dist serve``).
    poll_interval:
        Seconds between result polls while results are flowing.  While
        the fleet is *quiet* the interval backs off exponentially up
        to ``poll_max`` and snaps back to ``poll_interval`` on the
        first result — an idle driver stops hammering ``fetch_ready``
        without ever going deaf (every poll, backed-off or not, still
        drives the broker's dead-worker reaping).
    poll_max:
        Cap on the backed-off poll interval (default
        ``max(0.5, poll_interval)``).
    schedule:
        Per-batch scheduling policy shipped with every submit:
        ``"cost"`` orders the batch longest-predicted-first and sizes
        worker leases from the broker's cost model, ``"fifo"`` forces
        arrival order, ``None`` (default) defers to the broker's own
        configured policy.  Scheduling changes *when* jobs run, never
        what :meth:`map` returns — the merge is by submission index
        either way.
    compress_threshold:
        When set, payload items whose pickle is at least this many
        bytes ship as zlib wire envelopes (workers apply the same
        threshold to results); ``None`` (default) disables.
    timeout:
        Optional overall bound per :meth:`map` call; ``None`` waits as
        long as live workers exist (long fleet runs legitimately take
        hours, so there is no default overall bound).
    no_worker_grace:
        Seconds without progress after which a fleet with **zero** live
        workers is an error instead of an indefinite hang (covers
        workers that were never started and fleets whose last worker
        died mid-run; generous enough for `dist run` issued while the
        workers are still spinning up).
    retry:
        Backoff policy for broker connects and per-RPC transient
        failures (each retry reconnects from scratch).
    on_broker_loss:
        ``"fallback"`` re-runs the unfinished batch tail on the local
        process pool (same merge order, same numbers); ``"fail"``
        raises instead.
    fallback_jobs:
        Process count for the local fallback pool (``None``/``0`` =
        all cores, matching :func:`~repro.exec.pool.resolve_jobs`).

    Attributes
    ----------
    fallbacks:
        Number of :meth:`map` calls that degraded to the local pool.
    """

    def __init__(
        self,
        address,
        authkey: bytes = DEFAULT_AUTHKEY,
        poll_interval: float = 0.05,
        timeout: Optional[float] = None,
        no_worker_grace: float = 60.0,
        retry: RetryPolicy = DEFAULT_RETRY,
        on_broker_loss: str = "fallback",
        fallback_jobs: Optional[int] = None,
        schedule: Optional[str] = None,
        compress_threshold: Optional[int] = None,
        poll_max: Optional[float] = None,
    ) -> None:
        if on_broker_loss not in ("fallback", "fail"):
            raise ReproError(
                f"on_broker_loss must be 'fallback' or 'fail', got "
                f"{on_broker_loss!r}"
            )
        if schedule not in (None, "fifo", "cost"):
            raise ReproError(
                f"schedule must be 'fifo', 'cost' or None, got "
                f"{schedule!r}"
            )
        self.address = parse_address(address)
        self.authkey = authkey
        self.poll_interval = float(poll_interval)
        self.poll_max = (
            float(poll_max)
            if poll_max is not None
            else max(0.5, self.poll_interval)
        )
        self.schedule = schedule
        self.compress_threshold = compress_threshold
        self.timeout = timeout
        self.no_worker_grace = float(no_worker_grace)
        self.retry = retry
        self.on_broker_loss = on_broker_loss
        self.fallback_jobs = fallback_jobs
        self.fallbacks = 0
        self._connection: Optional[BrokerConnection] = None

    # -- transport ------------------------------------------------------

    def _connect_raw(self):
        """The cached proxy, reconnecting if the last RPC tore it down.

        Raises raw transport errors (so the retry policy can classify
        them); user-facing wrapping happens in :meth:`_broker`.
        """
        if self._connection is None:
            self._connection = connect(self.address, authkey=self.authkey)
        return self._connection.broker

    def _broker(self):
        try:
            return self.retry.call(
                self._connect_raw, describe="broker connect"
            )
        except (AuthenticationError, *_BROKER_GONE) as exc:
            host, port = self.address
            raise ReproError(
                f"cannot connect to broker at {host}:{port} "
                f"({exc!r}); is 'repro dist serve' running there "
                f"with a matching --authkey?"
            )

    def _rpc(
        self,
        describe: str,
        call: Callable[[Any], Any],
        none_is_loss: bool = False,
    ) -> Any:
        """One broker RPC under the retry policy.

        A transport failure drops the cached connection, so the next
        attempt reconnects from scratch — the only way back to a
        restarted broker, since a manager proxy never outlives its
        TCP connection.  Exhausted retries raise
        :class:`BrokerUnavailableError` for :meth:`map` to translate
        into the ``on_broker_loss`` policy.

        ``none_is_loss``: a manager server caught mid-shutdown answers
        the in-flight call with a bare ``None`` before the connection
        dies; for RPCs whose real return is never ``None`` that reply
        is itself a loss signal.
        """

        def attempt():
            try:
                reply = call(self._connect_raw())
            except _BROKER_GONE:
                self._connection = None
                raise
            if none_is_loss and reply is None:
                self._connection = None
                raise ConnectionResetError(
                    f"broker returned no reply to {describe} "
                    f"(shutting down)"
                )
            return reply

        try:
            return self.retry.call(attempt, describe=describe)
        except _BROKER_GONE as exc:
            raise BrokerUnavailableError(
                f"cannot connect to broker at {self.address[0]}:"
                f"{self.address[1]} for {describe} after "
                f"{self.retry.attempts} attempt(s): {exc!r}"
            ) from exc

    def stats(self) -> dict:
        """Queue diagnostics of the connected broker.

        Retry-wrapped like every other RPC (a one-shot ``repro obs
        dump --dist`` or ``dist top`` refresh must survive the same
        transient refusals the map loop already shrugs off); exhausted
        retries raise :class:`BrokerUnavailableError`.
        """
        return self._rpc(
            "broker stats", lambda b: b.stats(), none_is_loss=True
        )

    def cache_stats(self) -> dict:
        """Shared-cache-store diagnostics of the connected broker."""
        return self._rpc(
            "cache stats", lambda b: b.cache_stats(), none_is_loss=True
        )

    def obs_snapshot(self) -> dict:
        """The broker's consistent fleet telemetry view (one RPC).

        Queue + cache stats, per-worker shipped metrics, and fleet
        counter totals, all read under one broker lock hold — what
        ``repro dist top`` and ``repro obs dump --dist`` render.
        """
        return self._rpc(
            "obs snapshot", lambda b: b.obs_snapshot(), none_is_loss=True
        )

    def obs_sample(self) -> dict:
        """One snapshot, recorded into the broker's history ring.

        The HTTP service's sampling RPC: the returned snapshot carries
        the ring-stamped ``seq``, so SSE clients can resume from it.
        """
        return self._rpc(
            "obs sample", lambda b: b.obs_sample(), none_is_loss=True
        )

    def obs_history(self, since: int = 0, limit: Optional[int] = None):
        """Ring-recorded snapshots with ``seq`` greater than ``since``."""
        return self._rpc(
            "obs history",
            lambda b: b.obs_history(since, limit),
            none_is_loss=True,
        )

    def cost_snapshot(self) -> dict:
        """The broker's cost-model state (``CostModel.to_state``).

        Drivers persist this next to their journal so a later fleet
        warm-starts scheduling with the rates this run observed.
        """
        return self._rpc(
            "cost snapshot", lambda b: b.cost_snapshot(), none_is_loss=True
        )

    def cost_seed(self, state: dict) -> bool:
        """Seed the broker's cost model before submitting.

        Accepts either a prior :meth:`cost_snapshot` state or a
        ``BENCH_*.json`` pytest-benchmark document; returns whether
        the broker absorbed anything.  Purely advisory — predictions
        shape dispatch order and lease sizes, never results.
        """
        return self._rpc("cost seed", lambda b: b.cost_seed(state))

    # -- the map --------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> List[Any]:
        """Run ``fn`` over ``items`` on the fleet, merged by index.

        Equivalent to ``[fn(item) for item in items]`` for pure ``fn``
        (the :mod:`repro.exec.pool` determinism contract), for any
        number of workers, steal order, or worker death mid-job — and,
        under ``on_broker_loss="fallback"``, for broker death too.
        ``on_result(index, result)`` fires in index order as the
        completed prefix grows.
        """
        item_list = list(items)
        # Scheduler features come from the *raw* items (the broker
        # never unpacks a compressed payload), packing after.
        features = [job_features(fn, item) for item in item_list]
        payloads = [
            JobPayload(fn, wire_pack(item, self.compress_threshold))
            for item in item_list
        ]
        if not payloads:
            return []
        results: List[Any] = []
        try:
            with obs.span("executor.map") as span:
                span.set("jobs", len(payloads))
                return self._map_fleet(
                    fn, payloads, results, on_result, features
                )
        except (BrokerUnavailableError, RemoteError) as exc:
            # Broker loss: gone for good, or restarted and no longer
            # knows the batch (a RemoteError also covers a TTL-dropped
            # batch — same remedy).  ``results`` holds the contiguous
            # completed prefix at the moment of loss.
            if self.on_broker_loss != "fallback":
                raise ReproError(
                    f"broker lost with {len(results)}/{len(payloads)} "
                    f"jobs done and on_broker_loss='fail': {exc}"
                )
            return self._map_fallback(fn, payloads, results, on_result, exc)

    def _map_fleet(
        self,
        fn: Callable[[Any], Any],
        payloads: List[JobPayload],
        results: List[Any],
        on_result: Optional[Callable[[int, Any], None]],
        features: Optional[List[dict]] = None,
    ) -> List[Any]:
        """The fleet poll loop; appends to ``results`` as it merges."""
        broker = self._broker()
        batch_id = uuid.uuid4().hex

        def _submit(b):
            faults.fire("executor.submit", batch_id=batch_id)
            return b.submit(
                batch_id,
                payloads,
                features=features,
                schedule=self.schedule,
            )

        self._rpc("batch submit", _submit)
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        last_progress = time.monotonic()
        delay = self.poll_interval
        try:
            while len(results) < len(payloads):

                def _fetch(b):
                    faults.fire("executor.fetch_ready", batch_id=batch_id)
                    return b.fetch_ready(batch_id, len(results))

                ready = self._rpc(
                    "result fetch", _fetch, none_is_loss=True
                )
                for result in ready:
                    result = wire_unpack(result)
                    if isinstance(result, JobFailure):
                        raise ReproError(
                            f"distributed job {len(results)} failed: "
                            f"{result.error}\n--- worker traceback ---\n"
                            f"{result.traceback}"
                        )
                    if on_result is not None:
                        on_result(len(results), result)
                    results.append(result)
                if len(results) >= len(payloads):
                    break
                now = time.monotonic()
                # The overall bound applies on *every* iteration — a
                # slow fleet trickling one result per poll must not
                # dodge it indefinitely.
                if deadline is not None and now > deadline:
                    done, total = self._rpc(
                        "batch status",
                        lambda b: b.batch_status(batch_id),
                        none_is_loss=True,
                    )
                    stats = self._rpc(
                        "broker stats", lambda b: b.stats(),
                        none_is_loss=True,
                    )
                    raise ReproError(
                        f"distributed batch timed out after "
                        f"{self.timeout:.1f}s with {done}/{total} jobs "
                        f"done ({stats['workers']} live worker(s)); is "
                        f"a 'repro dist worker' connected?"
                    )
                if ready:
                    last_progress = now
                    delay = self.poll_interval  # results flow: poll tight
                    continue  # keep draining while results flow
                if now - last_progress > self.no_worker_grace:
                    # Stalled: fine while live workers grind a long
                    # job, an error once nobody is left to make
                    # progress — hanging forever helps no one.
                    if self._rpc(
                        "broker stats", lambda b: b.stats(),
                        none_is_loss=True,
                    )["workers"] == 0:
                        done, total = self._rpc(
                            "batch status",
                            lambda b: b.batch_status(batch_id),
                            none_is_loss=True,
                        )
                        raise ReproError(
                            f"no live workers for "
                            f"{self.no_worker_grace:.0f}s with "
                            f"{done}/{total} jobs done; start "
                            f"'repro dist worker' processes against "
                            f"this broker"
                        )
                    last_progress = now
                # Quiet iteration: back off (capped) so an idle driver
                # does not hammer fetch_ready; the loop still wakes to
                # poll — and thereby drive broker reaping and the
                # deadline/no-worker checks — at least every poll_max.
                time.sleep(delay)
                delay = min(delay * 2, self.poll_max)
        finally:
            # Best-effort: if the broker is gone (or already dropped
            # the batch), failing the cleanup RPC must not mask the
            # propagating error — the TTL reaps undropped batches.
            try:
                broker.drop_batch(batch_id)
            except Exception:
                pass
        return results

    def _map_fallback(
        self,
        fn: Callable[[Any], Any],
        payloads: List[JobPayload],
        results: List[Any],
        on_result: Optional[Callable[[int, Any], None]],
        cause: BaseException,
    ) -> List[Any]:
        """Re-run the unfinished tail on the local pool, same order.

        ``results`` is the contiguous completed prefix the fleet
        delivered before the loss; jobs are pure, so computing the tail
        locally and concatenating reproduces the fleet answer exactly.
        ``on_result`` indices continue from the prefix.
        """
        from repro.exec.pool import parallel_map

        self.fallbacks += 1
        obs.counter("executor.fallbacks").inc()
        done = len(results)

        def _shifted(index: int, result: Any) -> None:
            if on_result is not None:
                on_result(done + index, result)

        tail = parallel_map(
            fn,
            # Items may sit in compressed wire envelopes; the local
            # pool wants the originals back.
            [wire_unpack(payload.item) for payload in payloads[done:]],
            jobs=self.fallback_jobs,
            on_result=_shifted,
        )
        return results + tail
