"""Per-job runtime prediction for the fleet scheduler.

The fleet matrix is a (scenario × budget × replication-block) job list
whose cells differ in runtime by orders of magnitude — a 256-cluster
mesh sizing takes minutes while a ``single-bus-4`` replication block is
subsecond.  FIFO dispatch therefore leaves the classic makespan money
on the table: a long cell pulled last keeps one worker grinding while
the rest of the fleet idles.  :class:`CostModel` is the predictor the
broker's ``schedule="cost"`` policy orders jobs with (longest predicted
first — LPT) and sizes prefetch leases from.

Prediction is deliberately simple and cheap (the broker holds its one
lock while predicting):

* every job payload is reduced to a small **feature** dict
  (:func:`job_features`): a ``kind`` (the job function's name), the
  scenario/backend/budget when the payload carries them, and ``units``
  — the job's linear work measure (``duration × replications`` for
  ``run_block`` blocks, the declared duration otherwise);
* the model keeps an EWMA of observed *per-unit* runtime under a
  hierarchy of keys — ``(kind, scenario, backend, budget)`` down to
  bare ``kind`` — and predicts with the most specific level that has
  data, times the job's units.  Every observation refines all levels,
  so one completed block of a new budget already inherits its
  scenario's rate;
* with no observations at all the model falls back to per-scenario
  **priors** seeded from ``BENCH_*.json`` artifacts
  (:meth:`CostModel.seed_from_bench` — the bench files are, in effect,
  training data), and failing that to a flat default rate.  Jobs whose
  features are indistinguishable then predict equal costs, and because
  every sort in the scheduler is stable, cold-start cost scheduling
  degrades to exactly FIFO order.

The model is a pure *hint*: predictions order the queue and size
leases, never touch a payload or a result, so a wildly wrong model can
cost time but never a bit (the determinism contract of
:mod:`repro.dist`).  State round-trips through JSON
(:meth:`~CostModel.save` / :meth:`~CostModel.load`) so a broker —
pointed at a journal or cache directory — warm-starts the next fleet
with the last fleet's observed rates.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Dict, List, Optional

__all__ = ["CostModel", "job_features", "DEFAULT_UNIT_COST"]

#: Cold-start per-unit cost (seconds per work unit).  Only the
#: *relative* ordering matters to the scheduler; the absolute level
#: matters once, for sizing the very first leases before any
#: observation lands (≈3 s for a 300 s × 1-rep block is the right
#: order of magnitude for sizing-dominated fleet cells).
DEFAULT_UNIT_COST = 1e-2

#: EWMA smoothing factor for per-unit rates: heavy enough that one
#: outlier block (cold solver, page cache miss) cannot flip the LPT
#: order, light enough that a fleet's rates converge within a few
#: blocks per cell.
DEFAULT_ALPHA = 0.25

#: Bump when the persisted-state layout changes; a mismatched file is
#: ignored (cold start) instead of misread.
STATE_SCHEMA = 1


def job_features(fn: Any, item: Any) -> Dict[str, Any]:
    """Reduce one (job function, payload) pair to scheduler features.

    Driver-side companion of the broker's model: the executor extracts
    features once at submit time (payloads may cross the wire
    compressed, so the broker never introspects them).  Works for any
    payload — unknown shapes reduce to ``kind`` plus one work unit,
    which predicts a flat cost and leaves the (stable) submission
    order untouched.
    """
    kind = getattr(fn, "__name__", None) or str(fn)
    features: Dict[str, Any] = {"kind": kind, "units": 1.0}
    if isinstance(item, dict):
        for key in ("scenario", "sim_backend", "budget"):
            value = item.get(key)
            if value is not None:
                features[key] = value
        duration = item.get("duration")
        if isinstance(duration, (int, float)) and duration > 0:
            start, stop = item.get("start"), item.get("stop")
            if isinstance(start, int) and isinstance(stop, int):
                reps = max(stop - start, 1)
            else:
                reps = 1
            features["units"] = float(duration) * reps
    return features


def _feature_keys(features: Dict[str, Any]) -> List[str]:
    """The model's key hierarchy, most specific first."""
    kind = str(features.get("kind", "?"))
    scenario = features.get("scenario")
    backend = features.get("sim_backend")
    budget = features.get("budget")
    keys = []
    if scenario is not None:
        if budget is not None:
            keys.append(f"{kind}|{scenario}|{backend}|{budget}")
        keys.append(f"{kind}|{scenario}|{backend}")
    keys.append(kind)
    return keys


class CostModel:
    """EWMA per-unit runtime model behind the ``cost`` schedule.

    Not thread-safe by itself — the broker calls it under its queue
    lock, which is also what keeps predictions and observations
    consistent with the queue state they order.

    Attributes
    ----------
    observations:
        Completed jobs folded into the rates so far.
    mean_abs_rel_err:
        EWMA of ``|predicted - actual| / actual`` over observations
        that carried a prediction — the accuracy figure ``repro dist
        top`` shows.
    """

    def __init__(
        self,
        alpha: float = DEFAULT_ALPHA,
        default_unit_cost: float = DEFAULT_UNIT_COST,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.default_unit_cost = float(default_unit_cost)
        # key -> [ewma unit cost, observation count]
        self._rates: Dict[str, List[float]] = {}
        # scenario -> relative weight, seeded from bench artifacts.
        self._priors: Dict[str, float] = {}
        self._global: Optional[float] = None
        self.observations = 0
        self.mean_abs_rel_err: Optional[float] = None

    # -- predict / observe ---------------------------------------------

    def predict(self, features: Optional[Dict[str, Any]]) -> float:
        """Predicted runtime (seconds) of one job.

        Deterministic in the model state: equal features always predict
        equal costs, so stable sorts preserve submission order among
        indistinguishable jobs (the cold-start FIFO-equivalence the
        scheduler tests pin down).
        """
        if not features:
            return (
                self._global
                if self._global is not None
                else self.default_unit_cost
            )
        units = float(features.get("units", 1.0)) or 1.0
        for key in _feature_keys(features):
            entry = self._rates.get(key)
            if entry is not None:
                return entry[0] * units
        if self._global is not None:
            return self._global * units
        prior = self._priors.get(str(features.get("scenario")), 1.0)
        return self.default_unit_cost * prior * units

    def observe(
        self,
        features: Optional[Dict[str, Any]],
        runtime: float,
        predicted: Optional[float] = None,
    ) -> None:
        """Fold one observed job runtime into every matching rate."""
        if runtime is None or runtime < 0 or not math.isfinite(runtime):
            return
        self.observations += 1
        if predicted is not None and runtime > 0:
            err = abs(predicted - runtime) / runtime
            self.mean_abs_rel_err = (
                err
                if self.mean_abs_rel_err is None
                else (1 - 0.2) * self.mean_abs_rel_err + 0.2 * err
            )
        units = 1.0
        if features:
            units = float(features.get("units", 1.0)) or 1.0
        unit_cost = runtime / units
        self._global = (
            unit_cost
            if self._global is None
            else (1 - self.alpha) * self._global + self.alpha * unit_cost
        )
        if not features:
            return
        for key in _feature_keys(features):
            entry = self._rates.get(key)
            if entry is None:
                self._rates[key] = [unit_cost, 1]
            else:
                entry[0] = (1 - self.alpha) * entry[0] + self.alpha * unit_cost
                entry[1] += 1

    # -- bench seeding --------------------------------------------------

    def seed_from_bench(self, source: Any) -> int:
        """Seed per-scenario priors from a ``BENCH_*.json`` artifact.

        ``source`` is a pytest-benchmark JSON path or its parsed dict.
        Benchmarks tagged with an ``extra_info.scenario`` contribute
        their mean wall time; each scenario's prior is its mean
        relative to the cross-scenario mean, so a scenario the benches
        show 5× slower predicts 5× longer before the fleet has run a
        single block.  Returns the number of scenarios seeded; any
        malformed artifact seeds nothing (cold start, never a crash).
        """
        try:
            if isinstance(source, (str, os.PathLike)):
                with open(source) as fh:
                    report = json.load(fh)
            else:
                report = source
            per_scenario: Dict[str, List[float]] = {}
            for bench in report.get("benchmarks", []):
                extra = bench.get("extra_info") or {}
                scenario = extra.get("scenario")
                mean = (bench.get("stats") or {}).get("mean")
                if scenario and isinstance(mean, (int, float)) and mean > 0:
                    per_scenario.setdefault(str(scenario), []).append(
                        float(mean)
                    )
            if not per_scenario:
                return 0
            means = {
                scenario: sum(values) / len(values)
                for scenario, values in per_scenario.items()
            }
            overall = sum(means.values()) / len(means)
            for scenario, mean in means.items():
                self._priors[scenario] = mean / overall
            return len(means)
        except (OSError, ValueError, TypeError, AttributeError):
            return 0

    # -- persistence ----------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """JSON-compatible snapshot of the learned rates and priors."""
        return {
            "schema": STATE_SCHEMA,
            "alpha": self.alpha,
            "default_unit_cost": self.default_unit_cost,
            "rates": {
                key: [entry[0], int(entry[1])]
                for key, entry in self._rates.items()
            },
            "priors": dict(self._priors),
            "global": self._global,
            "observations": self.observations,
        }

    def from_state(self, state: Dict[str, Any]) -> bool:
        """Restore a :meth:`to_state` snapshot; ``False`` = ignored."""
        if not isinstance(state, dict) or state.get("schema") != STATE_SCHEMA:
            return False
        try:
            self._rates = {
                str(key): [float(value[0]), int(value[1])]
                for key, value in state.get("rates", {}).items()
            }
            self._priors = {
                str(key): float(value)
                for key, value in state.get("priors", {}).items()
            }
            raw = state.get("global")
            self._global = None if raw is None else float(raw)
            self.observations = int(state.get("observations", 0))
        except (TypeError, ValueError, IndexError):
            self._rates, self._priors, self._global = {}, {}, None
            self.observations = 0
            return False
        return True

    def save(self, path) -> None:
        """Atomically persist the model state as JSON."""
        data = json.dumps(self.to_state(), sort_keys=True) + "\n"
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            fh.write(data)
        os.replace(tmp, path)

    def load(self, path) -> bool:
        """Restore a saved state; missing/damaged files are a cold
        start (``False``), never an error."""
        try:
            with open(path) as fh:
                return self.from_state(json.load(fh))
        except (OSError, ValueError):
            return False

    # -- diagnostics ----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """The scheduler rows of ``repro dist top`` / ``obs dump``."""
        return {
            "observations": self.observations,
            "entries": len(self._rates),
            "priors": len(self._priors),
            "mean_abs_rel_err": self.mean_abs_rel_err,
        }
