"""Checkpoint-resume for fleet matrix runs: the run journal.

A matrix run (`repro dist run`) can take hours; a driver killed at 90%
used to mean recomputing everything.  A :class:`RunJournal` makes the
completed prefix durable: every finished (scenario, budget,
replication-block) cell is recorded **atomically** (checksummed blob
written to a temp file, then ``os.replace``), so a journal is valid
after a kill at any instant — a block is either fully recorded or
absent, never half-written.

Layout under the journal directory::

    manifest.json          # schema, config hash, payload count
    blocks/<key>.blk       # pack_entry(BlockOutcome), content-addressed

Blocks are keyed by the same content addresses as the result cache
(:func:`~repro.exec.cache.entry_key` over the full job payload), so a
journal entry can only ever satisfy the *exact* job it recorded —
change a seed, a budget, a horizon, and the key changes.  On top of
that, ``--resume`` validates the whole-matrix **config hash**: resuming
with any altered parameters is an error, not a silently mixed run.

Entries carry the cache layer's sha256 envelope
(:func:`~repro.exec.cache.pack_entry`); a blob damaged on disk fails
verification before unpickling, is quarantined (renamed aside), and
the block is simply recomputed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.exec.cache import entry_key, pack_entry, unpack_entry

__all__ = ["RunJournal"]

#: Bump when the journal layout changes; a mismatched journal refuses
#: to resume instead of misreading.
JOURNAL_SCHEMA = 1


class RunJournal:
    """Durable record of one matrix run's completed blocks.

    Parameters
    ----------
    path:
        Journal directory (created on :meth:`bind`).
    resume:
        ``True`` continues an existing journal (config hash must
        match); ``False`` requires the directory to be fresh — an
        existing journal is an error, never silently overwritten.

    Attributes
    ----------
    hits:
        Blocks satisfied from the journal on resume.
    records:
        Blocks recorded this run.
    quarantined:
        Entries that failed checksum verification and were set aside.
    """

    def __init__(self, path, resume: bool = False) -> None:
        self.path = Path(path)
        self.resume = bool(resume)
        self.hits = 0
        self.records = 0
        self.quarantined = 0
        self._bound = False

    # -- lifecycle ------------------------------------------------------

    def _manifest_path(self) -> Path:
        return self.path / "manifest.json"

    def _blocks_dir(self) -> Path:
        return self.path / "blocks"

    def config_hash(self, payloads: List[Dict[str, Any]]) -> str:
        """Content address of the whole matrix configuration."""
        return entry_key("fleet-matrix", {"payloads": payloads})

    def bind(self, payloads: List[Dict[str, Any]]) -> None:
        """Attach the journal to one matrix configuration.

        Creates the directory and manifest on a fresh run; on
        ``resume=True`` validates that the existing manifest was
        written for the *same* matrix (schema and config hash), so a
        resumed run can never mix blocks from a different
        configuration.
        """
        config = self.config_hash(payloads)
        manifest_path = self._manifest_path()
        if manifest_path.exists():
            if not self.resume:
                raise ReproError(
                    f"journal {self.path} already exists; pass --resume "
                    f"to continue it or choose a fresh --journal path"
                )
            try:
                with open(manifest_path) as fh:
                    manifest = json.load(fh)
            except (OSError, ValueError) as exc:
                raise ReproError(
                    f"journal manifest {manifest_path} is unreadable "
                    f"({exc}); the journal cannot be resumed"
                )
            if manifest.get("schema") != JOURNAL_SCHEMA:
                raise ReproError(
                    f"journal {self.path} has schema "
                    f"{manifest.get('schema')!r}, expected "
                    f"{JOURNAL_SCHEMA}; it cannot be resumed"
                )
            if manifest.get("config") != config:
                raise ReproError(
                    f"journal {self.path} records a different matrix "
                    f"configuration; --resume requires identical "
                    f"scenarios, budgets, replications, seeds and "
                    f"backend"
                )
        else:
            if self.resume and self.path.exists():
                # An empty/partial directory without a manifest is not
                # resumable — nothing trustworthy to resume from.
                raise ReproError(
                    f"journal {self.path} has no manifest; nothing to "
                    f"resume"
                )
            self._blocks_dir().mkdir(parents=True, exist_ok=True)
            manifest = {
                "schema": JOURNAL_SCHEMA,
                "config": config,
                "payloads": len(payloads),
            }
            self._atomic_write(
                manifest_path,
                (json.dumps(manifest, sort_keys=True) + "\n").encode(),
            )
        self._bound = True

    # -- block records --------------------------------------------------

    def _block_path(self, payload: Dict[str, Any]) -> Path:
        return self._blocks_dir() / f"{entry_key('fleet-block', payload)}.blk"

    def _atomic_write(self, path: Path, data: bytes) -> None:
        tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def lookup(self, payload: Dict[str, Any]) -> Tuple[bool, Any]:
        """``(hit, BlockOutcome)`` for one job payload.

        A missing, truncated, or corrupted entry is a miss (damaged
        entries are quarantined aside), so a torn journal degrades to
        recomputing — never to wrong numbers.
        """
        path = self._block_path(payload)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError:
            return False, None
        try:
            block = unpack_entry(data)
        except Exception:
            try:
                os.replace(path, path.with_suffix(".quarantined"))
            except OSError:
                pass
            self.quarantined += 1
            return False, None
        self.hits += 1
        return True, block

    def record(self, payload: Dict[str, Any], block: Any) -> None:
        """Atomically persist one completed block."""
        if not self._bound:
            raise ReproError("journal used before bind()")
        self._atomic_write(self._block_path(payload), pack_entry(block))
        self.records += 1

    def completed(self) -> int:
        """Number of readable block entries currently on disk."""
        return sum(1 for _ in self._blocks_dir().glob("*.blk"))

    # -- cost model -----------------------------------------------------

    def costmodel_path(self) -> Path:
        """Where this journal persists the scheduler's cost model.

        The journal directory is the natural home: a resumed run
        should warm-start scheduling with the rates the first attempt
        observed.  ``repro dist run --journal --schedule cost`` seeds
        the broker from this file before submitting and snapshots the
        refined model back after the run (see the CLI); the file is a
        plain :meth:`repro.dist.costmodel.CostModel.to_state` JSON, so
        losing or corrupting it costs warm predictions, never results.
        """
        return self.path / "costmodel.json"
