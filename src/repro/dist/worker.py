"""The worker loop: lease, start, execute, upload — and heartbeat.

``repro dist worker HOST:PORT`` runs :func:`worker_loop` in the
foreground.  The loop leases jobs via
:meth:`~repro.dist.queue.Broker.lease_jobs` (the broker sizes the
lease from its cost model when scheduling is ``cost``; leased surplus
is what idle peers steal), announces each execution with ``start`` (a
``False`` answer means the job was stolen — skip it; *pinned* leases
arrive pre-started and skip the announcement round-trip entirely), and
ships results (or a :class:`~repro.dist.queue.JobFailure` wrapping the
exception, with its text bounded by
:func:`~repro.dist.queue.truncate_failure_text`) back in batched
``complete_many`` uploads of up to ``upload_batch`` finished jobs —
one RPC instead of N, flushed at every lease boundary so results never
wait on future work.  Each completion carries the job's measured wall
time, which trains the broker's cost model.  Because completions are
idempotent broker-side, a flush interrupted by a torn connection is
simply replayed after the reconnect.

Liveness is a side thread beating over its *own* broker connection
(manager proxies are not thread-safe across threads), so a worker
stays alive through arbitrarily long jobs; a worker that dies stops
beating and the broker re-enqueues its leases after ``lease_timeout``.

Self-healing: connects run under the unified
:class:`~repro.retry.RetryPolicy`, a heartbeat thread that died (torn
connection) is restarted on the next pull, and a torn *main*
connection triggers a reconnect attempt before the worker gives up —
so a broker restart stalls a worker instead of killing it.  Fault
plans (:mod:`repro.faults`) inject at the ``worker.execute`` and
``worker.heartbeat`` hooks; the plan arrives through the
``REPRO_FAULT_PLAN`` environment variable for forked fleet workers.

Each worker installs a :class:`~repro.dist.cachetier.CacheTier`
(optional local disk + the broker's shared store) as the process-wide
active cache of :mod:`repro.dist.jobs`, so fleet jobs transparently
pool converged sizing results across workers.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
import uuid
from multiprocessing import AuthenticationError
from typing import Optional

from repro import obs
from repro.errors import ReproError
from repro.faults import injector as faults
from repro.retry import DEFAULT_RETRY, RetryPolicy

from repro.dist import jobs as dist_jobs
from repro.dist.cachetier import CacheTier
from repro.dist.queue import (
    DEFAULT_AUTHKEY,
    JobFailure,
    JobPayload,
    MAX_FAILURE_TEXT,
    connect,
    parse_address,
    truncate_failure_text,
    wire_pack,
    wire_unpack,
)
from repro.exec.cache import ResultCache

__all__ = ["default_worker_id", "worker_loop"]

#: Connection errors meaning "the broker went away" — a worker treats
#: them as a reconnect signal first and a shutdown signal second.
_BROKER_GONE = (ConnectionError, EOFError, BrokenPipeError, OSError)


def default_worker_id() -> str:
    """A fleet-unique worker name: host, pid, and a random suffix."""
    return (
        f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    )


def _execute(payload: JobPayload, max_failure_text: int = MAX_FAILURE_TEXT):
    """Run one job; exceptions become a shippable :class:`JobFailure`.

    Failure text is truncated to ``max_failure_text`` characters per
    field — a job that crashes with a huge repr or locals dump must not
    bloat the broker's result store or the driver's logs.
    """
    try:
        # Large payload items may arrive as compressed wire envelopes
        # (the driver packs above its threshold); plain items pass
        # through untouched.
        return payload.fn(wire_unpack(payload.item))
    except Exception as exc:
        return JobFailure(
            error=truncate_failure_text(repr(exc), max_failure_text),
            traceback=truncate_failure_text(
                traceback.format_exc(), max_failure_text
            ),
        )


class _MetricsShipper:
    """Ships this process's counter deltas to the broker, exactly once.

    ``ship(send)`` snapshots the local registry, computes the increment
    since the last *successful* ship, and hands the delta envelope
    (``None`` when there is nothing new) to ``send``, which performs
    the actual RPC.  The baseline only advances after ``send`` returns,
    so a failed upload re-ships the same delta next time instead of
    losing it — and the lock is held across the RPC so the heartbeat
    thread and the main loop can never ship the same delta twice.

    With metrics disabled the registry snapshot is empty, every
    envelope is ``None``, and the broker sees plain heartbeats.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._shipped: dict = {}

    def ship(self, send) -> None:
        with self._lock:
            registry = obs.registry()
            snap = registry.counters_snapshot()
            shipped = self._shipped
            deltas = {
                name: value - shipped.get(name, 0)
                for name, value in snap.items()
                if value != shipped.get(name, 0)
            }
            gauges = registry.gauges_snapshot()
            envelope = (
                {"counters": deltas, "gauges": gauges}
                if deltas or gauges
                else None
            )
            send(envelope)
            self._shipped = snap


class _Heartbeat(threading.Thread):
    """Beats over a dedicated broker connection until stopped.

    The ``worker.heartbeat`` fault hook fires before every beat: an
    injected stall freezes this thread's beats exactly as a frozen
    process would, so the broker's reaper path is exercised for real.
    """

    def __init__(self, address, authkey, worker_id, interval, shipper=None):
        super().__init__(name=f"heartbeat-{worker_id}", daemon=True)
        self._address = address
        self._authkey = authkey
        self._worker_id = worker_id
        self._interval = interval
        self._shipper = shipper
        # Not named ``_stop``: Thread.is_alive() calls its own private
        # ``_stop()`` method, which an Event attribute would shadow.
        self._halt = threading.Event()

    def run(self) -> None:
        try:
            broker = connect(self._address, authkey=self._authkey).broker
            while not self._halt.wait(self._interval):
                faults.fire("worker.heartbeat", worker_id=self._worker_id)
                if self._shipper is not None:
                    # Each beat piggybacks the metric delta since the
                    # last successful ship — the broker's fleet view
                    # stays live without extra RPCs.
                    self._shipper.ship(
                        lambda env: broker.heartbeat(self._worker_id, env)
                    )
                else:
                    broker.heartbeat(self._worker_id)
        except _BROKER_GONE:
            return

    def stop(self) -> None:
        self._halt.set()


def worker_loop(
    address,
    authkey: bytes = DEFAULT_AUTHKEY,
    cache_dir: Optional[str] = None,
    cache_max_bytes: Optional[int] = None,
    prefetch: int = 2,
    poll_interval: float = 0.1,
    max_idle: Optional[float] = None,
    worker_id: Optional[str] = None,
    retry: RetryPolicy = DEFAULT_RETRY,
    max_failure_text: int = MAX_FAILURE_TEXT,
    upload_batch: int = 8,
    compress_threshold: Optional[int] = None,
) -> int:
    """Serve jobs from the broker at ``address`` until told to stop.

    Parameters
    ----------
    address:
        Broker address (``"host:port"`` or a pair).
    cache_dir / cache_max_bytes:
        Optional local disk tier under the shared cache (a worker
        without one still reads/writes the broker's shared store).
    prefetch:
        Jobs requested per lease; the surplus beyond the one executing
        is the stealable margin.  Under cost scheduling the broker may
        resize the grant (see ``Broker.lease_jobs``).
    poll_interval:
        Sleep between empty pulls.
    max_idle:
        Exit after this many consecutive seconds without work
        (``None`` = serve forever); the number of jobs executed is
        returned.
    retry:
        Backoff policy for broker connects and reconnects (a broker
        restart is survivable; a permanently dead broker ends the
        loop cleanly).
    max_failure_text:
        Per-field bound on shipped :class:`JobFailure` text.
    upload_batch:
        Finished jobs buffered per ``complete_many`` upload; the
        buffer also flushes at every lease boundary, so a result
        waits on at most the jobs of its own lease, never on future
        work.  ``1`` restores the one-``complete()``-per-job wire
        behaviour (the PR 8 baseline, kept for comparison benches).
    compress_threshold:
        When set, results whose pickle is at least this many bytes
        ship as zlib wire envelopes (``None`` disables — the
        default; compression trades driver/worker CPU for wire
        bytes, a win only on real networks with large results).
    """
    faults.install_from_env()
    obs.install_from_env()
    address = parse_address(address)
    worker_id = worker_id or default_worker_id()

    def _connect():
        connection = connect(address, authkey=authkey)
        return connection, connection.broker.config()["lease_timeout"]

    try:
        (connection, lease_timeout) = retry.call(
            _connect, describe="worker connect"
        )
    except (AuthenticationError, *_BROKER_GONE) as exc:
        host, port = address
        raise ReproError(
            f"cannot connect to broker at {host}:{port} ({exc!r}); is "
            f"'repro dist serve' running there with a matching "
            f"--authkey?"
        )
    broker = connection.broker
    beat_interval = max(lease_timeout / 4, 0.02)
    # Workers always count their work: the broker's fleet view (`repro
    # dist top`) is only as good as what workers ship, and the counting
    # cost is noise next to a job.  Restored on exit so an in-process
    # caller (tests) does not leak an enabled registry.
    metrics_were_enabled = obs.metrics_enabled()
    obs.enable_metrics()
    c_jobs = obs.counter("worker.jobs")
    c_failed = obs.counter("worker.jobs_failed")
    c_skipped = obs.counter("worker.jobs_stolen_away")
    shipper = _MetricsShipper()

    def _start_heartbeat() -> _Heartbeat:
        heartbeat = _Heartbeat(
            address,
            authkey,
            worker_id,
            interval=beat_interval,
            shipper=shipper,
        )
        heartbeat.start()
        return heartbeat

    heartbeat = _start_heartbeat()
    local = (
        ResultCache(cache_dir, max_bytes=cache_max_bytes)
        if cache_dir
        else None
    )
    previous_cache = dist_jobs.set_active_cache(
        CacheTier(remote=broker, local=local)
    )
    executed = 0
    idle_since: Optional[float] = None
    # Finished-but-unshipped completions: (job_id, result, runtime).
    # Broker-side completion is idempotent, so this buffer is safe to
    # replay wholesale after a reconnect — losing it to a worker death
    # only re-runs the jobs, it never corrupts a result.
    outbox: list = []

    def _flush() -> None:
        """Upload every buffered completion (one RPC when batching)."""
        if not outbox:
            return
        if upload_batch <= 1:
            # Legacy wire shape: one complete() per job.  Pop as we
            # go so a mid-flush disconnect replays only the remainder.
            while outbox:
                job_id, result, runtime = outbox[0]
                shipper.ship(
                    lambda env: broker.complete(
                        worker_id, job_id, result, env, runtime
                    )
                )
                outbox.pop(0)
            return
        batch = list(outbox)
        shipper.ship(
            lambda env: broker.complete_many(worker_id, batch, env)
        )
        outbox.clear()

    def _reconnect() -> bool:
        """Try to re-establish the main connection (broker restart)."""
        nonlocal broker, connection
        try:
            (connection, _) = retry.call(
                _connect, describe="worker reconnect"
            )
        except Exception:
            return False
        broker = connection.broker
        # The tier must follow the new connection: proxies bound to
        # the dead broker raise forever.
        tier = dist_jobs.active_cache()
        if isinstance(tier, CacheTier):
            tier.remote = broker
        return True

    try:
        while True:
            # A heartbeat thread killed by a torn connection (flaky
            # transport, broker restart) is restarted here, so a
            # transient drop costs at most one reap, not the worker.
            if not heartbeat.is_alive():
                heartbeat = _start_heartbeat()
            try:
                lease = broker.lease_jobs(worker_id, max_jobs=prefetch)
            except _BROKER_GONE:
                if _reconnect():
                    continue
                break
            leased = lease["jobs"]
            pinned = lease["pinned"]
            if not leased:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif max_idle is not None and now - idle_since > max_idle:
                    break
                time.sleep(poll_interval)
                continue
            idle_since = None
            for job_id, payload in leased:
                try:
                    # Pinned leases were marked started at pull time —
                    # the broker already guarantees nobody steals them,
                    # so the per-job announcement round-trip is skipped.
                    if not pinned and not broker.start(worker_id, job_id):
                        c_skipped.inc()
                        continue  # stolen while leased — the thief runs it
                    faults.fire(
                        "worker.execute",
                        worker_id=worker_id,
                        job_id=job_id,
                    )
                    with obs.span("worker.job") as job_span:
                        job_span.set("job", list(job_id))
                        t0 = time.monotonic()
                        result = _execute(payload, max_failure_text)
                        runtime = time.monotonic() - t0
                    c_jobs.inc()
                    if isinstance(result, JobFailure):
                        c_failed.inc()
                    else:
                        result = wire_pack(result, compress_threshold)
                    # Buffered upload: the flush RPC carries the
                    # metric delta too, so a worker that dies right
                    # after its last flush has already shipped those
                    # jobs' counters.
                    outbox.append((job_id, result, runtime))
                    executed += 1
                    if len(outbox) >= max(upload_batch, 1):
                        _flush()
                except _BROKER_GONE:
                    if not _reconnect():
                        return executed
                    try:
                        _flush()  # idempotent replay of the outbox
                    except _BROKER_GONE:
                        pass  # next lease iteration reconnects again
                    continue  # a reaped lease re-runs elsewhere; move on
            # Lease boundary: ship whatever the batch threshold left
            # behind — a completed result must never wait on jobs the
            # worker has not even leased yet.
            try:
                _flush()
            except _BROKER_GONE:
                if not _reconnect():
                    return executed
                try:
                    _flush()
                except _BROKER_GONE:
                    pass
    finally:
        heartbeat.stop()
        dist_jobs.set_active_cache(previous_cache)
        if not metrics_were_enabled:
            obs.disable_metrics()
    return executed
