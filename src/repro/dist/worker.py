"""The worker loop: pull, start, execute, complete — and heartbeat.

``repro dist worker HOST:PORT`` runs :func:`worker_loop` in the
foreground.  The loop leases up to ``prefetch`` jobs per pull (leased
surplus is what idle peers steal), announces each execution with
``start`` (a ``False`` answer means the job was stolen — skip it), and
ships results (or a :class:`~repro.dist.queue.JobFailure` wrapping the
exception) back with ``complete``.

Liveness is a side thread beating over its *own* broker connection
(manager proxies are not thread-safe across threads), so a worker
stays alive through arbitrarily long jobs; a worker that dies stops
beating and the broker re-enqueues its leases after ``lease_timeout``.

Each worker installs a :class:`~repro.dist.cachetier.CacheTier`
(optional local disk + the broker's shared store) as the process-wide
active cache of :mod:`repro.dist.jobs`, so fleet jobs transparently
pool converged sizing results across workers.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
import uuid
from multiprocessing import AuthenticationError
from typing import Optional

from repro.errors import ReproError

from repro.dist import jobs as dist_jobs
from repro.dist.cachetier import CacheTier
from repro.dist.queue import (
    DEFAULT_AUTHKEY,
    JobFailure,
    JobPayload,
    connect,
    parse_address,
)
from repro.exec.cache import ResultCache

__all__ = ["default_worker_id", "worker_loop"]

#: Connection errors meaning "the broker went away" — a worker treats
#: them as a clean shutdown signal, not a crash.
_BROKER_GONE = (ConnectionError, EOFError, BrokenPipeError, OSError)


def default_worker_id() -> str:
    """A fleet-unique worker name: host, pid, and a random suffix."""
    return (
        f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"
    )


def _execute(payload: JobPayload):
    """Run one job; exceptions become a shippable :class:`JobFailure`."""
    try:
        return payload.fn(payload.item)
    except Exception as exc:
        return JobFailure(error=repr(exc), traceback=traceback.format_exc())


class _Heartbeat(threading.Thread):
    """Beats over a dedicated broker connection until stopped."""

    def __init__(self, address, authkey, worker_id, interval):
        super().__init__(name=f"heartbeat-{worker_id}", daemon=True)
        self._address = address
        self._authkey = authkey
        self._worker_id = worker_id
        self._interval = interval
        self._stop = threading.Event()

    def run(self) -> None:
        try:
            broker = connect(self._address, authkey=self._authkey).broker
            while not self._stop.wait(self._interval):
                broker.heartbeat(self._worker_id)
        except _BROKER_GONE:
            return

    def stop(self) -> None:
        self._stop.set()


def worker_loop(
    address,
    authkey: bytes = DEFAULT_AUTHKEY,
    cache_dir: Optional[str] = None,
    cache_max_bytes: Optional[int] = None,
    prefetch: int = 2,
    poll_interval: float = 0.1,
    max_idle: Optional[float] = None,
    worker_id: Optional[str] = None,
) -> int:
    """Serve jobs from the broker at ``address`` until told to stop.

    Parameters
    ----------
    address:
        Broker address (``"host:port"`` or a pair).
    cache_dir / cache_max_bytes:
        Optional local disk tier under the shared cache (a worker
        without one still reads/writes the broker's shared store).
    prefetch:
        Jobs leased per pull; the surplus beyond the one executing is
        the stealable margin.
    poll_interval:
        Sleep between empty pulls.
    max_idle:
        Exit after this many consecutive seconds without work
        (``None`` = serve forever); the number of jobs executed is
        returned.
    """
    address = parse_address(address)
    worker_id = worker_id or default_worker_id()
    try:
        connection = connect(address, authkey=authkey)
        broker = connection.broker
        lease_timeout = broker.config()["lease_timeout"]
    except (AuthenticationError, *_BROKER_GONE) as exc:
        host, port = address
        raise ReproError(
            f"cannot connect to broker at {host}:{port} ({exc!r}); is "
            f"'repro dist serve' running there with a matching "
            f"--authkey?"
        )
    heartbeat = _Heartbeat(
        address, authkey, worker_id, interval=max(lease_timeout / 4, 0.02)
    )
    heartbeat.start()
    local = (
        ResultCache(cache_dir, max_bytes=cache_max_bytes)
        if cache_dir
        else None
    )
    previous_cache = dist_jobs.set_active_cache(
        CacheTier(remote=broker, local=local)
    )
    executed = 0
    idle_since: Optional[float] = None
    try:
        while True:
            try:
                leased = broker.pull(worker_id, max_jobs=prefetch)
            except _BROKER_GONE:
                break
            if not leased:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                elif max_idle is not None and now - idle_since > max_idle:
                    break
                time.sleep(poll_interval)
                continue
            idle_since = None
            for job_id, payload in leased:
                try:
                    if not broker.start(worker_id, job_id):
                        continue  # stolen while leased — the thief runs it
                    result = _execute(payload)
                    broker.complete(worker_id, job_id, result)
                    executed += 1
                except _BROKER_GONE:
                    return executed
    finally:
        heartbeat.stop()
        dist_jobs.set_active_cache(previous_cache)
    return executed
