"""Shared read-through/write-through cache tier over the broker store.

A :class:`CacheTier` presents the exact interface
:class:`repro.exec.ResultCache` presents to the execution runtime
(``key`` / ``lookup`` / ``put`` / ``fetch`` plus the hit/miss
counters), so an :class:`~repro.exec.ExecutionContext` built on a tier
caches transparently — but behind that interface sit *two* stores:

* **local** — an optional on-disk :class:`ResultCache` (the worker's
  ``--cache-dir``), consulted first;
* **shared** — the broker's in-memory blob store
  (:meth:`repro.dist.queue.Broker.cache_get` / ``cache_put``), keyed by
  the *same* content addresses, consulted on a local miss.

Read-through: a shared hit is written back into the local store, so a
worker pays the network round-trip once per key.  Write-through: every
``put`` lands in both stores, so the first worker to converge a sizing
publishes it and every other worker (and every later CI run against
the same broker) reuses it instead of recomputing.

What gets published is decided by the *callers* exactly as for the
local cache — ``fetch(..., should_store=...)`` still gates
non-converged sizing results, and a worker killed mid-job publishes
nothing, because ``put`` only ever runs after ``compute()`` returned.

Values cross the wire as explicit pickle blobs (``pickle.dumps`` with
the highest protocol), the same bytes the disk store writes, so a
result round-trips bit-exactly through either tier.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Dict, Optional, Tuple

from repro.exec.cache import ResultCache, entry_key

__all__ = ["CacheTier"]


class CacheTier:
    """Two-level result cache: local disk first, broker store second.

    Parameters
    ----------
    remote:
        An object with ``cache_get(key) -> Optional[bytes]`` and
        ``cache_put(key, blob)`` — the broker proxy (or a
        :class:`~repro.dist.queue.Broker` directly, in-process).
    local:
        Optional :class:`ResultCache`; ``None`` makes the shared store
        the only tier (a worker launched without ``--cache-dir``).

    Attributes
    ----------
    hits / misses:
        Combined counters in :class:`ResultCache`'s meaning (a hit in
        either tier is a hit), so context-level accounting and tests
        work unchanged on a tier.
    local_hits / shared_hits / publishes:
        Tier-resolved diagnostics.
    """

    def __init__(
        self, remote, local: Optional[ResultCache] = None
    ) -> None:
        self.remote = remote
        self.local = local
        self.hits = 0
        self.misses = 0
        self.local_hits = 0
        self.shared_hits = 0
        self.publishes = 0

    # -- the ResultCache interface -------------------------------------

    def key(self, kind: str, payload: Dict[str, Any]) -> str:
        """Content address — identical to the disk store's for the same
        payload, which is what makes the tiers interchangeable."""
        return entry_key(kind, payload)

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` — local first, then the shared store."""
        if self.local is not None:
            hit, value = self.local.get(key)
            if hit:
                self.hits += 1
                self.local_hits += 1
                return True, value
        blob = self.remote.cache_get(key)
        if blob is not None:
            try:
                value = pickle.loads(blob)
            except Exception:
                # A damaged blob reads as a miss, mirroring the disk
                # store's corrupt-entry tolerance.
                self.misses += 1
                return False, None
            self.hits += 1
            self.shared_hits += 1
            if self.local is not None:
                self.local.put(key, value)
            return True, value
        self.misses += 1
        return False, None

    def put(self, key: str, value: Any) -> None:
        """Write-through: the local store and the shared store."""
        if self.local is not None:
            self.local.put(key, value)
        self.remote.cache_put(
            key, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        )
        self.publishes += 1

    def fetch(
        self,
        kind: str,
        payload: Dict[str, Any],
        compute: Callable[[], Any],
        should_store: Optional[Callable[[Any], bool]] = None,
    ) -> Any:
        """Memoise ``compute()`` through both tiers.

        Same contract as :meth:`ResultCache.fetch`: ``should_store``
        vetoes publishing (non-converged sizing results stay local to
        the computing process — they are not pure functions of the
        payload and must never pool).
        """
        key = self.key(kind, payload)
        hit, value = self.lookup(key)
        if hit:
            return value
        value = compute()
        if should_store is None or should_store(value):
            self.put(key, value)
        return value
