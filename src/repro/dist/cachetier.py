"""Shared read-through/write-through cache tier over the broker store.

A :class:`CacheTier` presents the exact interface
:class:`repro.exec.ResultCache` presents to the execution runtime
(``key`` / ``lookup`` / ``put`` / ``fetch`` plus the hit/miss
counters), so an :class:`~repro.exec.ExecutionContext` built on a tier
caches transparently — but behind that interface sit *two* stores:

* **local** — an optional on-disk :class:`ResultCache` (the worker's
  ``--cache-dir``), consulted first;
* **shared** — the broker's in-memory blob store
  (:meth:`repro.dist.queue.Broker.cache_get` / ``cache_put``), keyed by
  the *same* content addresses, consulted on a local miss.

Read-through: a shared hit is written back into the local store, so a
worker pays the network round-trip once per key.  Write-through: every
``put`` lands in both stores, so the first worker to converge a sizing
publishes it and every other worker (and every later CI run against
the same broker) reuses it instead of recomputing.

What gets published is decided by the *callers* exactly as for the
local cache — ``fetch(..., should_store=...)`` still gates
non-converged sizing results, and a worker killed mid-job publishes
nothing, because ``put`` only ever runs after ``compute()`` returned.

Values cross the wire inside the same checksummed envelope the disk
store writes (:func:`repro.exec.cache.pack_entry`: magic, sha256,
pickle), so a blob damaged anywhere — on the broker, in transit, by an
injected fault — fails verification *before* unpickling and reads as a
miss (counted in :attr:`CacheTier.quarantined`), never as wrong bytes.

Robustness: remote calls run under a :class:`~repro.retry.RetryPolicy`
(transient transport errors are retried with capped backoff), and a
remote that stays down after the retries are exhausted flips the tier
into **local-only degraded mode** — sizing runs keep completing on
local compute + local cache instead of dying on a lost broker.  Fault
plans inject at the ``cachetier.get`` / ``cachetier.put`` action hooks
and damage bytes at the ``cachetier.blob`` transform hook.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro import obs
from repro.errors import is_transient
from repro.faults import injector as faults
from repro.retry import DEFAULT_RETRY, RetryPolicy
from repro.exec.cache import ResultCache, entry_key, pack_entry, unpack_entry

__all__ = ["CacheTier"]


class CacheTier:
    """Two-level result cache: local disk first, broker store second.

    Parameters
    ----------
    remote:
        An object with ``cache_get(key) -> Optional[bytes]`` and
        ``cache_put(key, blob)`` — the broker proxy (or a
        :class:`~repro.dist.queue.Broker` directly, in-process).
    local:
        Optional :class:`ResultCache`; ``None`` makes the shared store
        the only tier (a worker launched without ``--cache-dir``).
    retry:
        Backoff policy for remote store calls.
    degrade_on_loss:
        When ``True`` (default), a remote call that still fails with a
        transient transport error after the retries are exhausted marks
        the remote store down (:attr:`remote_down`) and the tier keeps
        serving from the local store alone; ``False`` re-raises, for
        callers that would rather fail than silently lose pooling.

    Attributes
    ----------
    hits / misses:
        Combined counters in :class:`ResultCache`'s meaning (a hit in
        either tier is a hit), so context-level accounting and tests
        work unchanged on a tier.
    local_hits / shared_hits / publishes:
        Tier-resolved diagnostics.
    quarantined:
        Shared blobs that failed envelope verification (damaged on the
        broker or in transit) and were treated as misses.
    remote_down:
        ``True`` once the tier has degraded to local-only operation.
    """

    def __init__(
        self,
        remote,
        local: Optional[ResultCache] = None,
        retry: RetryPolicy = DEFAULT_RETRY,
        degrade_on_loss: bool = True,
    ) -> None:
        self.remote = remote
        self.local = local
        self.retry = retry
        self.degrade_on_loss = degrade_on_loss
        self.hits = 0
        self.misses = 0
        self.local_hits = 0
        self.shared_hits = 0
        self.publishes = 0
        self.quarantined = 0
        self.remote_down = False
        # The instance counters above are the tier's API (contexts and
        # tests read them); these mirror every increment into the
        # process registry so the fleet view aggregates them.  No-op
        # stubs when metrics are off.
        self._c_hits = obs.counter("cachetier.hits")
        self._c_misses = obs.counter("cachetier.misses")
        self._c_local_hits = obs.counter("cachetier.local_hits")
        self._c_shared_hits = obs.counter("cachetier.shared_hits")
        self._c_publishes = obs.counter("cachetier.publishes")
        self._c_quarantined = obs.counter("cachetier.quarantined")
        self._c_remote_down = obs.counter("cachetier.remote_down")

    # -- remote plumbing -----------------------------------------------

    def _remote_call(self, describe: str, call: Callable[[], Any]) -> Any:
        """Run one remote-store RPC under the retry policy.

        Exhausted transient failures either degrade the tier to
        local-only (``degrade_on_loss``) or re-raise; the sentinel
        return ``None`` is indistinguishable from a miss by design —
        a lost shared store *is* a missing tier.
        """
        try:
            return self.retry.call(call, describe=describe)
        except Exception as exc:
            if self.degrade_on_loss and is_transient(exc):
                self.remote_down = True
                self._c_remote_down.inc()
                return None
            raise

    # -- the ResultCache interface -------------------------------------

    def key(self, kind: str, payload: Dict[str, Any]) -> str:
        """Content address — identical to the disk store's for the same
        payload, which is what makes the tiers interchangeable."""
        return entry_key(kind, payload)

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` — local first, then the shared store."""
        with obs.span("cachetier.lookup") as span:
            hit, value, tier = self._lookup(key)
            span.set("tier", tier)
            return hit, value

    def _lookup(self, key: str) -> Tuple[bool, Any, str]:
        if self.local is not None:
            hit, value = self.local.get(key)
            if hit:
                self.hits += 1
                self.local_hits += 1
                self._c_hits.inc()
                self._c_local_hits.inc()
                return True, value, "local"
        blob = None
        if not self.remote_down:
            def _get():
                faults.fire("cachetier.get", key=key)
                return self.remote.cache_get(key)

            blob = self._remote_call(f"shared cache get {key[:12]}", _get)
        if blob is not None:
            blob = faults.transform("cachetier.blob", blob)
            try:
                value = unpack_entry(blob)
            except Exception:
                # A damaged blob must never deserialize into a wrong
                # value: verification failed, count it and miss.
                self.quarantined += 1
                self.misses += 1
                self._c_quarantined.inc()
                self._c_misses.inc()
                return False, None, "quarantined"
            self.hits += 1
            self.shared_hits += 1
            self._c_hits.inc()
            self._c_shared_hits.inc()
            if self.local is not None:
                self.local.put(key, value)
            return True, value, "shared"
        self.misses += 1
        self._c_misses.inc()
        return False, None, "miss"

    def put(self, key: str, value: Any) -> None:
        """Write-through: the local store and the shared store."""
        if self.local is not None:
            self.local.put(key, value)
        if self.remote_down:
            return
        blob = pack_entry(value)

        def _put():
            faults.fire("cachetier.put", key=key)
            self.remote.cache_put(key, blob)
            return True

        if self._remote_call(f"shared cache put {key[:12]}", _put):
            self.publishes += 1
            self._c_publishes.inc()

    def fetch(
        self,
        kind: str,
        payload: Dict[str, Any],
        compute: Callable[[], Any],
        should_store: Optional[Callable[[Any], bool]] = None,
    ) -> Any:
        """Memoise ``compute()`` through both tiers.

        Same contract as :meth:`ResultCache.fetch`: ``should_store``
        vetoes publishing (non-converged sizing results stay local to
        the computing process — they are not pure functions of the
        payload and must never pool).
        """
        key = self.key(kind, payload)
        hit, value = self.lookup(key)
        if hit:
            return value
        value = compute()
        if should_store is None or should_store(value):
            self.put(key, value)
        return value
